"""repro — a from-scratch Python reproduction of DBToaster (higher-order IVM).

The public API, in the order a new user typically needs it:

* build a query — either from SQL with :func:`repro.sql.parse_sql_query` or
  directly in AGCA with the builders in :mod:`repro.agca`;
* compile it with :func:`repro.compiler.compile_query` (or the preset engine
  factories in :mod:`repro.runtime`);
* feed :class:`repro.delta.StreamEvent` updates to an
  :class:`repro.runtime.IncrementalEngine` and read the continuously fresh
  views back.

See ``examples/quickstart.py`` for a complete walk-through and ``DESIGN.md``
for the system inventory.
"""

from repro.agca import builders as agca
from repro.compiler import CompilerOptions, TriggerProgram, compile_query, viewlet_transform
from repro.core import GMR, Row
from repro.delta import StreamEvent, delete, insert
from repro.runtime import (
    Database,
    IncrementalEngine,
    ReferenceEngine,
    dbtoaster_engine,
    engine_for_strategy,
    ivm_engine,
    naive_engine,
    rep_engine,
)

__version__ = "1.0.0"

__all__ = [
    "agca",
    "CompilerOptions",
    "TriggerProgram",
    "compile_query",
    "viewlet_transform",
    "GMR",
    "Row",
    "StreamEvent",
    "insert",
    "delete",
    "Database",
    "IncrementalEngine",
    "ReferenceEngine",
    "dbtoaster_engine",
    "engine_for_strategy",
    "ivm_engine",
    "naive_engine",
    "rep_engine",
    "__version__",
]
