"""Polynomial expansion and factorization (rewrite rule 2, Figure 1).

AGCA queries are polynomials over relation atoms: any query can be expanded
into a sum of *monomials* (products free of top-level sums), which is the
form the decomposition and input-variable rules operate on.  Factorization is
the reverse rewrite, used to shrink rewritten statements after a
materialization decision has been made.

Sums inside Lift and Exists bodies are left alone — they belong to nested
subqueries that the nested-aggregate rule handles separately.
"""

from __future__ import annotations

from repro.agca.ast import AggSum, Exists, Expr, Lift, Product, Sum, Value, VConst
from repro.agca.builders import plus, prod


def product_factors(expr: Expr) -> list[Expr]:
    """The factors of a product (a non-product expression is its own factor)."""
    if isinstance(expr, Product):
        out: list[Expr] = []
        for term in expr.terms:
            out.extend(product_factors(term))
        return out
    return [expr]


def expand(expr: Expr) -> Expr:
    """Expand ``expr`` into a sum of monomials (distribute ``*`` over ``+``).

    Aggregation distributes over the resulting sum as well:
    ``Sum_A(Q1 + Q2) = Sum_A(Q1) + Sum_A(Q2)``.
    """
    terms = monomials(expr)
    return plus(*terms)


def monomials(expr: Expr) -> list[Expr]:
    """The list of monomials of the expanded form of ``expr``."""
    if isinstance(expr, Sum):
        out: list[Expr] = []
        for term in expr.terms:
            out.extend(monomials(term))
        return out

    if isinstance(expr, Product):
        # Cartesian product of the children's monomial lists, preserving order.
        result: list[list[Expr]] = [[]]
        for term in expr.terms:
            term_monomials = monomials(term)
            result = [existing + [m] for existing in result for m in term_monomials]
        return [prod(*factors) for factors in result]

    if isinstance(expr, AggSum):
        return [AggSum(expr.group, m) for m in monomials(expr.term)]

    # Lift / Exists / atoms / values / comparisons are treated as opaque factors.
    return [expr]


def factorize_sum(expr: Expr) -> Expr:
    """Factor common leading/trailing factors out of a sum of monomials.

    A lightweight version of the paper's factorization: if every monomial of a
    sum shares its first (or last) factor, the factor is pulled out.  Applied
    repeatedly this recovers forms such as ``(2*R(x) + 1) * S(B)`` from the
    expanded delta of a self-join (Example 12).
    """
    if not isinstance(expr, Sum):
        return expr
    terms = [m for t in expr.terms for m in monomials(t)]
    if len(terms) < 2:
        return plus(*terms)

    changed = True
    while changed and len(terms) >= 2:
        changed = False
        factor_lists = [product_factors(t) for t in terms]
        if all(len(f) > 1 for f in factor_lists):
            first = factor_lists[0][0]
            if all(f[0] == first for f in factor_lists[1:]):
                rest = [prod(*f[1:]) for f in factor_lists]
                return prod(first, factorize_sum(plus(*rest)))
            last = factor_lists[0][-1]
            if all(f[-1] == last for f in factor_lists[1:]):
                rest = [prod(*f[:-1]) for f in factor_lists]
                return prod(factorize_sum(plus(*rest)), last)
        # Merge syntactically identical monomials into a single scaled monomial.
        merged: list[Expr] = []
        counts: list[int] = []
        for term in terms:
            for i, existing in enumerate(merged):
                if existing == term:
                    counts[i] += 1
                    changed = True
                    break
            else:
                merged.append(term)
                counts.append(1)
        terms = [
            term if count == 1 else prod(Value(VConst(count)), term)
            for term, count in zip(merged, counts)
        ]
    return plus(*terms)
