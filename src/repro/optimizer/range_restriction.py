"""Extracting range restrictions from update statements (Section 5.3).

After simplification, the right-hand side of an update statement often keeps
assignments of the form ``(A := x)`` where ``A`` is one of the statement's
loop variables and ``x`` a trigger variable.  Looping over the full domain of
``A`` and filtering would be wasteful; instead the assignment is *extracted*:
the loop variable is replaced by the trigger variable in both the statement's
target keys and its right-hand side, eliminating the loop entirely (compare
Example 12/13 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.agca.ast import Expr, Lift, Product, Value, VVar, rename_variables
from repro.agca.builders import prod
from repro.optimizer.expansion import monomials, product_factors


def extract_range_restrictions(
    expr: Expr, loop_vars: Iterable[str], bound: Iterable[str]
) -> tuple[dict[str, str], Expr]:
    """Pull ``(loop_var := bound_var)`` assignments out of ``expr``.

    Returns ``(mapping, residual)`` where ``mapping`` sends loop variables to
    the bound (trigger) variables they are pinned to and ``residual`` is the
    expression with those assignments removed and the variables renamed.

    The extraction is only performed when the assignment appears in *every*
    monomial of the expression (otherwise different union branches could pin
    the variable differently and the rewrite would be unsound).
    """
    loop_set = set(loop_vars)
    bound_set = set(bound)
    if not loop_set:
        return {}, expr

    terms = monomials(expr)
    if not terms:
        return {}, expr

    candidate: dict[str, str] | None = None
    for term in terms:
        term_map: dict[str, str] = {}
        for factor in product_factors(term):
            if (
                isinstance(factor, Lift)
                and factor.var in loop_set
                and isinstance(factor.term, Value)
                and isinstance(factor.term.vexpr, VVar)
                and factor.term.vexpr.name in bound_set
            ):
                term_map.setdefault(factor.var, factor.term.vexpr.name)
        if candidate is None:
            candidate = term_map
        else:
            candidate = {
                var: trig for var, trig in candidate.items() if term_map.get(var) == trig
            }
        if not candidate:
            return {}, expr

    assert candidate is not None
    if not candidate:
        return {}, expr

    rewritten_terms = []
    for term in terms:
        factors = [
            f
            for f in product_factors(term)
            if not (
                isinstance(f, Lift)
                and f.var in candidate
                and isinstance(f.term, Value)
                and isinstance(f.term.vexpr, VVar)
                and f.term.vexpr.name == candidate[f.var]
            )
        ]
        rewritten_terms.append(rename_variables(prod(*factors), candidate))

    from repro.agca.builders import plus  # local import to avoid a cycle at module load

    return dict(candidate), plus(*rewritten_terms)


def apply_key_mapping(keys: Iterable[str], mapping: Mapping[str, str]) -> tuple[str, ...]:
    """Rename statement target keys according to an extraction mapping."""
    return tuple(mapping.get(k, k) for k in keys)
