"""Expression simplification (Section 5.3 of the paper).

The delta transform makes expressions larger and clumsier: it introduces
lifts of trigger variables, products with constant factors, sums of nearly
identical terms and ``Q - Q`` patterns.  This pass cleans them up with the
paper's toolbox:

* **partial evaluation / algebraic identities** — constant folding,
  ``Q * 1 = Q``, ``Q * 0 = 0``, ``Q + 0 = Q``;
* **unification** — equality conditions become assignments (lifts) when one
  side is an unbound variable, and assignments of simple values are
  propagated through the rest of the product (β-reduction style), honouring
  AGCA's restriction that constants cannot be pushed into relation atoms;
* **merging and cancellation of sum terms** — syntactically equal monomials
  combine their constant coefficients, which is what collapses
  ``(x := Q + ∆Q) - (x := Q)`` to zero whenever ``∆Q`` vanished.

``simplify`` must be given the set of variables bound from outside (trigger
variables) and the set of output variables that must remain available
(``needed``, e.g. the keys of the map a statement updates); both influence
which assignments may be eliminated.
"""

from __future__ import annotations

from typing import Iterable

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VVar,
    ValueExpr,
    free_variables,
    rename_variables,
    substitute_variable,
    value_variables,
)
from repro.agca.builders import plus, prod
from repro.agca.schema import output_variables
from repro.core.values import comparison_holds, div, is_zero
from repro.optimizer.expansion import product_factors

_MAX_PASSES = 8


def simplify(
    expr: Expr, bound: Iterable[str] = (), needed: Iterable[str] = ()
) -> Expr:
    """Simplify ``expr`` under externally bound variables and required outputs."""
    bound_set = frozenset(bound)
    needed_set = frozenset(needed)
    current = expr
    for _ in range(_MAX_PASSES):
        simplified = _simplify(current, bound_set, needed_set)
        if simplified == current:
            return simplified
        current = simplified
    return current


# ---------------------------------------------------------------------------
# Value-expression folding
# ---------------------------------------------------------------------------


def fold_value(vexpr: ValueExpr) -> ValueExpr:
    """Constant-fold a scalar value expression."""
    if isinstance(vexpr, VArith):
        left = fold_value(vexpr.left)
        right = fold_value(vexpr.right)
        if isinstance(left, VConst) and isinstance(right, VConst):
            lv, rv = left.value, right.value
            if vexpr.op == "+":
                return VConst(lv + rv)
            if vexpr.op == "-":
                return VConst(lv - rv)
            if vexpr.op == "*":
                return VConst(lv * rv)
            return VConst(div(lv, rv))
        if vexpr.op == "*":
            if isinstance(left, VConst) and left.value == 1:
                return right
            if isinstance(right, VConst) and right.value == 1:
                return left
            if (isinstance(left, VConst) and left.value == 0) or (
                isinstance(right, VConst) and right.value == 0
            ):
                return VConst(0)
        if vexpr.op == "+":
            if isinstance(left, VConst) and left.value == 0:
                return right
            if isinstance(right, VConst) and right.value == 0:
                return left
        if vexpr.op == "-" and isinstance(right, VConst) and right.value == 0:
            return left
        return VArith(vexpr.op, left, right)
    return vexpr


# ---------------------------------------------------------------------------
# Node dispatch
# ---------------------------------------------------------------------------


def _simplify(expr: Expr, bound: frozenset[str], needed: frozenset[str]) -> Expr:
    if isinstance(expr, Value):
        return Value(fold_value(expr.vexpr))

    if isinstance(expr, Cmp):
        left = fold_value(expr.left)
        right = fold_value(expr.right)
        if isinstance(left, VConst) and isinstance(right, VConst):
            return Value(VConst(comparison_holds(left.value, expr.op, right.value)))
        return Cmp(left, expr.op, right)

    if isinstance(expr, (Relation, MapRef)):
        return expr

    if isinstance(expr, AggSum):
        inner = _simplify(expr.term, bound, frozenset(expr.group))
        if _is_const_zero(inner):
            return Value(VConst(0))
        if isinstance(inner, AggSum) and set(expr.group) <= set(inner.group):
            inner = inner.term
        try:
            if output_variables(inner, bound) == frozenset(expr.group):
                return inner
        except Exception:  # schema errors on intermediate shapes: keep the AggSum
            pass
        return AggSum(expr.group, inner)

    if isinstance(expr, Lift):
        inner = _simplify(expr.term, bound, frozenset())
        return Lift(expr.var, inner)

    if isinstance(expr, Exists):
        inner = _simplify(expr.term, bound, frozenset())
        if isinstance(inner, Value) and isinstance(inner.vexpr, VConst):
            return Value(VConst(0 if is_zero(inner.vexpr.value) else 1))
        return Exists(inner)

    if isinstance(expr, Sum):
        return _simplify_sum(expr, bound, needed)

    if isinstance(expr, Product):
        return _simplify_product(expr, bound, needed)

    raise TypeError(f"not an AGCA expression: {expr!r}")


def _is_const_zero(expr: Expr) -> bool:
    return isinstance(expr, Value) and isinstance(expr.vexpr, VConst) and is_zero(expr.vexpr.value)


def _is_const_one(expr: Expr) -> bool:
    return (
        isinstance(expr, Value)
        and isinstance(expr.vexpr, VConst)
        and expr.vexpr.value == 1
    )


# ---------------------------------------------------------------------------
# Sums: flatten, merge coefficients, cancel opposites
# ---------------------------------------------------------------------------


def _split_coefficient(expr: Expr) -> tuple[float, Expr]:
    """Split a monomial into (numeric coefficient, residual expression)."""
    factors = product_factors(expr)
    coefficient = 1
    rest: list[Expr] = []
    for factor in factors:
        if isinstance(factor, Value) and isinstance(factor.vexpr, VConst) and isinstance(
            factor.vexpr.value, (int, float)
        ):
            coefficient = coefficient * factor.vexpr.value
        else:
            rest.append(factor)
    return coefficient, prod(*rest)


def _simplify_sum(expr: Sum, bound: frozenset[str], needed: frozenset[str]) -> Expr:
    flat: list[Expr] = []
    for term in expr.terms:
        simplified = _simplify(term, bound, needed)
        if isinstance(simplified, Sum):
            flat.extend(simplified.terms)
        elif not _is_const_zero(simplified):
            flat.append(simplified)
    if not flat:
        return Value(VConst(0))

    # Merge syntactically equal monomials by adding their coefficients; this is
    # what cancels the (x := Q + 0) - (x := Q) pattern left behind by deltas.
    residuals: list[Expr] = []
    coefficients: list[float] = []
    for term in flat:
        coefficient, residual = _split_coefficient(term)
        for i, existing in enumerate(residuals):
            if existing == residual:
                coefficients[i] += coefficient
                break
        else:
            residuals.append(residual)
            coefficients.append(coefficient)

    rebuilt: list[Expr] = []
    for coefficient, residual in zip(coefficients, residuals):
        if is_zero(coefficient):
            continue
        if _is_const_one(residual):
            rebuilt.append(Value(VConst(coefficient)))
        elif coefficient == 1:
            rebuilt.append(residual)
        else:
            rebuilt.append(prod(Value(VConst(coefficient)), residual))
    if not rebuilt:
        return Value(VConst(0))
    return plus(*rebuilt)


# ---------------------------------------------------------------------------
# Products: identities, unification, lift propagation
# ---------------------------------------------------------------------------


def _hoist_bound_equalities(factors: list[Expr], bound: frozenset[str]) -> list[Expr]:
    """Commute equalities against externally bound values to the front as lifts.

    An equality ``{x = t}`` where ``t`` only uses bound (e.g. trigger)
    variables pins ``x``; converting it to ``(x := t)`` *before* the atoms
    that produce ``x`` turns later relation/map accesses into index lookups
    instead of scans — the paper's "commute the comparison left until the
    variable falls out of scope" unification step.
    """
    hoisted: list[Expr] = []
    rest: list[Expr] = []
    pinned: set[str] = set()
    for factor in factors:
        if isinstance(factor, Cmp) and factor.op in ("=", "=="):
            left, right = factor.left, factor.right
            for var_side, val_side in ((left, right), (right, left)):
                if (
                    isinstance(var_side, VVar)
                    and var_side.name not in bound
                    and var_side.name not in pinned
                    and value_variables(val_side) <= bound
                ):
                    hoisted.append(Lift(var_side.name, Value(val_side)))
                    pinned.add(var_side.name)
                    break
            else:
                rest.append(factor)
            continue
        rest.append(factor)
    return hoisted + rest


def _unify_variable_equalities(
    factors: list[Expr], bound: frozenset[str], needed: frozenset[str]
) -> list[Expr]:
    """Merge variables equated by ``{a = b}`` conditions (unification).

    An equality between two free (non-trigger) variables is a natural-join
    edge: renaming one variable to the other everywhere in the product makes
    the join explicit, which both simplifies the expression and lets the
    join-graph decomposition see the connection.  A variable that the caller
    needs as an output is never renamed away; if both sides are needed the
    condition is left untouched.
    """
    changed = True
    while changed:
        changed = False
        for index, factor in enumerate(factors):
            if not (isinstance(factor, Cmp) and factor.op in ("=", "==")):
                continue
            left, right = factor.left, factor.right
            if not (isinstance(left, VVar) and isinstance(right, VVar)):
                continue
            a, b = left.name, right.name
            if a == b:
                factors = factors[:index] + factors[index + 1 :]
                changed = True
                break
            if a in bound or b in bound:
                continue  # handled by equality hoisting against bound values
            if a in needed and b in needed:
                continue
            victim, keep = (b, a) if b not in needed else (a, b)
            factors = [
                rename_variables(f, {victim: keep})
                for i, f in enumerate(factors)
                if i != index
            ]
            changed = True
            break
    return factors


def _simplify_product(expr: Product, bound: frozenset[str], needed: frozenset[str]) -> Expr:
    pending: list[Expr] = _hoist_bound_equalities(list(product_factors(expr)), bound)
    pending = _unify_variable_equalities(pending, bound, needed)
    kept: list[Expr] = []
    current_bound = set(bound)
    coefficient = 1

    index = 0
    while index < len(pending):
        later = pending[index + 1 :]
        later_vars: set[str] = set()
        for factor in later:
            later_vars.update(free_variables(factor))
        term_needed = frozenset(needed | later_vars)
        factor = _simplify(pending[index], frozenset(current_bound), term_needed)
        index += 1

        if _is_const_zero(factor):
            return Value(VConst(0))
        if _is_const_one(factor):
            continue
        # Split multiplicative scalar factors, e.g. Value(xch * price) into
        # Value(xch) * Value(price): the pieces can then be pushed into (or
        # pulled out of) materialized views independently.
        if isinstance(factor, Value) and isinstance(factor.vexpr, VArith) and factor.vexpr.op == "*":
            pending.insert(index, Value(factor.vexpr.right))
            pending.insert(index, Value(factor.vexpr.left))
            continue
        if isinstance(factor, Value) and isinstance(factor.vexpr, VConst) and isinstance(
            factor.vexpr.value, (int, float)
        ):
            coefficient = coefficient * factor.vexpr.value
            continue

        # Unification step 1: turn an equality with a single unbound variable on
        # one side (and only bound variables on the other) into an assignment.
        if isinstance(factor, Cmp) and factor.op in ("=", "=="):
            factor = _equality_to_lift(factor, frozenset(current_bound))

        # Unification step 2: propagate assignments of plain values through the
        # remaining factors, and drop the assignment when nothing needs it.
        if isinstance(factor, Lift) and isinstance(factor.term, Value):
            factor, pending, index = _propagate_lift(
                factor, pending, index, frozenset(current_bound), needed
            )
            if factor is None:
                continue

        kept.append(factor)
        try:
            current_bound |= output_variables(factor, frozenset(current_bound))
        except Exception:
            current_bound |= free_variables(factor)

    if coefficient != 1 or not kept:
        if is_zero(coefficient):
            return Value(VConst(0))
        return prod(Value(VConst(coefficient)), *kept)
    return prod(*kept)


def _equality_to_lift(factor: Cmp, bound: frozenset[str]) -> Expr:
    left, right = factor.left, factor.right
    left_is_free_var = isinstance(left, VVar) and left.name not in bound
    right_is_free_var = isinstance(right, VVar) and right.name not in bound
    if left_is_free_var and value_variables(right) <= bound:
        return Lift(left.name, Value(right))
    if right_is_free_var and value_variables(left) <= bound:
        return Lift(right.name, Value(left))
    return factor


def _propagate_lift(
    factor: Lift,
    pending: list[Expr],
    index: int,
    bound: frozenset[str],
    needed: frozenset[str],
) -> tuple[Expr | None, list[Expr], int]:
    """Propagate ``(x := value)`` into the factors after ``index``.

    Returns the (possibly dropped) factor and the updated pending list.  The
    assignment can be eliminated when its variable is not an externally needed
    output, it is not already bound (in which case it is a condition, not a
    binding) and — for constant values — it does not restrict a later relation
    atom (constants cannot be substituted into relation columns).
    """
    assert isinstance(factor.term, Value)
    value = factor.term.vexpr
    variable = factor.var
    if variable in bound:
        # A lift over a bound variable is an equality condition; keep it as such.
        return Cmp(VVar(variable), "=", value), pending, index
    if value_variables(value) - bound:
        # The assigned value is not evaluable yet; leave the lift alone.
        return factor, pending, index

    rest = [substitute_variable(t, variable, value) for t in pending[index:]]
    new_pending = pending[:index] + rest

    still_used = any(variable in free_variables(t) for t in rest)
    if variable in needed or still_used:
        return factor, new_pending, index
    return None, new_pending, index
