"""Expression simplification and structural rewrites used by the compiler.

The passes here implement Section 5.3 of the paper (unification, partial
evaluation, algebraic identities, range-restriction extraction) plus the
structural helpers the materialization heuristics of Section 5.1 rely on
(polynomial expansion, factorization, join-graph decomposition).
"""

from repro.optimizer.decomposition import connected_components, decompose_product
from repro.optimizer.expansion import expand, factorize_sum, monomials, product_factors
from repro.optimizer.range_restriction import extract_range_restrictions
from repro.optimizer.simplify import simplify

__all__ = [
    "connected_components",
    "decompose_product",
    "expand",
    "factorize_sum",
    "monomials",
    "product_factors",
    "extract_range_restrictions",
    "simplify",
]
