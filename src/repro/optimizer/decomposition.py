"""Join-graph (hypergraph) decomposition (rewrite rule 1, Figure 1).

A monomial whose join graph has several connected components is a Cartesian
product of those components; it is far cheaper to materialize each component
separately (``|Q1| + |Q2|`` stored values instead of ``|Q1| * |Q2|``).
Because taking a delta replaces a relation atom by a constant tuple, deltas
of linear multi-way joins routinely fall apart into disconnected components,
which is why this rule matters so much for HO-IVM (Section 5.1).

Two factors are connected when they share an *unbound* variable; trigger
variables and other bound variables do not connect components (their values
are supplied from outside, so they induce no join dependency).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.agca.ast import Expr, Product, free_variables
from repro.agca.builders import prod
from repro.optimizer.expansion import product_factors


def connected_components(
    factors: Sequence[Expr], bound: Iterable[str] = ()
) -> list[list[Expr]]:
    """Group ``factors`` into connected components of the shared-variable graph.

    The relative order of factors inside a component is preserved (sideways
    binding still has to work after regrouping).
    """
    bound_set = frozenset(bound)
    if not factors:
        return []
    variables = [free_variables(f) - bound_set for f in factors]
    parent = list(range(len(factors)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i in range(len(factors)):
        for j in range(i + 1, len(factors)):
            if variables[i] & variables[j]:
                union(i, j)

    groups: dict[int, list[Expr]] = {}
    order: list[int] = []
    for i, factor in enumerate(factors):
        root = find(i)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(factor)
    return [groups[root] for root in order]


def decompose_product(expr: Expr, bound: Iterable[str] = ()) -> list[Expr]:
    """Split a monomial into the products of its connected components."""
    factors = product_factors(expr) if isinstance(expr, Product) else [expr]
    return [prod(*group) for group in connected_components(factors, bound)]
