"""Aggregate push-down over statement bodies.

After materialization, an update statement's right-hand side is a product of
map references, conditions and lifts.  When that product contains groups of
factors that only talk to each other through variables the statement does not
need (not target keys, not trigger variables), evaluating the raw product
enumerates the Cartesian product of the groups' rows.  Pushing a summation
into each group first (``Sum_K(G1) * Sum_K(G2)`` instead of
``Sum_K(G1 * G2)``) makes every group a small independent aggregate — this is
the aggregate/projection push-down the paper applies as part of the
input-variable rule, and it is what turns the PSP/MST re-evaluation
statements into sums of scans rather than nested loops.
"""

from __future__ import annotations

from typing import Iterable

from repro.agca.ast import AggSum, Expr, Product, free_variables
from repro.agca.builders import plus, prod
from repro.agca.schema import output_variables
from repro.optimizer.decomposition import connected_components
from repro.optimizer.expansion import monomials, product_factors


def push_aggregates(expr: Expr, keep: Iterable[str]) -> Expr:
    """Wrap independent factor groups of ``expr`` in their own aggregations.

    ``keep`` is the set of variables the caller still needs (statement target
    keys plus trigger variables); groups are formed by connectivity over all
    *other* variables, and each group that produces variables outside ``keep``
    is collapsed to ``Sum_{outputs ∩ keep}(group)``.
    """
    keep_set = frozenset(keep)
    terms = [_push_monomial(term, keep_set) for term in monomials(expr)]
    return plus(*terms)


def _push_monomial(term: Expr, keep: frozenset[str]) -> Expr:
    if isinstance(term, AggSum):
        return AggSum(term.group, _push_monomial(term.term, keep | frozenset(term.group)))
    if not isinstance(term, Product):
        return term
    factors = product_factors(term)
    groups = connected_components(factors, keep)
    if len(groups) <= 1:
        return term
    rebuilt: list[Expr] = []
    for group in groups:
        group_expr = prod(*group)
        try:
            outputs = output_variables(group_expr, keep)
        except Exception:
            rebuilt.append(group_expr)
            continue
        extra = outputs - keep
        if not extra:
            rebuilt.extend(group)
            continue
        rebuilt.append(AggSum(tuple(sorted(outputs & keep)), group_expr))
    return prod(*rebuilt)
