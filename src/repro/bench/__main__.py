"""Command-line entry point for the benchmark scenarios.

Examples
--------
Regenerate the Figure 6/7 refresh-rate table for two queries::

    python -m repro.bench rates --queries Q3 VWAP --events 1000

Trace one query (Figure 8 style)::

    python -m repro.bench trace Q3 --events 2000

Scaling experiment (Figure 11)::

    python -m repro.bench scaling --queries Q3 Q6 --scales 1 2 5

Workload feature table (Figure 2)::

    python -m repro.bench features

Throughput versus batch size (scale-out subsystem)::

    python -m repro.bench batch --query Q1 --batch-sizes 1 10 100 1000

Compiled versus interpreted trigger execution (writes BENCH_codegen.json)::

    python -m repro.bench codegen --events 3000

The six financial queries, nested aggregates included (writes
BENCH_finance.json; the listed queries must compile with zero fallbacks)::

    python -m repro.bench finance --require-compiled VWAP MST PSP

Compare the scale-out strategies against per-event HO-IVM::

    python -m repro.bench rates --queries Q1 --strategies dbtoaster \
        dbtoaster-batch dbtoaster-par --batch-size 100 --partitions 4

Per-map / per-partition memory statistics::

    python -m repro.bench stats Q3 --strategy dbtoaster-par --partitions 4

Durable ingest throughput and recovery time (writes BENCH_durability.json)::

    python -m repro.bench durability --events 50000
"""

from __future__ import annotations

import argparse

from repro.bench.report import (
    codegen_sweep_json,
    durability_bench_json,
    format_batch_sweep,
    format_codegen_sweep,
    format_durability_bench,
    format_engine_statistics,
    format_feature_table,
    format_refresh_rate_table,
    format_scaling_table,
    format_service_run,
    format_speedup_summary,
    format_trace,
)
from repro.bench.scenarios import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_CODEGEN_QUERIES,
    DEFAULT_FINANCE_QUERIES,
    DEFAULT_STRATEGIES,
    run_ablation,
    run_batch_size_sweep,
    run_codegen_sweep,
    run_durability_bench,
    run_engine_statistics,
    run_refresh_rate_table,
    run_scaling,
    run_service_freshness,
    run_trace_figure,
    workload_feature_table,
)
from repro.workloads import all_workloads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rates = sub.add_parser("rates", help="Figure 6/7: refresh rates per query and strategy")
    rates.add_argument("--queries", nargs="*", default=None, help="default: all workload queries")
    rates.add_argument("--strategies", nargs="*", default=list(DEFAULT_STRATEGIES))
    rates.add_argument("--events", type=int, default=1500)
    rates.add_argument("--budget", type=float, default=5.0, help="seconds per (query, strategy) run")
    rates.add_argument("--batch-size", type=int, default=None,
                       help="delta batch size for the dbtoaster-batch/-par strategies")
    rates.add_argument("--partitions", type=int, default=None,
                       help="partition count for the dbtoaster-par strategy")
    rates.add_argument("--backend", choices=["sequential", "process"], default=None,
                       help="executor backend for the dbtoaster-par strategy")

    trace = sub.add_parser("trace", help="Figures 8-10: time/rate/memory trace for one query")
    trace.add_argument("query")
    trace.add_argument("--strategies", nargs="*", default=["dbtoaster", "ivm"])
    trace.add_argument("--events", type=int, default=2000)
    trace.add_argument("--samples", type=int, default=20)
    trace.add_argument("--budget", type=float, default=30.0)

    scaling = sub.add_parser("scaling", help="Figure 11: refresh rate vs scale factor")
    scaling.add_argument("--queries", nargs="*", default=None)
    scaling.add_argument("--scales", nargs="*", type=float, default=[1.0, 2.0, 5.0, 10.0])
    scaling.add_argument("--events-per-unit", type=int, default=800)

    ablation = sub.add_parser("ablation", help="Effect of individual compiler heuristics")
    ablation.add_argument("query")
    ablation.add_argument("--events", type=int, default=1200)

    batch = sub.add_parser("batch", help="Scale-out: throughput versus delta batch size")
    batch.add_argument("--query", default="Q1")
    batch.add_argument("--batch-sizes", nargs="*", type=int, default=list(DEFAULT_BATCH_SIZES))
    batch.add_argument("--events", type=int, default=3000)
    batch.add_argument("--budget", type=float, default=10.0)

    codegen = sub.add_parser(
        "codegen", help="Codegen: compiled versus interpreted per-event throughput"
    )
    codegen.add_argument("--queries", nargs="*", default=list(DEFAULT_CODEGEN_QUERIES))
    codegen.add_argument("--events", type=int, default=3000)
    codegen.add_argument("--budget", type=float, default=10.0,
                         help="seconds per (query, strategy) run")
    codegen.add_argument("--output", default="BENCH_codegen.json",
                         help="where to write the JSON record ('-' disables)")
    codegen.add_argument("--min-speedup", type=float, default=1.0,
                         help="exit nonzero when a fully-compiled query's speedup "
                              "falls below this bound (the CI regression gate)")
    codegen.add_argument("--min-fused-speedup", type=float, default=0.9,
                         help="exit nonzero when a fully-compiled query's fused "
                              "throughput falls below this fraction of its "
                              "per-statement throughput (no-regression gate; the "
                              "0.9 default absorbs timer noise on queries whose "
                              "statements dwarf dispatch cost)")
    codegen.add_argument("--require-compiled", nargs="*", default=[],
                         help="queries that must report fallback_statements == 0 "
                              "(exit nonzero otherwise; guards the nested-aggregate "
                              "lowering against silent regression)")
    codegen.add_argument("--max-telemetry-overhead", type=float, default=0.05,
                         help="exit nonzero when the metrics-enabled fused run is "
                              "slower than the metrics-disabled one by more than "
                              "this fraction (best-of-retries; 'inf' disables "
                              "the overhead gate)")
    codegen.add_argument("--max-provenance-overhead", type=float, default=0.15,
                         help="exit nonzero when the provenance-enabled fused run "
                              "is slower than the plain fused one by more than "
                              "this fraction (best-of-retries; 'inf' disables "
                              "the gate)")
    codegen.add_argument("--max-wal-overhead", type=float, default=0.5,
                         help="exit nonzero when durable ingest (per-batch WAL "
                              "fsync behind the service) loses more than this "
                              "fraction of fused throughput on the durability "
                              "queries (best-of-retries; 'inf' disables the gate)")
    codegen.add_argument("--min-vector-speedup", type=float, default=0.0,
                         help="exit nonzero when the columnar numpy backend's "
                              "staged rate falls below this multiple of the "
                              "fused rate on any query that vectorized (0 "
                              "disables; the gate is skipped per-query when "
                              "numpy is missing or nothing vectorized)")
    codegen.add_argument("--vector-batch-size", type=int, default=None,
                         help="delta batch size of the vector axis (default "
                              "10000; 0 skips the axis entirely)")
    codegen.add_argument("--vector-events", type=int, default=None,
                         help="events replayed for the vector axis "
                              "(default 30000)")

    finance = sub.add_parser(
        "finance",
        help="Codegen over the six financial queries (writes BENCH_finance.json)",
    )
    finance.add_argument("--queries", nargs="*", default=list(DEFAULT_FINANCE_QUERIES))
    finance.add_argument("--events", type=int, default=3000)
    finance.add_argument("--budget", type=float, default=20.0,
                         help="seconds per (query, strategy) run")
    finance.add_argument("--output", default="BENCH_finance.json",
                         help="where to write the JSON record ('-' disables)")
    finance.add_argument("--min-speedup", type=float, default=1.0,
                         help="exit nonzero when a fully-compiled query's speedup "
                              "falls below this bound (the CI regression gate)")
    finance.add_argument("--min-fused-speedup", type=float, default=0.9,
                         help="exit nonzero when a fully-compiled query's fused "
                              "throughput falls below this fraction of its "
                              "per-statement throughput")
    finance.add_argument("--require-compiled", nargs="*",
                         default=["VWAP", "MST", "PSP"],
                         help="queries that must report fallback_statements == 0")
    finance.add_argument("--max-telemetry-overhead", type=float, default=0.05,
                         help="exit nonzero when the metrics-enabled fused run is "
                              "slower than the metrics-disabled one by more than "
                              "this fraction (best-of-retries; 'inf' disables "
                              "the overhead gate)")
    finance.add_argument("--max-provenance-overhead", type=float, default=0.15,
                         help="exit nonzero when the provenance-enabled fused run "
                              "is slower than the plain fused one by more than "
                              "this fraction (best-of-retries; 'inf' disables "
                              "the gate)")
    finance.add_argument("--max-wal-overhead", type=float, default=0.5,
                         help="exit nonzero when durable ingest loses more than "
                              "this fraction of fused throughput on the "
                              "durability queries, when any are in the sweep "
                              "('inf' disables the gate)")
    finance.add_argument("--min-vector-speedup", type=float, default=0.0,
                         help="exit nonzero when the columnar numpy backend's "
                              "staged rate falls below this multiple of the "
                              "fused rate on any query that vectorized (0 "
                              "disables)")
    finance.add_argument("--vector-batch-size", type=int, default=None,
                         help="delta batch size of the vector axis (default "
                              "10000; 0 skips the axis entirely)")
    finance.add_argument("--vector-events", type=int, default=None,
                         help="events replayed for the vector axis "
                              "(default 30000)")

    stats = sub.add_parser("stats", help="Per-map / per-partition memory statistics")
    stats.add_argument("query")
    stats.add_argument("--strategy", default="dbtoaster")
    stats.add_argument("--events", type=int, default=1000)
    stats.add_argument("--batch-size", type=int, default=None)
    stats.add_argument("--partitions", type=int, default=None)
    stats.add_argument("--backend", choices=["sequential", "process"], default=None)
    stats.add_argument("--json", action="store_true",
                       help="emit the unified statistics schema (repro.stats/1) "
                            "as JSON instead of the formatted table")

    service = sub.add_parser(
        "service", help="Serving layer: query latency/freshness under concurrent ingest"
    )
    service.add_argument("--query", default="Q1")
    service.add_argument("--engine",
                         choices=["incremental", "compiled", "batched", "partitioned"],
                         default="incremental")
    service.add_argument("--events", type=int, default=2000)
    service.add_argument("--ingest-chunk", type=int, default=64)
    service.add_argument("--batch-size", type=int, default=None)
    service.add_argument("--partitions", type=int, default=None)
    service.add_argument("--backend", choices=["sequential", "process"], default=None)

    durability = sub.add_parser(
        "durability",
        help="Durable ingest throughput and recovery time "
             "(writes BENCH_durability.json)",
    )
    durability.add_argument("--query", default="Q1")
    durability.add_argument("--engine",
                            choices=["incremental", "compiled", "batched"],
                            default="incremental")
    durability.add_argument("--events", type=int, default=50_000)
    durability.add_argument("--scale", type=float, default=None,
                            help="dataset scale factor (the default TPC-H "
                                 "dataset yields ~7k stream events; raise this "
                                 "when --events asks for more)")
    durability.add_argument("--ingest-batch", type=int, default=500)
    durability.add_argument("--checkpoint-every", type=int, default=10,
                            help="cut an incremental checkpoint every N ingest "
                                 "batches")
    durability.add_argument("--output", default="BENCH_durability.json",
                            help="where to write the JSON record ('-' disables)")
    durability.add_argument("--min-recovery-speedup", type=float, default=1.0,
                            help="exit nonzero when chain restore + WAL tail is "
                                 "not at least this many times faster than "
                                 "replaying the full stream (0 disables)")

    sub.add_parser("features", help="Figure 2: workload features and compiled-program stats")
    sub.add_parser("list", help="List the available workload queries")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name, spec in sorted(all_workloads().items()):
            print(f"{name:8s} {spec.family:8s} {spec.description}")
        return 0

    if args.command == "rates":
        results = run_refresh_rate_table(
            queries=args.queries,
            strategies=tuple(args.strategies),
            events=args.events,
            max_seconds_per_run=args.budget,
            engine_config={
                "batch_size": args.batch_size,
                "partitions": args.partitions,
                "backend": args.backend,
            },
        )
        print(format_refresh_rate_table(results, tuple(args.strategies)))
        if "rep" in args.strategies and "dbtoaster" in args.strategies:
            print()
            print(format_speedup_summary(results, baseline="rep"))
        return 0

    if args.command == "trace":
        traces = run_trace_figure(
            args.query,
            strategies=tuple(args.strategies),
            events=args.events,
            samples=args.samples,
            max_seconds_per_run=args.budget,
        )
        for trace in traces.values():
            print(format_trace(trace))
            print()
        return 0

    if args.command == "scaling":
        results = run_scaling(
            queries=tuple(args.queries) if args.queries else ("Q1", "Q3", "Q6", "Q11a"),
            scales=tuple(args.scales),
            events_per_scale_unit=args.events_per_unit,
        )
        print(format_scaling_table(results, base_scale=min(args.scales)))
        return 0

    if args.command == "ablation":
        results = run_ablation(args.query, events=args.events)
        for label, result in results.items():
            print(f"{label:22s} {result.refresh_rate:12,.1f} refreshes/s")
        return 0

    if args.command == "batch":
        results = run_batch_size_sweep(
            query=args.query,
            batch_sizes=tuple(args.batch_sizes),
            events=args.events,
            max_seconds_per_run=args.budget,
        )
        print(f"throughput vs batch size for {args.query}:")
        print(format_batch_sweep(results))
        return 0

    if args.command in ("codegen", "finance"):
        import json

        from repro.bench.scenarios import VECTOR_BATCH_SIZE, VECTOR_EVENTS

        vector_batch_size = (
            args.vector_batch_size if args.vector_batch_size is not None
            else VECTOR_BATCH_SIZE
        )
        results = run_codegen_sweep(
            queries=tuple(args.queries),
            events=args.events,
            max_seconds_per_run=args.budget,
            telemetry_overhead_target=args.max_telemetry_overhead,
            provenance_overhead_target=args.max_provenance_overhead,
            wal_overhead_target=args.max_wal_overhead,
            vector_batch_size=vector_batch_size or None,
            vector_events=args.vector_events or VECTOR_EVENTS,
        )
        print("compiled vs interpreted per-event throughput:")
        print(format_codegen_sweep(results))
        if args.output != "-":
            with open(args.output, "w") as handle:
                json.dump(codegen_sweep_json(results), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.output}")
        # Compilation gate: the listed queries must run without a single
        # interpreter fallback, so the := / nested-aggregate lowering cannot
        # silently regress back onto the interpreter.  A required query
        # missing from the sweep is a gate-configuration error, not a pass.
        missing = [query for query in args.require_compiled if query not in results]
        if missing:
            print(
                "codegen gate error: --require-compiled names queries outside "
                "the sweep: " + ", ".join(missing)
            )
            return 3
        not_compiled = [
            f"{query}: {results[query]['fallback_statements']} fallback statements"
            for query in args.require_compiled
            if results[query]["fallback_statements"] != 0
        ]
        if not_compiled:
            print("codegen fallback regression: " + "; ".join(not_compiled))
            return 3
        # Regression gate: a fully-compiled query must not run slower than the
        # interpreter (queries dominated by interpreter fallbacks are exempt —
        # their speedup is noise around 1.0 by construction).
        failures = [
            f"{query}: {row['speedup']:.2f}x < {args.min_speedup:.2f}x"
            for query, row in results.items()
            if row["fallback_statements"] == 0 and row["speedup"] < args.min_speedup
        ]
        if failures:
            print("codegen throughput regression: " + "; ".join(failures))
            return 2
        # Fusion gate: on a fully-compiled query, whole-trigger fusion must
        # not run slower than per-statement dispatch (within timer noise).
        fusion_failures = [
            f"{query}: fused {row['fused_speedup']:.2f}x < "
            f"{args.min_fused_speedup:.2f}x of per-statement"
            for query, row in results.items()
            if row["fallback_statements"] == 0
            and row["fused_kernels"] > 0
            and row["fused_speedup"] < args.min_fused_speedup
        ]
        if fusion_failures:
            print("fusion throughput regression: " + "; ".join(fusion_failures))
            return 2
        # Overhead gate: the metrics-enabled fused run must stay within the
        # budget of the metrics-disabled one (burst-profiling telemetry; the
        # sweep already re-measured both sides on a miss, so a failure here
        # survived best-of-retries).
        overhead_failures = [
            f"{query}: {row['telemetry_overhead']:+.1%} > "
            f"{args.max_telemetry_overhead:.1%}"
            for query, row in results.items()
            if row.get("telemetry_overhead") is not None
            and row["telemetry_overhead"] > args.max_telemetry_overhead
        ]
        if overhead_failures:
            print("telemetry overhead regression: " + "; ".join(overhead_failures))
            return 2
        # Provenance gate: fused execution with per-view history rings on
        # must stay within its budgeted overhead of the rings-off run.
        provenance_failures = [
            f"{query}: {row['provenance_overhead']:+.1%} > "
            f"{args.max_provenance_overhead:.1%}"
            for query, row in results.items()
            if row.get("provenance_overhead") is not None
            and row["provenance_overhead"] > args.max_provenance_overhead
        ]
        if provenance_failures:
            print("provenance overhead regression: " + "; ".join(provenance_failures))
            return 2
        # Durability gate: group-fsynced WAL ingest through the service must
        # retain at least (1 - max_wal_overhead) of the fused in-memory rate.
        wal_failures = [
            f"{query}: {row['wal_overhead']:+.1%} > {args.max_wal_overhead:.1%}"
            for query, row in results.items()
            if row.get("wal_overhead") is not None
            and row["wal_overhead"] > args.max_wal_overhead
        ]
        if wal_failures:
            print("durable ingest overhead regression: " + "; ".join(wal_failures))
            return 2
        # Vector gate: on queries where the columnar backend actually ran
        # (numpy present, >= 1 statement vectorized), its staged throughput
        # must beat fused by the configured multiple.  Queries that fell
        # back wholesale record a vector_reason instead and are exempt —
        # the fallback path is the correctness contract, not a regression.
        if args.min_vector_speedup > 0:
            vector_failures = [
                f"{query}: vector {row['vector_speedup']:.2f}x < "
                f"{args.min_vector_speedup:.2f}x of fused"
                for query, row in results.items()
                if row.get("vector_speedup") is not None
                and row["vector_speedup"] < args.min_vector_speedup
            ]
            if vector_failures:
                print("vector throughput regression: " + "; ".join(vector_failures))
                return 2
        return 0

    if args.command == "stats":
        statistics = run_engine_statistics(
            args.query,
            strategy=args.strategy,
            events=args.events,
            engine_config={
                "batch_size": args.batch_size,
                "partitions": args.partitions,
                "backend": args.backend,
            },
        )
        if args.json:
            import json

            from repro.telemetry import unify_statistics

            unified = unify_statistics(statistics)
            unified.pop("raw", None)
            partitioning = unified.get("partitioning") or {}
            for partition in partitioning.get("partitions", ()):
                partition.pop("raw", None)
            print(json.dumps(unified, indent=2, sort_keys=True, default=str))
        else:
            print(format_engine_statistics(statistics, f"{args.query} / {args.strategy}"))
        return 0

    if args.command == "service":
        result = run_service_freshness(
            query=args.query,
            engine_mode=args.engine,
            events=args.events,
            ingest_chunk=args.ingest_chunk,
            engine_config={
                "batch_size": args.batch_size,
                "partitions": args.partitions,
                "backend": args.backend,
            },
        )
        print(format_service_run(result))
        return 0

    if args.command == "durability":
        import json

        result = run_durability_bench(
            query=args.query,
            engine_mode=args.engine,
            events=args.events,
            ingest_batch=args.ingest_batch,
            checkpoint_every=args.checkpoint_every,
            scale=args.scale,
        )
        print(format_durability_bench(result))
        if args.output != "-":
            with open(args.output, "w") as handle:
                json.dump(durability_bench_json(result), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.output}")
        # Recovery-time gate: incremental checkpoints exist to make restart
        # cheaper than reprocessing history; if they are not, that is a bug.
        if (
            args.min_recovery_speedup > 0
            and result.recovery_speedup < args.min_recovery_speedup
        ):
            print(
                f"recovery-time regression: {result.recovery_speedup:.2f}x < "
                f"{args.min_recovery_speedup:.2f}x over full replay"
            )
            return 2
        return 0

    if args.command == "features":
        print(format_feature_table(workload_feature_table()))
        return 0

    return 1


if __name__ == "__main__":
    raise SystemExit(main())
