"""One entry point per paper table/figure (the experiment index of DESIGN.md).

Every scenario takes explicit size parameters so the same code drives both
the quick pytest-benchmark runs in ``benchmarks/`` and larger standalone runs
whose output is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bench.harness import RunResult, TraceResult, measure_refresh_rate, run_trace
from repro.bench.strategies import build_engine, custom_options_engine
from repro.compiler.hoivm import compile_query
from repro.workloads import WorkloadSpec, all_workloads, workload

#: Strategy columns of the Figure 6/7 table, in the paper's order.
DEFAULT_STRATEGIES: tuple[str, ...] = (
    "rep",
    "dbx-rep",
    "dbx-ivm",
    "spy",
    "dbtoaster",
    "naive",
    "ivm",
)

#: The trace queries shown in Figures 8, 9, 10 (one representative per panel).
TRACE_QUERIES: tuple[str, ...] = (
    "Q1", "Q3", "Q17a", "Q19", "Q22a", "AXF", "MST", "PSP", "VWAP",
)

#: TPC-H subset used for the scaling experiment (Figure 11).
SCALING_QUERIES: tuple[str, ...] = ("Q1", "Q3", "Q4", "Q6", "Q11a", "Q12", "Q17a", "Q18a")


def _call_with_supported(fn, **kwargs):
    """Call ``fn`` passing only the keyword arguments it accepts."""
    parameters = inspect.signature(fn).parameters
    if any(p.kind == inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return fn(**kwargs)
    return fn(**{k: v for k, v in kwargs.items() if k in parameters})


def _prepare(spec: WorkloadSpec, events: int, scale: float | None, seed: int):
    kwargs = {"events": events, "seed": seed}
    if scale is not None:
        kwargs["scale"] = scale
    agenda = _call_with_supported(spec.stream_factory, **kwargs)
    static_kwargs = {"seed": seed}
    if scale is not None:
        static_kwargs["scale"] = scale
    static = (
        _call_with_supported(spec.static_factory, **static_kwargs)
        if spec.static_factory is not None
        else {}
    )
    return agenda, static


# ---------------------------------------------------------------------------
# Figures 6 and 7: refresh-rate comparison across strategies
# ---------------------------------------------------------------------------


def run_refresh_rate_table(
    queries: Iterable[str] | None = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    events: int = 1500,
    max_seconds_per_run: float = 5.0,
    seed: int = 7,
    engine_config: Mapping[str, object] | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Average refresh rate per query and strategy (Figures 6 and 7).

    ``engine_config`` forwards execution parameters (``batch_size``,
    ``partitions``, ``backend``) to the strategies that understand them
    (the ``dbtoaster-batch`` / ``dbtoaster-par`` scale-out modes).
    """
    names = list(queries) if queries is not None else sorted(all_workloads())
    config = dict(engine_config or {})
    results: dict[str, dict[str, RunResult]] = {}
    for name in names:
        spec = workload(name)
        agenda, static = _prepare(spec, events, None, seed)
        translated = spec.query_factory()
        per_query: dict[str, RunResult] = {}
        for strategy in strategies:
            engine = build_engine(strategy, translated, **config)
            try:
                per_query[strategy] = measure_refresh_rate(
                    engine,
                    agenda,
                    static,
                    max_seconds=max_seconds_per_run,
                    strategy=strategy,
                    query=name,
                )
            finally:
                if hasattr(engine, "close"):
                    engine.close()
        results[name] = per_query
    return results


# ---------------------------------------------------------------------------
# Figures 8-10 (and 13-18): per-query traces
# ---------------------------------------------------------------------------


def run_trace_figure(
    query: str,
    strategies: Sequence[str] = ("dbtoaster", "ivm"),
    events: int = 2000,
    samples: int = 20,
    max_seconds_per_run: float = 10.0,
    seed: int = 7,
) -> dict[str, TraceResult]:
    """Time / refresh-rate / memory traces for one query (Figures 8-10, 13-18)."""
    spec = workload(query)
    agenda, static = _prepare(spec, events, None, seed)
    translated = spec.query_factory()
    traces: dict[str, TraceResult] = {}
    for strategy in strategies:
        engine = build_engine(strategy, translated)
        traces[strategy] = run_trace(
            engine,
            agenda,
            static,
            samples=samples,
            max_seconds=max_seconds_per_run,
            strategy=strategy,
            query=query,
        )
    return traces


# ---------------------------------------------------------------------------
# Figure 11: stream scalability
# ---------------------------------------------------------------------------


def run_scaling(
    queries: Sequence[str] = SCALING_QUERIES,
    scales: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    events_per_scale_unit: int = 800,
    max_seconds_per_run: float = 10.0,
    seed: int = 7,
) -> dict[str, dict[float, RunResult]]:
    """Refresh rate as the stream grows with the scale factor (Figure 11)."""
    results: dict[str, dict[float, RunResult]] = {}
    for name in queries:
        spec = workload(name)
        translated = spec.query_factory()
        per_scale: dict[float, RunResult] = {}
        for scale in scales:
            events = int(events_per_scale_unit * scale)
            agenda, static = _prepare(spec, events, scale, seed)
            engine = build_engine("dbtoaster", translated)
            per_scale[scale] = measure_refresh_rate(
                engine,
                agenda,
                static,
                max_seconds=max_seconds_per_run,
                strategy="dbtoaster",
                query=name,
            )
        results[name] = per_scale
    return results


# ---------------------------------------------------------------------------
# Scale-out: throughput versus batch size / partition statistics
# ---------------------------------------------------------------------------

#: Batch sizes swept by the throughput-vs-batch-size scenario.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 10, 100, 1000)


def run_batch_size_sweep(
    query: str = "Q1",
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    events: int = 3000,
    max_seconds_per_run: float = 10.0,
    seed: int = 7,
    backends: Sequence[str] = ("scalar", "vector"),
) -> dict[str, RunResult]:
    """Throughput of delta-batched execution as the batch size grows.

    Returns one entry per batch size (labelled ``batch-<n>``) plus the
    per-event ``dbtoaster`` baseline, all replaying the same agenda.  The
    interesting shape: large batches amortize per-event trigger overhead and
    should beat the baseline by >= 2x on linear TPC-H views.

    For each backend in ``backends`` the sweep adds staged compiled runs
    (``staged-<n>`` for scalar, ``vector-<n>`` for the columnar numpy
    backend) timed through ``stage``/``apply_staged``: these two series
    share one methodology, so their intersection is the crossover point
    where vectorization starts beating scalar fusion.
    """
    spec = workload(query)
    agenda, static = _prepare(spec, events, None, seed)
    translated = spec.query_factory()
    results: dict[str, RunResult] = {}
    baseline = build_engine("dbtoaster", translated)
    results["dbtoaster"] = measure_refresh_rate(
        baseline,
        agenda,
        static,
        max_seconds=max_seconds_per_run,
        strategy="dbtoaster",
        query=query,
    )
    for batch_size in batch_sizes:
        engine = build_engine("dbtoaster-batch", translated, batch_size=batch_size)
        results[f"batch-{batch_size}"] = measure_refresh_rate(
            engine,
            agenda,
            static,
            max_seconds=max_seconds_per_run,
            strategy=f"batch-{batch_size}",
            query=query,
        )
    labels = {"scalar": "staged", "vector": "vector"}
    for backend in backends:
        for batch_size in batch_sizes:
            label = f"{labels.get(backend, backend)}-{batch_size}"
            run, _ = _measure_staged_run(
                translated, agenda, static, query, max_seconds_per_run,
                batch_size, backend, label, retries=1,
            )
            results[label] = run
    return results


# ---------------------------------------------------------------------------
# Codegen: compiled versus interpreted trigger execution
# ---------------------------------------------------------------------------

#: Queries swept by ``python -m repro.bench codegen`` by default: the linear
#: TPC-H views where compilation shines, one join view, plus a nested-
#: aggregate query exercising the per-statement interpreter fallback.
DEFAULT_CODEGEN_QUERIES: tuple[str, ...] = ("Q1", "Q3", "Q6", "VWAP")

#: The six financial queries of Appendix A.2 — the ``finance`` sweep behind
#: BENCH_finance.json, all expected to compile with zero fallbacks.
DEFAULT_FINANCE_QUERIES: tuple[str, ...] = ("AXF", "BSP", "BSV", "MST", "PSP", "VWAP")


#: Burst-profiling configuration of the telemetry benchmark axis: re-arm
#: every 2 ms for 64 timed events.  Bounded-overhead sampling — see
#: ``repro.telemetry.core.Telemetry`` — so even >1M events/s fused hot paths
#: stay within the overhead gate while still filling latency histograms.
TELEMETRY_PROFILE_INTERVAL = 0.002
TELEMETRY_PROFILE_BURST = 64


def _measure_telemetry_run(translated, agenda, static, name, max_seconds):
    """One metrics-enabled fused run; returns (RunResult, event p50/p99 seconds)."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry(
        enabled=True,
        profile_interval=TELEMETRY_PROFILE_INTERVAL,
        profile_burst=TELEMETRY_PROFILE_BURST,
    )
    engine = build_engine("dbtoaster-comp", translated, telemetry=telemetry)
    try:
        result = measure_refresh_rate(
            engine,
            agenda,
            static,
            max_seconds=max_seconds,
            strategy="telemetry",
            query=name,
        )
    finally:
        if hasattr(engine, "close"):
            engine.close()
    family = telemetry.registry.histogram_family(
        "repro_engine_trigger_latency_seconds"
    )
    p50 = family["p50"] if family and family["count"] else 0.0
    p99 = family["p99"] if family and family["count"] else 0.0
    return result, p50, p99


def _measure_provenance_run(translated, agenda, static, name, max_seconds):
    """One fused run with row-provenance rings enabled on every view."""
    engine = build_engine("dbtoaster-comp", translated)
    try:
        engine.enable_provenance()
        return measure_refresh_rate(
            engine,
            agenda,
            static,
            max_seconds=max_seconds,
            strategy="provenance",
            query=name,
        )
    finally:
        if hasattr(engine, "close"):
            engine.close()


#: Events per durable ingest batch (one WAL record + group fsync per batch).
DURABLE_INGEST_BATCH = 100


def _measure_durable_run(translated, agenda, static, name, max_seconds,
                         fsync_every=1, batch_events=DURABLE_INGEST_BATCH):
    """One fused run behind a :class:`ViewService` with a per-batch-fsynced WAL.

    Measures the durable ingest path end to end: wire-encode + CRC + append +
    fsync before the events touch engine state, in ingest batches of
    ``batch_events``.  Returns ``(RunResult, wal stats)``.
    """
    import tempfile
    import time

    from repro.service.core import ViewService

    engine = build_engine("dbtoaster-comp", translated)
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as wal_dir:
        service = ViewService(engine, wal_dir=wal_dir, fsync_every=fsync_every)
        try:
            for relation, rows in (static or {}).items():
                service.load_static(relation, rows)
            events = list(agenda)
            processed = 0
            start = time.perf_counter()
            deadline = start + max_seconds if max_seconds is not None else None
            for index in range(0, len(events), batch_events):
                batch = events[index:index + batch_events]
                service.ingest(batch)
                processed += len(batch)
                if deadline is not None and time.perf_counter() >= deadline:
                    break
            elapsed = time.perf_counter() - start
            memory = engine.memory_bytes() if hasattr(engine, "memory_bytes") else 0
            result = RunResult(
                strategy="durable",
                query=name,
                events_processed=processed,
                elapsed_seconds=elapsed,
                memory_bytes=memory,
                completed=processed == len(events),
            )
            return result, service.wal.stats()
        finally:
            service.close()


def _measure_fused_run(translated, agenda, static, name, max_seconds):
    """One plain fused run (the baseline side of every overhead pair)."""
    engine = build_engine("dbtoaster-comp", translated)
    try:
        return measure_refresh_rate(
            engine,
            agenda,
            static,
            max_seconds=max_seconds,
            strategy="fused",
            query=name,
        )
    finally:
        if hasattr(engine, "close"):
            engine.close()


def _paired_overhead(measure_baseline, measure_instrumented, target, retries):
    """Minimum overhead over baseline/instrumented pairs measured back-to-back.

    Each attempt measures the plain fused baseline and the instrumented run
    under the same load, and the overhead recorded is the one *within* the
    best pair.  Comparing independent best-of-N runs instead can report
    negative overheads — the baseline simply drew more interference than
    every instrumented run — which is exactly the noise the ``--max-*``
    CI gates must not measure.  Retries stop as soon as a pair lands within
    ``target`` (timer noise is one-sided, so the minimum converges on the
    true overhead from above).

    Returns ``(overhead, baseline_run, instrumented_payload)``.
    """
    best = None
    for _ in range(max(1, retries)):
        baseline = measure_baseline()
        payload = measure_instrumented()
        run = payload[0] if isinstance(payload, tuple) else payload
        overhead = (
            1.0 - run.refresh_rate / baseline.refresh_rate
            if baseline.refresh_rate > 0
            else 0.0
        )
        if best is None or overhead < best[0]:
            best = (overhead, baseline, payload)
        if target is None or best[0] <= target:
            break
    return best


#: Delta batch size of the headline columnar-backend measurement.  Array
#: kernels amortize their per-batch dispatch over the whole batch, so the
#: vector axis is measured at a large batch (and a larger replayed agenda);
#: ``run_batch_size_sweep`` shows the crossover at small sizes.
VECTOR_BATCH_SIZE = 10_000

#: Events replayed for the vector axis (larger than the per-event axes so
#: several full batches fit; rates are steady-state events/second either way).
VECTOR_EVENTS = 30_000


def _measure_staged_run(translated, agenda, static, name, max_seconds,
                        batch_size, backend, strategy, retries=3):
    """Best-of-N batched run timed through the staged ingest path.

    Staging (fold + columnarization) happens outside the timed region —
    the measured rate is the view-maintenance work itself, which is what
    the fused per-event rate it is compared against measures too.
    Returns ``(RunResult, batching statistics)`` of the best attempt.
    """
    best = best_stats = None
    events = list(agenda)
    chunks = [events[i:i + batch_size] for i in range(0, len(events), batch_size)]
    for _ in range(max(1, retries)):
        engine = build_engine(
            "dbtoaster-batch", translated,
            batch_size=batch_size, compiled=True, backend=backend,
        )
        try:
            for relation, rows in (static or {}).items():
                engine.load_static(relation, rows)
            staged = [engine.stage(chunk) for chunk in chunks]
            processed = 0
            start = time.perf_counter()
            deadline = start + max_seconds if max_seconds is not None else None
            for batch in staged:
                processed += engine.apply_staged(batch)
                if deadline is not None and time.perf_counter() >= deadline:
                    break
            elapsed = time.perf_counter() - start
            memory = engine.memory_bytes()
            stats = dict(engine.statistics()["batching"])
        finally:
            if hasattr(engine, "close"):
                engine.close()
        result = RunResult(
            strategy=strategy,
            query=name,
            events_processed=processed,
            elapsed_seconds=elapsed,
            memory_bytes=memory,
            completed=processed == len(events),
        )
        if best is None or result.refresh_rate > best.refresh_rate:
            best, best_stats = result, stats
    return best, best_stats


def run_codegen_sweep(
    queries: Sequence[str] = DEFAULT_CODEGEN_QUERIES,
    events: int = 3000,
    max_seconds_per_run: float = 10.0,
    seed: int = 7,
    telemetry_overhead_target: float | None = 0.05,
    telemetry_retries: int = 4,
    provenance_overhead_target: float | None = 0.10,
    durability_queries: Sequence[str] | None = ("Q1",),
    wal_overhead_target: float | None = 0.5,
    vector_batch_size: int | None = VECTOR_BATCH_SIZE,
    vector_events: int = VECTOR_EVENTS,
    vector_retries: int = 3,
) -> dict[str, dict[str, object]]:
    """Per-event throughput of fused/per-statement/interpreted execution.

    Replays the same agenda through ``dbtoaster`` (interpreted),
    ``dbtoaster-comp`` with ``fused=False`` (per-statement kernels) and
    ``dbtoaster-comp`` (whole-trigger fusion, the shipping configuration)
    and reports all three rates, the speedups, the statement coverage and
    the fusion statistics.  This is the benchmark behind
    ``BENCH_codegen.json`` and the CI regression gates: on a fully-compiled
    query, compiled throughput below the interpreted baseline — or fused
    throughput meaningfully below per-statement — is a bug, not noise.

    A fourth, metrics-enabled fused run (burst-profiling telemetry) yields
    the ``telemetry`` axis: its rate, the relative overhead against the
    metrics-disabled fused run, and the sampled per-event latency
    quantiles.  Overheads are measured against a *same-run paired*
    baseline: each attempt re-measures the plain fused run immediately
    before the instrumented one and the recorded overhead is the minimum
    over pairs (see :func:`_paired_overhead`) — comparing independently
    retried bests can report negative overheads when the baseline draws
    more interference, which defeated the CI gates.  Pairs are retried up
    to ``telemetry_retries`` times while above ``telemetry_overhead_target``.

    A fifth run measures the ``provenance`` axis the same way: fused
    execution with row-provenance rings enabled on every view (one watcher
    call per view mutation), paired against its own fused baseline while
    the overhead exceeds ``provenance_overhead_target``.

    For the queries in ``durability_queries`` a sixth run measures the
    ``durable`` axis: the same fused engine behind a ``ViewService`` with a
    write-ahead log fsynced once per 100-event ingest batch.  The recorded
    ``wal_overhead`` is the paired relative throughput loss against the
    in-memory fused run, retried while it exceeds ``wal_overhead_target``
    (the ``--max-wal-overhead`` CI gate).

    Finally the ``vector`` axis: the columnar numpy backend
    (``repro.codegen.vector``) driven through the staged batch path at
    ``vector_batch_size`` over a ``vector_events``-long replay of the same
    stream.  ``vector_speedup`` is its rate over the best fused rate and is
    only recorded for queries where at least one statement actually
    vectorized; otherwise the recorded ``vector_reason`` says why (numpy
    missing, no vectorizable statements, or every folded group below the
    ``min_vector_rows`` dispatch cutoff).  Pass ``vector_batch_size=None``
    to skip the axis.
    """
    runs = (
        ("interpreted", "dbtoaster", {}),
        ("compiled", "dbtoaster-comp", {"fused": False}),
        ("fused", "dbtoaster-comp", {}),
    )
    results: dict[str, dict[str, object]] = {}
    for name in queries:
        spec = workload(name)
        agenda, static = _prepare(spec, events, None, seed)
        translated = spec.query_factory()
        per_query: dict[str, RunResult] = {}
        codegen_stats: dict[str, object] = {}
        for label, strategy, config in runs:
            engine = build_engine(strategy, translated, **config)
            try:
                per_query[label] = measure_refresh_rate(
                    engine,
                    agenda,
                    static,
                    max_seconds=max_seconds_per_run,
                    strategy=label if label != "interpreted" else strategy,
                    query=name,
                )
                if label == "fused":
                    codegen_stats = dict(engine.statistics().get("codegen", {}))
            finally:
                if hasattr(engine, "close"):
                    engine.close()
        interpreted = per_query["interpreted"]
        compiled = per_query["compiled"]
        fused = per_query["fused"]

        def fused_baseline():
            return _measure_fused_run(
                translated, agenda, static, name, max_seconds_per_run
            )

        telemetry_overhead, fused_base, payload = _paired_overhead(
            fused_baseline,
            lambda: _measure_telemetry_run(
                translated, agenda, static, name, max_seconds_per_run
            ),
            telemetry_overhead_target,
            telemetry_retries,
        )
        telemetry_run, event_p50, event_p99 = payload
        if fused_base.refresh_rate > fused.refresh_rate:
            fused = fused_base

        provenance_overhead, fused_base, provenance_run = _paired_overhead(
            fused_baseline,
            lambda: _measure_provenance_run(
                translated, agenda, static, name, max_seconds_per_run
            ),
            provenance_overhead_target,
            telemetry_retries,
        )
        if fused_base.refresh_rate > fused.refresh_rate:
            fused = fused_base

        durable_run = wal_stats = wal_overhead = None
        if durability_queries is not None and name in durability_queries:
            wal_overhead, fused_base, payload = _paired_overhead(
                fused_baseline,
                lambda: _measure_durable_run(
                    translated, agenda, static, name, max_seconds_per_run
                ),
                wal_overhead_target,
                telemetry_retries,
            )
            durable_run, wal_stats = payload
            if fused_base.refresh_rate > fused.refresh_rate:
                fused = fused_base

        vector_run = vector_stats = None
        if vector_batch_size is not None:
            vector_agenda, _ = _prepare(spec, vector_events, None, seed)
            vector_run, vector_stats = _measure_staged_run(
                translated, vector_agenda, static, name, max_seconds_per_run,
                vector_batch_size, "vector", "vector", retries=vector_retries,
            )
        per_query["fused"] = fused

        speedup = (
            compiled.refresh_rate / interpreted.refresh_rate
            if interpreted.refresh_rate > 0
            else 0.0
        )
        fused_speedup = (
            fused.refresh_rate / compiled.refresh_rate
            if compiled.refresh_rate > 0
            else 0.0
        )
        results[name] = {
            "events": min(
                interpreted.events_processed,
                compiled.events_processed,
                fused.events_processed,
            ),
            "interpreted": interpreted,
            "compiled": compiled,
            "fused": fused,
            "telemetry": telemetry_run,
            "provenance": provenance_run,
            "speedup": speedup,
            "fused_speedup": fused_speedup,
            "telemetry_overhead": telemetry_overhead,
            "provenance_overhead": provenance_overhead,
            "event_p50_us": event_p50 * 1e6,
            "event_p99_us": event_p99 * 1e6,
            "compiled_statements": codegen_stats.get("compiled_statements", 0),
            "fallback_statements": codegen_stats.get("fallback_statements", 0),
            "fused_kernels": codegen_stats.get("fused_kernels", 0),
            "deduped_probes": codegen_stats.get("deduped_probes", 0),
            "deduped_scalars": codegen_stats.get("deduped_scalars", 0),
        }
        if durable_run is not None:
            results[name]["durable"] = durable_run
            results[name]["wal_overhead"] = wal_overhead
            results[name]["wal"] = wal_stats
        if vector_run is not None and vector_stats is not None:
            results[name]["vector"] = vector_run
            results[name]["vector_batch_size"] = vector_batch_size
            results[name]["vector_statements"] = vector_stats["vector_statements"]
            results[name]["vector_fallbacks"] = vector_stats["vector_fallbacks"]
            if vector_stats["vector_events"] > 0:
                results[name]["vector_speedup"] = (
                    vector_run.refresh_rate / fused.refresh_rate
                    if fused.refresh_rate > 0
                    else 0.0
                )
            else:
                reason = vector_stats.get("vector_reason")
                if reason is None:
                    if vector_stats.get("vector_statements"):
                        reason = ("no group reached vector dispatch "
                                  "(see vector_fallbacks)")
                    else:
                        reason = "no vectorizable statements"
                results[name]["vector_reason"] = reason
    return results


@dataclass(frozen=True)
class ServiceRunResult:
    """Freshness-versus-throughput measurements of a served view.

    ``staleness`` counts, per query, how many already-submitted events the
    returned snapshot version was missing — 0 means every read was perfectly
    fresh despite the concurrent ingest load.
    """

    query: str
    engine_mode: str
    events: int
    elapsed_seconds: float
    queries: int
    latencies_ms: tuple[float, ...]
    staleness: tuple[int, ...]
    final_version: int

    @property
    def ingest_rate(self) -> float:
        """Events ingested per second, over the wire."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events / self.elapsed_seconds

    @property
    def mean_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def p95_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    @property
    def max_staleness(self) -> int:
        return max(self.staleness) if self.staleness else 0


def run_service_freshness(
    query: str = "Q1",
    engine_mode: str = "incremental",
    events: int = 2000,
    ingest_chunk: int = 64,
    seed: int = 7,
    engine_config: Mapping[str, object] | None = None,
) -> ServiceRunResult:
    """Query latency and view freshness under concurrent ingestion.

    Starts a real TCP view server for ``query``, drives the workload stream
    through one client connection in ``ingest_chunk``-sized batches, and
    concurrently hammers snapshot queries from a second connection, recording
    per-query latency and staleness (events submitted minus snapshot
    version).  This is the serving-layer counterpart of the refresh-rate
    table: it measures what a *reader* experiences while the views are kept
    fresh, rather than raw event throughput.
    """
    import threading
    import time

    from repro.compiler.hoivm import compile_query as _compile
    from repro.service.client import ServiceClient
    from repro.service.core import ViewService, engine_for_mode
    from repro.service.server import start_in_thread

    spec = workload(query)
    agenda, static = _prepare(spec, events, None, seed)
    translated = spec.query_factory()
    program = _compile(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    config = dict(engine_config or {})
    engine = engine_for_mode(
        program,
        mode=engine_mode,
        batch_size=config.get("batch_size"),
        partitions=config.get("partitions"),
        backend=config.get("backend") or "sequential",
    )
    service = ViewService(engine)
    for relation, rows in static.items():
        if relation in program.static_relations:
            service.load_static(relation, rows)
    root = next(iter(translated.roots()))
    stream = list(agenda)

    handle = start_in_thread(service)
    latencies: list[float] = []
    staleness: list[int] = []
    submitted = 0
    done = threading.Event()

    def query_loop() -> None:
        with ServiceClient(*handle.address) as client:
            while not done.is_set():
                start = time.perf_counter()
                snapshot = client.query(root)
                latencies.append((time.perf_counter() - start) * 1000.0)
                staleness.append(max(0, submitted - snapshot.version))

    reader = threading.Thread(target=query_loop)
    try:
        with ServiceClient(*handle.address) as client:
            reader.start()
            start = time.perf_counter()
            for begin in range(0, len(stream), ingest_chunk):
                chunk = stream[begin:begin + ingest_chunk]
                submitted += len(chunk)
                client.ingest(chunk)
            elapsed = time.perf_counter() - start
            final_version = client.query(root).version
    finally:
        done.set()
        reader.join()
        handle.stop()
        service.close()
    return ServiceRunResult(
        query=query,
        engine_mode=engine_mode,
        events=len(stream),
        elapsed_seconds=elapsed,
        queries=len(latencies),
        latencies_ms=tuple(latencies),
        staleness=tuple(staleness),
        final_version=final_version,
    )


@dataclass(frozen=True)
class DurabilityBenchResult:
    """Durable ingest throughput and recovery-time comparison.

    ``recovery_seconds`` is the time to rebuild state from the newest intact
    base checkpoint, its delta chain and the WAL tail; ``full_replay_seconds``
    is the time a checkpoint-less restart needs to reprocess the entire
    stream.  Their ratio is the payoff of incremental checkpoints.
    """

    query: str
    engine_mode: str
    events: int
    ingest_batch: int
    checkpoints: int
    durable_elapsed_seconds: float
    wal: Mapping[str, object]
    recovery_seconds: float
    recovered_version: int
    restored_from_checkpoint: bool
    wal_batches_replayed: int
    full_replay_seconds: float

    @property
    def durable_ingest_rate(self) -> float:
        if self.durable_elapsed_seconds <= 0:
            return 0.0
        return self.events / self.durable_elapsed_seconds

    @property
    def full_replay_rate(self) -> float:
        if self.full_replay_seconds <= 0:
            return 0.0
        return self.events / self.full_replay_seconds

    @property
    def recovery_speedup(self) -> float:
        """How many times faster the chain restore is than replaying all events."""
        if self.recovery_seconds <= 0:
            return 0.0
        return self.full_replay_seconds / self.recovery_seconds


def run_durability_bench(
    query: str = "Q1",
    engine_mode: str = "incremental",
    events: int = 50_000,
    ingest_batch: int = 500,
    checkpoint_every: int = 10,
    checkpoint_full_every: int = 4,
    tail_batches: int = 5,
    fsync_every: int = 1,
    seed: int = 7,
    scale: float | None = None,
    engine_config: Mapping[str, object] | None = None,
) -> DurabilityBenchResult:
    """Measure durable ingest throughput and recovery time (BENCH_durability).

    Phase one ingests ``events`` in ``ingest_batch``-sized batches through a
    WAL-backed service (one fsynced record per batch), cutting an incremental
    checkpoint every ``checkpoint_every`` batches — the last ``tail_batches``
    batches stay uncheckpointed so recovery exercises the WAL tail.  Phase
    two times ``recover()`` on a fresh service over the same directories:
    newest intact base + delta chain + WAL tail replay.  Phase three times
    the no-durability alternative — reprocessing the full stream from the
    source — which is what a restart costs without checkpoints.

    The default TPC-H dataset yields ~7k stream events; pass ``scale`` to
    grow the dataset when ``events`` asks for more.
    """
    import tempfile
    import time

    from repro.compiler.hoivm import compile_query as _compile
    from repro.service.core import ViewService, engine_for_mode

    spec = workload(query)
    agenda, static = _prepare(spec, events, scale, seed)
    translated = spec.query_factory()
    program = _compile(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    config = dict(engine_config or {})

    def make_engine():
        return engine_for_mode(
            program,
            mode=engine_mode,
            batch_size=config.get("batch_size"),
            partitions=config.get("partitions"),
            backend=config.get("backend") or "sequential",
        )

    def load_statics(service: ViewService) -> None:
        for relation, rows in static.items():
            if relation in program.static_relations:
                service.load_static(relation, rows)

    stream = list(agenda)
    batches = [
        stream[i:i + ingest_batch] for i in range(0, len(stream), ingest_batch)
    ]
    cutoff = max(0, len(batches) - tail_batches)
    with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as base:
        service = ViewService(
            make_engine(),
            checkpoint_dir=f"{base}/ckpt",
            wal_dir=f"{base}/wal",
            fsync_every=fsync_every,
            checkpoint_full_every=checkpoint_full_every,
        )
        load_statics(service)
        checkpoints = 0
        start = time.perf_counter()
        for index, chunk in enumerate(batches):
            service.ingest(chunk)
            if index < cutoff and (index + 1) % checkpoint_every == 0:
                service.checkpoint()
                checkpoints += 1
        durable_elapsed = time.perf_counter() - start
        wal_stats = dict(service.wal.stats())
        service.close()

        recovered = ViewService(
            make_engine(),
            checkpoint_dir=f"{base}/ckpt",
            wal_dir=f"{base}/wal",
            fsync_every=fsync_every,
            checkpoint_full_every=checkpoint_full_every,
        )
        start = time.perf_counter()
        report = recovered.recover(load_statics=lambda: load_statics(recovered))
        recovery_seconds = time.perf_counter() - start
        recovered_version = recovered.version
        recovered.close()

    replayer = ViewService(make_engine())
    load_statics(replayer)
    start = time.perf_counter()
    for chunk in batches:
        replayer.ingest(chunk)
    full_replay_seconds = time.perf_counter() - start
    replayer.close()

    return DurabilityBenchResult(
        query=query,
        engine_mode=engine_mode,
        events=len(stream),
        ingest_batch=ingest_batch,
        checkpoints=checkpoints,
        durable_elapsed_seconds=durable_elapsed,
        wal=wal_stats,
        recovery_seconds=recovery_seconds,
        recovered_version=recovered_version,
        restored_from_checkpoint=bool(report.get("restored")),
        wal_batches_replayed=int(report.get("wal_batches_replayed", 0)),
        full_replay_seconds=full_replay_seconds,
    )


def run_engine_statistics(
    query: str,
    strategy: str = "dbtoaster",
    events: int = 1000,
    seed: int = 7,
    engine_config: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Replay a stream and collect per-map / per-partition statistics."""
    spec = workload(query)
    agenda, static = _prepare(spec, events, None, seed)
    translated = spec.query_factory()
    engine = build_engine(strategy, translated, **dict(engine_config or {}))
    try:
        for relation, rows in static.items():
            engine.load_static(relation, rows)
        for event in agenda:
            engine.apply(event)
        if hasattr(engine, "flush"):
            engine.flush()
        if hasattr(engine, "statistics"):
            return engine.statistics()
        return {"memory_bytes": getattr(engine, "memory_bytes", lambda: 0)()}
    finally:
        if hasattr(engine, "close"):
            engine.close()


# ---------------------------------------------------------------------------
# Figure 2: workload features / applied rewrites
# ---------------------------------------------------------------------------


def workload_feature_table(queries: Iterable[str] | None = None) -> dict[str, dict[str, object]]:
    """Query features plus compiled-program statistics (Figure 2)."""
    names = list(queries) if queries is not None else sorted(all_workloads())
    table: dict[str, dict[str, object]] = {}
    for name in names:
        spec = workload(name)
        translated = spec.query_factory()
        program = compile_query(
            translated.roots(),
            translated.schemas(),
            static_relations=translated.static_relations(),
        )
        row: dict[str, object] = dict(spec.features or {})
        row.update(program.summary())
        table[name] = row
    return table


# ---------------------------------------------------------------------------
# Ablations: effect of individual compiler heuristics
# ---------------------------------------------------------------------------

ABLATION_VARIANTS: Mapping[str, Mapping[str, object]] = {
    "full": {},
    "no-decomposition": {"decomposition": False},
    "no-range-extraction": {"extract_ranges": False},
    "no-factorization": {"factorization": False},
    "no-dedup": {"dedup": False},
    "nested-incremental": {"nested_strategy": "incremental"},
    "nested-reeval": {"nested_strategy": "reeval"},
}


def run_ablation(
    query: str,
    variants: Mapping[str, Mapping[str, object]] = ABLATION_VARIANTS,
    events: int = 1200,
    max_seconds_per_run: float = 5.0,
    seed: int = 7,
) -> dict[str, RunResult]:
    """Refresh rate of one query under individual heuristic ablations."""
    spec = workload(query)
    agenda, static = _prepare(spec, events, None, seed)
    translated = spec.query_factory()
    results: dict[str, RunResult] = {}
    for label, overrides in variants.items():
        engine = custom_options_engine(translated, overrides)
        results[label] = measure_refresh_rate(
            engine,
            agenda,
            static,
            max_seconds=max_seconds_per_run,
            strategy=label,
            query=query,
        )
    return results
