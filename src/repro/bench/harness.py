"""Measurement primitives: refresh rates, traces, memory.

The paper reports, per query and strategy, the *average view refresh rate*
(complete view refreshes per second, i.e. events processed per second since
every event refreshes the views) over a stream replayed with a wall-clock
timeout, plus per-query traces of cumulative time, instantaneous refresh rate
and memory versus the fraction of the stream processed.  The helpers here
compute exactly those quantities for any engine exposing ``apply`` /
``load_static`` / ``memory_bytes``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.streams.agenda import Agenda


@dataclass(frozen=True)
class RunResult:
    """Outcome of replaying (part of) a stream against one engine."""

    strategy: str
    query: str
    events_processed: int
    elapsed_seconds: float
    memory_bytes: int
    completed: bool

    @property
    def refresh_rate(self) -> float:
        """Complete view refreshes per second (events per second)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_processed / self.elapsed_seconds


@dataclass(frozen=True)
class TracePoint:
    """One sample of a per-query trace (Figures 8-10 and 13-18)."""

    fraction: float
    cumulative_seconds: float
    window_refresh_rate: float
    memory_bytes: int


@dataclass
class TraceResult:
    """A full trace for one engine on one stream."""

    strategy: str
    query: str
    points: list[TracePoint] = field(default_factory=list)
    completed: bool = True

    @property
    def total_seconds(self) -> float:
        """Cumulative processing time at the last sample."""
        return self.points[-1].cumulative_seconds if self.points else 0.0


def load_static_tables(engine: Any, static: Mapping[str, Iterable[Sequence[Any]]]) -> None:
    """Load static tables into an engine (ignoring tables it does not know)."""
    for relation, rows in static.items():
        engine.load_static(relation, rows)


def measure_refresh_rate(
    engine: Any,
    agenda: Agenda | Sequence,
    static: Mapping[str, Iterable[Sequence[Any]]] | None = None,
    max_seconds: float | None = None,
    max_events: int | None = None,
    strategy: str = "",
    query: str = "",
) -> RunResult:
    """Replay ``agenda`` against ``engine`` and measure the average refresh rate.

    ``max_seconds`` mirrors the paper's replay timeout: slow strategies are cut
    off after the budget and their rate is computed over what they managed to
    process (``completed`` records whether the whole stream was consumed).
    """
    if static:
        load_static_tables(engine, static)
    events = list(agenda)
    if max_events is not None:
        events = events[:max_events]
    processed = 0
    start = time.perf_counter()
    deadline = start + max_seconds if max_seconds is not None else None
    # Buffered engines (batched / partitioned) accept events without doing the
    # work yet, which would let the dispatch loop outrun the deadline and leave
    # an unbounded flush for the end.  Under a budget, force a flush every so
    # often so the deadline check observes real work (the cadence is above the
    # default sweep's largest batch size, so folding is not distorted).
    flush_every = 2048 if deadline is not None and hasattr(engine, "flush") else None
    for event in events:
        engine.apply(event)
        processed += 1
        if flush_every is not None and processed % flush_every == 0:
            engine.flush()
        if deadline is not None and time.perf_counter() >= deadline:
            break
    # Pending work must finish inside the timed region, otherwise a buffered
    # engine's rate would be overstated.
    if hasattr(engine, "flush"):
        engine.flush()
    elapsed = time.perf_counter() - start
    memory = engine.memory_bytes() if hasattr(engine, "memory_bytes") else 0
    return RunResult(
        strategy=strategy,
        query=query,
        events_processed=processed,
        elapsed_seconds=elapsed,
        memory_bytes=memory,
        completed=processed == len(events),
    )


def run_trace(
    engine: Any,
    agenda: Agenda | Sequence,
    static: Mapping[str, Iterable[Sequence[Any]]] | None = None,
    samples: int = 20,
    max_seconds: float | None = None,
    strategy: str = "",
    query: str = "",
) -> TraceResult:
    """Replay a stream and sample time / refresh rate / memory at regular points."""
    if static:
        load_static_tables(engine, static)
    events = list(agenda)
    total = len(events)
    trace = TraceResult(strategy=strategy, query=query)
    if total == 0:
        return trace
    window = max(1, total // max(1, samples))
    processed = 0
    cumulative = 0.0
    start_overall = time.perf_counter()
    while processed < total:
        chunk = events[processed : processed + window]
        chunk_start = time.perf_counter()
        for event in chunk:
            engine.apply(event)
        if hasattr(engine, "flush"):
            engine.flush()
        chunk_elapsed = time.perf_counter() - chunk_start
        cumulative += chunk_elapsed
        processed += len(chunk)
        memory = engine.memory_bytes() if hasattr(engine, "memory_bytes") else 0
        trace.points.append(
            TracePoint(
                fraction=processed / total,
                cumulative_seconds=cumulative,
                window_refresh_rate=len(chunk) / chunk_elapsed if chunk_elapsed > 0 else 0.0,
                memory_bytes=memory,
            )
        )
        if max_seconds is not None and time.perf_counter() - start_overall >= max_seconds:
            trace.completed = processed >= total
            break
    return trace
