"""Engine construction for every strategy compared in the paper.

The strategies map one-to-one onto the labels of Figures 6 and 7:

============  ==============================================================
label         engine
============  ==============================================================
dbtoaster     full Higher-Order IVM (this paper's system)
naive         the naive viewlet transform (no decomposition / simplification)
ivm           classical first-order IVM on DBToaster's runtime (depth-1)
rep           full re-evaluation on DBToaster's runtime (depth-0)
dbx-rep       commercial-DBMS stand-in: naive nested-loop engine, recompute
dbx-ivm       commercial-DBMS IVM stand-in: depth-1 IVM plus a fixed
              per-update bookkeeping overhead (models the catalog/statement
              parsing cost the paper observed dominating DBX's IVM mode)
spy           stream-processor stand-in: same naive engine driven through
              the agenda dispatcher, full recompute per event
============  ==============================================================

``dbx-rep``/``spy`` use :class:`repro.runtime.reference.ReferenceEngine`
(an independent row-at-a-time evaluator); see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions, options_for
from repro.errors import BenchmarkError
from repro.runtime.engine import IncrementalEngine
from repro.runtime.reference import ReferenceEngine
from repro.sql.translate import TranslatedQuery

#: Fixed per-update bookkeeping overhead (seconds) modelled for "dbx-ivm".
DBX_IVM_OVERHEAD_SECONDS = 0.002


class OverheadEngine:
    """Wrap an engine, charging a fixed busy-wait overhead per event."""

    def __init__(self, inner, overhead_seconds: float) -> None:
        self.inner = inner
        self.overhead_seconds = overhead_seconds

    def load_static(self, relation, rows):
        return self.inner.load_static(relation, rows)

    def apply(self, event) -> None:
        deadline = time.perf_counter() + self.overhead_seconds
        self.inner.apply(event)
        while time.perf_counter() < deadline:
            pass

    def view(self, name=None):
        return self.inner.view(name)

    def scalar_result(self, name=None):
        return self.inner.scalar_result(name)

    def result_dict(self, name=None):
        return self.inner.result_dict(name)

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()


def _compiled_engine(query: TranslatedQuery, options: CompilerOptions) -> IncrementalEngine:
    program = compile_query(
        query.roots(),
        query.schemas(),
        static_relations=query.static_relations(),
        options=options,
    )
    return IncrementalEngine(program)


def _dbtoaster(query: TranslatedQuery):
    return _compiled_engine(query, options_for("dbtoaster"))


def _naive(query: TranslatedQuery):
    return _compiled_engine(query, options_for("naive"))


def _ivm(query: TranslatedQuery):
    return _compiled_engine(query, options_for("ivm"))


def _rep(query: TranslatedQuery):
    return _compiled_engine(query, options_for("rep"))


def _dbx_rep(query: TranslatedQuery):
    return ReferenceEngine(query.roots(), query.schemas())


def _spy(query: TranslatedQuery):
    return ReferenceEngine(query.roots(), query.schemas())


def _dbx_ivm(query: TranslatedQuery):
    return OverheadEngine(_compiled_engine(query, options_for("ivm")), DBX_IVM_OVERHEAD_SECONDS)


STRATEGIES: dict[str, Callable[[TranslatedQuery], object]] = {
    "dbtoaster": _dbtoaster,
    "naive": _naive,
    "ivm": _ivm,
    "rep": _rep,
    "dbx-rep": _dbx_rep,
    "dbx-ivm": _dbx_ivm,
    "spy": _spy,
}


def build_engine(strategy: str, query: TranslatedQuery):
    """Build an engine for ``strategy`` running ``query``."""
    try:
        factory = STRATEGIES[strategy]
    except KeyError:
        raise BenchmarkError(
            f"unknown strategy {strategy!r}; expected one of {sorted(STRATEGIES)}"
        ) from None
    return factory(query)


def custom_options_engine(
    query: TranslatedQuery, options: CompilerOptions | Mapping[str, object]
) -> IncrementalEngine:
    """Engine with explicit compiler options (used by the ablation benchmarks)."""
    if not isinstance(options, CompilerOptions):
        options = CompilerOptions(**dict(options))
    return _compiled_engine(query, options)
