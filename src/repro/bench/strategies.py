"""Engine construction for every strategy compared in the paper.

The strategies map one-to-one onto the labels of Figures 6 and 7:

===============  ===========================================================
label            engine
===============  ===========================================================
dbtoaster        full Higher-Order IVM (this paper's system)
dbtoaster-comp   HO-IVM with triggers compiled to specialized Python code
                 (:class:`repro.codegen.CompiledEngine`: one fused kernel
                 per trigger, per-statement interpreter fallback; pass
                 ``fused=False`` for per-statement dispatch — the baseline
                 the fusion regression gate compares against)
dbtoaster-batch  HO-IVM with delta-batched trigger execution
                 (:class:`repro.exec.BatchedEngine`)
dbtoaster-par    HO-IVM hash-partitioned across engines with merge-on-read
                 (:class:`repro.exec.PartitionedEngine`)
naive            the naive viewlet transform (no decomposition /
                 simplification)
ivm              classical first-order IVM on DBToaster's runtime (depth-1)
rep              full re-evaluation on DBToaster's runtime (depth-0)
dbx-rep          commercial-DBMS stand-in: naive nested-loop engine,
                 recompute
dbx-ivm          commercial-DBMS IVM stand-in: depth-1 IVM plus a fixed
                 per-update bookkeeping overhead (models the
                 catalog/statement parsing cost the paper observed
                 dominating DBX's IVM mode)
spy              stream-processor stand-in: same naive engine driven
                 through the agenda dispatcher, full recompute per event
===============  ===========================================================

``dbx-rep``/``spy`` use :class:`repro.runtime.reference.ReferenceEngine`
(an independent row-at-a-time evaluator); see DESIGN.md for the substitution
rationale and for the batching/partitioning semantics of the two
``dbtoaster-*`` scale-out strategies.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Mapping

from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions, options_for
from repro.errors import BenchmarkError
from repro.exec import DEFAULT_BATCH_SIZE, DEFAULT_PARTITIONS, BatchedEngine, PartitionedEngine
from repro.runtime.engine import IncrementalEngine
from repro.runtime.reference import ReferenceEngine
from repro.sql.translate import TranslatedQuery

#: Fixed per-update bookkeeping overhead (seconds) modelled for "dbx-ivm".
DBX_IVM_OVERHEAD_SECONDS = 0.002


class OverheadEngine:
    """Wrap an engine, charging a fixed busy-wait overhead per event."""

    def __init__(self, inner, overhead_seconds: float) -> None:
        self.inner = inner
        self.overhead_seconds = overhead_seconds

    def load_static(self, relation, rows):
        return self.inner.load_static(relation, rows)

    def apply(self, event) -> None:
        deadline = time.perf_counter() + self.overhead_seconds
        self.inner.apply(event)
        while time.perf_counter() < deadline:
            pass

    def view(self, name=None):
        return self.inner.view(name)

    def scalar_result(self, name=None):
        return self.inner.scalar_result(name)

    def result_dict(self, name=None):
        return self.inner.result_dict(name)

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()


def _compiled_engine(query: TranslatedQuery, options: CompilerOptions) -> IncrementalEngine:
    program = compile_query(
        query.roots(),
        query.schemas(),
        static_relations=query.static_relations(),
        options=options,
    )
    return IncrementalEngine(program)


def _dbtoaster(query: TranslatedQuery):
    return _compiled_engine(query, options_for("dbtoaster"))


def _naive(query: TranslatedQuery):
    return _compiled_engine(query, options_for("naive"))


def _ivm(query: TranslatedQuery):
    return _compiled_engine(query, options_for("ivm"))


def _rep(query: TranslatedQuery):
    return _compiled_engine(query, options_for("rep"))


def _dbx_rep(query: TranslatedQuery):
    return ReferenceEngine(query.roots(), query.schemas())


def _spy(query: TranslatedQuery):
    return ReferenceEngine(query.roots(), query.schemas())


def _dbx_ivm(query: TranslatedQuery):
    return OverheadEngine(_compiled_engine(query, options_for("ivm")), DBX_IVM_OVERHEAD_SECONDS)


def _dbtoaster_program(query: TranslatedQuery):
    return compile_query(
        query.roots(),
        query.schemas(),
        static_relations=query.static_relations(),
        options=options_for("dbtoaster"),
    )


def _dbtoaster_comp(query: TranslatedQuery, fused: bool = True, telemetry=None):
    from repro.codegen.engine import CompiledEngine

    return CompiledEngine(_dbtoaster_program(query), fuse=fused, telemetry=telemetry)


def _dbtoaster_batch(
    query: TranslatedQuery,
    batch_size: int | None = None,
    compiled: bool = False,
    backend: str = "scalar",
    telemetry=None,
):
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if backend in ("sequential", "process"):
        # Executor-backend names (the partitioned engine's axis) mean
        # "scalar" here, so one --backend flag can drive either strategy.
        backend = "scalar"
    return BatchedEngine(
        _dbtoaster_program(query),
        batch_size,
        compiled=compiled,
        backend=backend,
        telemetry=telemetry,
    )


def _dbtoaster_par(
    query: TranslatedQuery,
    partitions: int | None = None,
    batch_size: int | None = None,
    backend: str = "sequential",
    compiled: bool = False,
):
    if partitions is None:
        partitions = DEFAULT_PARTITIONS
    return PartitionedEngine(
        _dbtoaster_program(query),
        partitions=partitions,
        backend=backend,
        batch_size=batch_size,
        compiled=compiled,
    )


STRATEGIES: dict[str, Callable[..., object]] = {
    "dbtoaster": _dbtoaster,
    "dbtoaster-comp": _dbtoaster_comp,
    "dbtoaster-batch": _dbtoaster_batch,
    "dbtoaster-par": _dbtoaster_par,
    "naive": _naive,
    "ivm": _ivm,
    "rep": _rep,
    "dbx-rep": _dbx_rep,
    "dbx-ivm": _dbx_ivm,
    "spy": _spy,
}


def build_engine(strategy: str, query: TranslatedQuery, **config):
    """Build an engine for ``strategy`` running ``query``.

    ``config`` carries optional execution parameters (``batch_size``,
    ``partitions``, ``backend``); each strategy consumes the ones it
    understands and ignores the rest, so one configuration dictionary can
    drive a whole strategy comparison.
    """
    try:
        factory = STRATEGIES[strategy]
    except KeyError:
        raise BenchmarkError(
            f"unknown strategy {strategy!r}; expected one of {sorted(STRATEGIES)}"
        ) from None
    parameters = inspect.signature(factory).parameters
    accepted = {
        name: value
        for name, value in config.items()
        if name in parameters and value is not None
    }
    return factory(query, **accepted)


def custom_options_engine(
    query: TranslatedQuery, options: CompilerOptions | Mapping[str, object]
) -> IncrementalEngine:
    """Engine with explicit compiler options (used by the ablation benchmarks)."""
    if not isinstance(options, CompilerOptions):
        options = CompilerOptions(**dict(options))
    return _compiled_engine(query, options)
