"""Rendering benchmark results in the shape the paper reports them.

The formatting helpers return plain strings (monospace tables) so benchmark
runs can print them directly and EXPERIMENTS.md can embed them verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.bench.harness import RunResult, TraceResult


def _format_rate(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_refresh_rate_table(
    results: Mapping[str, Mapping[str, RunResult]],
    strategies: Sequence[str],
) -> str:
    """Figure 6/7 style table: one row per query, one column per strategy."""
    header = ["Query"] + list(strategies)
    widths = [max(10, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(results):
        row = [query]
        for strategy in strategies:
            result = results[query].get(strategy)
            row.append("-" if result is None else _format_rate(result.refresh_rate))
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_summary(
    results: Mapping[str, Mapping[str, RunResult]],
    baseline: str,
    subject: str = "dbtoaster",
) -> str:
    """Per-query speed-up of ``subject`` over ``baseline`` (who wins, by how much)."""
    lines = [f"speed-up of {subject} over {baseline}:"]
    for query in sorted(results):
        subject_result = results[query].get(subject)
        baseline_result = results[query].get(baseline)
        if subject_result is None or baseline_result is None:
            continue
        if baseline_result.refresh_rate <= 0:
            lines.append(f"  {query:10s}  baseline produced no refreshes")
            continue
        ratio = subject_result.refresh_rate / baseline_result.refresh_rate
        lines.append(f"  {query:10s}  {ratio:10.1f}x")
    return "\n".join(lines)


def format_trace(trace: TraceResult) -> str:
    """Figure 8-10 style series: fraction, cumulative time, rate, memory."""
    lines = [
        f"trace for {trace.query} / {trace.strategy} "
        f"({'complete' if trace.completed else 'timed out'})",
        f"{'fraction':>10} {'time (s)':>10} {'refreshes/s':>14} {'memory (KB)':>12}",
    ]
    for point in trace.points:
        lines.append(
            f"{point.fraction:>10.2f} {point.cumulative_seconds:>10.2f} "
            f"{point.window_refresh_rate:>14.1f} {point.memory_bytes / 1024:>12.1f}"
        )
    return "\n".join(lines)


def format_scaling_table(
    results: Mapping[str, Mapping[float, RunResult]], base_scale: float
) -> str:
    """Figure 11 style table: refresh rate relative to the smallest scale factor."""
    scales = sorted({scale for rows in results.values() for scale in rows})
    header = ["Query"] + [f"x{scale:g}" for scale in scales]
    widths = [max(9, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(results):
        base = results[query].get(base_scale)
        row = [query]
        for scale in scales:
            result = results[query].get(scale)
            if result is None or base is None or base.refresh_rate == 0:
                row.append("-")
            else:
                row.append(f"{result.refresh_rate / base.refresh_rate:.2f}")
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_feature_table(features: Mapping[str, Mapping[str, object]]) -> str:
    """Figure 2 style workload feature matrix."""
    columns = ["tables", "join", "where", "group_by", "nesting", "maps", "statements"]
    header = ["Query"] + columns
    widths = [max(9, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(features):
        row = [query] + [str(features[query].get(column, "-")) for column in columns]
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
