"""Rendering benchmark results in the shape the paper reports them.

The formatting helpers return plain strings (monospace tables) so benchmark
runs can print them directly and EXPERIMENTS.md can embed them verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.bench.harness import RunResult, TraceResult


def _format_rate(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_refresh_rate_table(
    results: Mapping[str, Mapping[str, RunResult]],
    strategies: Sequence[str],
) -> str:
    """Figure 6/7 style table: one row per query, one column per strategy."""
    header = ["Query"] + list(strategies)
    widths = [max(10, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(results):
        row = [query]
        for strategy in strategies:
            result = results[query].get(strategy)
            row.append("-" if result is None else _format_rate(result.refresh_rate))
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_summary(
    results: Mapping[str, Mapping[str, RunResult]],
    baseline: str,
    subject: str = "dbtoaster",
) -> str:
    """Per-query speed-up of ``subject`` over ``baseline`` (who wins, by how much)."""
    lines = [f"speed-up of {subject} over {baseline}:"]
    for query in sorted(results):
        subject_result = results[query].get(subject)
        baseline_result = results[query].get(baseline)
        if subject_result is None or baseline_result is None:
            continue
        if baseline_result.refresh_rate <= 0:
            lines.append(f"  {query:10s}  baseline produced no refreshes")
            continue
        ratio = subject_result.refresh_rate / baseline_result.refresh_rate
        lines.append(f"  {query:10s}  {ratio:10.1f}x")
    return "\n".join(lines)


def format_trace(trace: TraceResult) -> str:
    """Figure 8-10 style series: fraction, cumulative time, rate, memory."""
    lines = [
        f"trace for {trace.query} / {trace.strategy} "
        f"({'complete' if trace.completed else 'timed out'})",
        f"{'fraction':>10} {'time (s)':>10} {'refreshes/s':>14} {'memory (KB)':>12}",
    ]
    for point in trace.points:
        lines.append(
            f"{point.fraction:>10.2f} {point.cumulative_seconds:>10.2f} "
            f"{point.window_refresh_rate:>14.1f} {point.memory_bytes / 1024:>12.1f}"
        )
    return "\n".join(lines)


def format_scaling_table(
    results: Mapping[str, Mapping[float, RunResult]], base_scale: float
) -> str:
    """Figure 11 style table: refresh rate relative to the smallest scale factor."""
    scales = sorted({scale for rows in results.values() for scale in rows})
    header = ["Query"] + [f"x{scale:g}" for scale in scales]
    widths = [max(9, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(results):
        base = results[query].get(base_scale)
        row = [query]
        for scale in scales:
            result = results[query].get(scale)
            if result is None or base is None or base.refresh_rate == 0:
                row.append("-")
            else:
                row.append(f"{result.refresh_rate / base.refresh_rate:.2f}")
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_batch_sweep(results: Mapping[str, RunResult]) -> str:
    """Throughput-vs-batch-size table with speedups over the per-event baseline."""
    baseline = results.get("dbtoaster")
    base_rate = baseline.refresh_rate if baseline else 0.0
    lines = [
        f"{'mode':>14} {'events':>8} {'time (s)':>10} {'refreshes/s':>14} {'speedup':>9}"
    ]
    for label, result in results.items():
        speedup = (
            f"{result.refresh_rate / base_rate:.2f}x" if base_rate > 0 else "-"
        )
        lines.append(
            f"{label:>14} {result.events_processed:>8} {result.elapsed_seconds:>10.2f} "
            f"{_format_rate(result.refresh_rate):>14} {speedup:>9}"
        )
    return "\n".join(lines)


def format_codegen_sweep(results: Mapping[str, Mapping[str, object]]) -> str:
    """Fused/per-statement/interpreted table: rates, speedups, coverage."""
    lines = [
        f"{'query':>8} {'events':>8} {'interp/s':>12} {'compiled/s':>12} "
        f"{'fused/s':>12} {'speedup':>9} {'fusion':>8} {'stmts':>12} "
        f"{'vector/s':>12} {'vec spd':>8} "
        f"{'tele ovh':>9} {'prov ovh':>9} {'wal ovh':>8} {'ev p50/p99':>16}"
    ]
    for query, row in results.items():
        interpreted: RunResult = row["interpreted"]  # type: ignore[assignment]
        compiled: RunResult = row["compiled"]  # type: ignore[assignment]
        fused: RunResult = row["fused"]  # type: ignore[assignment]
        coverage = f"{row['compiled_statements']}+{row['fallback_statements']}fb"
        overhead = row.get("telemetry_overhead")
        overhead_text = f"{overhead:+.1%}" if overhead is not None else "-"
        prov = row.get("provenance_overhead")
        prov_text = f"{prov:+.1%}" if prov is not None else "-"
        wal = row.get("wal_overhead")
        wal_text = f"{wal:+.1%}" if wal is not None else "-"
        p50 = row.get("event_p50_us")
        p99 = row.get("event_p99_us")
        quantiles = (
            f"{p50:.1f}/{p99:.1f}us" if p50 is not None and p99 is not None else "-"
        )
        vector: RunResult | None = row.get("vector")  # type: ignore[assignment]
        vector_text = _format_rate(vector.refresh_rate) if vector is not None else "-"
        vector_speedup = row.get("vector_speedup")
        vector_speedup_text = (
            f"{vector_speedup:.1f}x" if vector_speedup is not None else "-"
        )
        lines.append(
            f"{query:>8} {row['events']:>8} "
            f"{_format_rate(interpreted.refresh_rate):>12} "
            f"{_format_rate(compiled.refresh_rate):>12} "
            f"{_format_rate(fused.refresh_rate):>12} "
            f"{row['speedup']:>8.2f}x {row['fused_speedup']:>7.2f}x {coverage:>12} "
            f"{vector_text:>12} {vector_speedup_text:>8} "
            f"{overhead_text:>9} {prov_text:>9} {wal_text:>8} {quantiles:>16}"
        )
    return "\n".join(lines)


def codegen_sweep_json(results: Mapping[str, Mapping[str, object]]) -> dict:
    """The ``BENCH_codegen.json`` payload: one record per query, plain types.

    ``compiled_rate``/``speedup`` describe per-statement kernels against the
    interpreter (the historical record the CI gate reads);
    ``fused_rate``/``fused_speedup`` describe whole-trigger fusion against
    the per-statement kernels.
    """
    payload = {}
    for query, row in results.items():
        interpreted: RunResult = row["interpreted"]  # type: ignore[assignment]
        compiled: RunResult = row["compiled"]  # type: ignore[assignment]
        fused: RunResult = row["fused"]  # type: ignore[assignment]
        record = {
            "events": row["events"],
            "interpreted_rate": interpreted.refresh_rate,
            "compiled_rate": compiled.refresh_rate,
            "fused_rate": fused.refresh_rate,
            "speedup": row["speedup"],
            "fused_speedup": row["fused_speedup"],
            "compiled_statements": row["compiled_statements"],
            "fallback_statements": row["fallback_statements"],
            "fused_kernels": row["fused_kernels"],
            "deduped_probes": row["deduped_probes"],
            "deduped_scalars": row["deduped_scalars"],
        }
        telemetry: RunResult | None = row.get("telemetry")  # type: ignore[assignment]
        if telemetry is not None:
            record["telemetry_rate"] = telemetry.refresh_rate
            record["telemetry_overhead"] = row["telemetry_overhead"]
            record["event_p50_us"] = row["event_p50_us"]
            record["event_p99_us"] = row["event_p99_us"]
        provenance: RunResult | None = row.get("provenance")  # type: ignore[assignment]
        if provenance is not None:
            record["provenance_rate"] = provenance.refresh_rate
            record["provenance_overhead"] = row["provenance_overhead"]
        durable: RunResult | None = row.get("durable")  # type: ignore[assignment]
        if durable is not None:
            wal = row.get("wal") or {}
            record["durable_rate"] = durable.refresh_rate
            record["wal_overhead"] = row["wal_overhead"]
            record["wal_fsyncs"] = wal.get("fsyncs", 0)
            record["wal_bytes"] = wal.get("bytes_appended", 0)
        vector: RunResult | None = row.get("vector")  # type: ignore[assignment]
        if vector is not None:
            record["vector_rate"] = vector.refresh_rate
            record["vector_batch_size"] = row["vector_batch_size"]
            record["vector_statements"] = row["vector_statements"]
            record["vector_fallbacks"] = dict(row["vector_fallbacks"])
            if "vector_speedup" in row:
                record["vector_speedup"] = row["vector_speedup"]
            else:
                record["vector_reason"] = row["vector_reason"]
        payload[query] = record
    return payload


def _format_map_stats_rows(maps: Mapping[str, Mapping[str, object]]) -> list[str]:
    lines = [f"  {'map':30s} {'entries':>10} {'memory (KB)':>12}  indexes"]
    for name in sorted(maps):
        stats = maps[name]
        indexes = stats.get("indexes") or {}
        parts = [
            f"[{cols}] {idx['entries']} entries/{idx['buckets']} buckets"
            for cols, idx in sorted(indexes.items())
        ]
        for column, idx in sorted((stats.get("ordered_indexes") or {}).items()):
            regime = "exact" if idx.get("exact") else "scan"
            parts.append(
                f"[{column} ordered] {idx['keys']} keys, {idx['probes']} probes"
                f"/{idx['scan_fallbacks']} scans, {idx['rebuilds']} rebuilds ({regime})"
            )
        index_text = "; ".join(parts) or "-"
        lines.append(
            f"  {name:30s} {stats.get('entries', 0):>10} "
            f"{stats.get('memory_bytes', 0) / 1024:>12.1f}  {index_text}"
        )
    return lines


def format_engine_statistics(statistics: Mapping[str, object], label: str = "") -> str:
    """Per-map and per-secondary-index entry/memory counts for one engine.

    Understands the plain engine shape (``maps`` / ``relations``), the
    batched shape (plus ``batching`` counters) and the partitioned shape
    (``partitions`` holding one nested statistics block per partition).
    """
    lines: list[str] = []
    header = f"statistics for {label}" if label else "engine statistics"
    lines.append(header)
    if "spec" in statistics:  # partitioned engine
        spec = statistics["spec"]
        keys = ", ".join(f"{r} by ({', '.join(c)})" for r, c in spec["keys"].items())
        lines.append(
            f"  {spec['partitions']} partitions; keys: {keys or '-'}; "
            f"replicated: {', '.join(spec['replicated']) or '-'}"
        )
        lines.append(
            f"  routed per partition: {statistics['events_routed']}; "
            f"broadcast: {statistics['events_broadcast']}"
        )
        for index, partition in enumerate(statistics.get("partitions", [])):
            lines.append(
                f"partition {index}: {partition.get('events_processed', 0)} events, "
                f"{partition.get('memory_bytes', 0) / 1024:.1f} KB"
            )
            lines.extend(_format_map_stats_rows(partition.get("maps", {})))
        return "\n".join(lines)
    lines.append(
        f"  {statistics.get('events_processed', 0)} events, "
        f"{statistics.get('memory_bytes', 0) / 1024:.1f} KB resident"
    )
    batching = statistics.get("batching")
    if batching:
        lines.append(
            f"  batching: size {batching['batch_size']}, "
            f"{batching['batches_flushed']} batches, "
            f"{batching['bulk_events']} bulk / {batching['fallback_events']} fallback events"
        )
    codegen = statistics.get("codegen")
    if codegen:
        lines.append(
            f"  codegen: {codegen['compiled_statements']} compiled / "
            f"{codegen['fallback_statements']} fallback statements; "
            f"{codegen.get('fused_kernels', 0)} fused kernels "
            f"({codegen.get('fused_statements', 0)} statements, "
            f"{codegen.get('deduped_probes', 0)} probes + "
            f"{codegen.get('deduped_scalars', 0)} scalars deduped)"
        )
    lines.extend(_format_map_stats_rows(statistics.get("maps", {})))
    relations = statistics.get("relations") or {}
    if relations:
        lines.append("stored base relations:")
        lines.extend(_format_map_stats_rows(relations))
    return "\n".join(lines)


def format_feature_table(features: Mapping[str, Mapping[str, object]]) -> str:
    """Figure 2 style workload feature matrix."""
    columns = ["tables", "join", "where", "group_by", "nesting", "maps", "statements"]
    header = ["Query"] + columns
    widths = [max(9, len(h) + 2) for h in header]
    lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for query in sorted(features):
        row = [query] + [str(features[query].get(column, "-")) for column in columns]
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_durability_bench(result) -> str:
    """One durable-ingest + recovery-time run (the ``durability`` scenario)."""
    wal = result.wal or {}
    lines = [
        f"durability run: {result.query} ({result.engine_mode} engine)",
        f"  durable ingest: {result.events} events in "
        f"{result.durable_elapsed_seconds:.2f}s -> "
        f"{_format_rate(result.durable_ingest_rate)} events/s "
        f"({result.checkpoints} incremental checkpoints, "
        f"{wal.get('fsyncs', 0)} fsyncs, "
        f"{wal.get('bytes_appended', 0) / 1024:.0f} KB logged)",
        f"  recovery (base + deltas + WAL tail): {result.recovery_seconds:.3f}s "
        f"to version {result.recovered_version} "
        f"(restored={result.restored_from_checkpoint}, "
        f"{result.wal_batches_replayed} WAL batches replayed)",
        f"  full replay from source: {result.full_replay_seconds:.3f}s "
        f"({_format_rate(result.full_replay_rate)} events/s)",
        f"  recovery speedup over full replay: {result.recovery_speedup:.1f}x",
    ]
    return "\n".join(lines)


def durability_bench_json(result) -> dict:
    """The ``BENCH_durability.json`` payload for one run, plain types."""
    return {
        "query": result.query,
        "engine_mode": result.engine_mode,
        "events": result.events,
        "ingest_batch": result.ingest_batch,
        "checkpoints": result.checkpoints,
        "durable_elapsed_seconds": result.durable_elapsed_seconds,
        "durable_ingest_rate": result.durable_ingest_rate,
        "wal": dict(result.wal or {}),
        "recovery_seconds": result.recovery_seconds,
        "recovered_version": result.recovered_version,
        "restored_from_checkpoint": result.restored_from_checkpoint,
        "wal_batches_replayed": result.wal_batches_replayed,
        "full_replay_seconds": result.full_replay_seconds,
        "full_replay_rate": result.full_replay_rate,
        "recovery_speedup": result.recovery_speedup,
    }


def format_service_run(result) -> str:
    """One served-view freshness/throughput run (the ``service`` scenario)."""
    lines = [
        f"service run: {result.query} ({result.engine_mode} engine)",
        f"  ingested {result.events} events over the wire in "
        f"{result.elapsed_seconds:.2f}s -> {_format_rate(result.ingest_rate)} events/s",
        f"  {result.queries} concurrent snapshot queries: "
        f"mean {result.mean_latency_ms:.2f} ms, p95 {result.p95_latency_ms:.2f} ms",
        f"  staleness (submitted - served version): max {result.max_staleness} events",
        f"  final served version: {result.final_version}",
    ]
    return "\n".join(lines)
