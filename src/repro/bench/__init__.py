"""Benchmark harness reproducing the paper's evaluation (Section 9).

* :mod:`repro.bench.harness` — measure refresh rates, traces and memory for
  one engine on one stream;
* :mod:`repro.bench.strategies` — build engines for every strategy compared
  in the paper (DBToaster, IVM, REP, Naive, and the DBX/SPY stand-ins);
* :mod:`repro.bench.report` — render the tables and series the paper reports;
* :mod:`repro.bench.scenarios` — one entry point per paper table/figure.
"""

from repro.bench.harness import RunResult, TracePoint, measure_refresh_rate, run_trace
from repro.bench.report import (
    format_refresh_rate_table,
    format_scaling_table,
    format_trace,
    format_feature_table,
)
from repro.bench.scenarios import (
    DEFAULT_STRATEGIES,
    run_ablation,
    run_refresh_rate_table,
    run_scaling,
    run_trace_figure,
    workload_feature_table,
)
from repro.bench.strategies import STRATEGIES, build_engine

__all__ = [
    "RunResult",
    "TracePoint",
    "measure_refresh_rate",
    "run_trace",
    "format_refresh_rate_table",
    "format_scaling_table",
    "format_trace",
    "format_feature_table",
    "DEFAULT_STRATEGIES",
    "run_ablation",
    "run_refresh_rate_table",
    "run_scaling",
    "run_trace_figure",
    "workload_feature_table",
    "STRATEGIES",
    "build_engine",
]
