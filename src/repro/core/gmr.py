"""Generalized multiset relations (GMRs).

A GMR is a finitely supported function from tuples (:class:`~repro.core.rows.Row`)
to rational multiplicities (Section 3.1 of the paper).  GMRs with ``+`` (bag
union / addition) and ``*`` (natural join / multiplication) form a ring, which
is what makes the delta transform purely syntactic.

This module provides the concrete dictionary-backed GMR used both for base
relations in the runtime database and for query results produced by the AGCA
evaluator.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.rows import Row
from repro.core.values import is_zero, normalize_number


class GMR:
    """A finitely supported map from rows to numeric multiplicities.

    Entries with zero multiplicity are dropped eagerly, so two GMRs describing
    the same function always compare equal.
    """

    __slots__ = ("_data",)

    def __init__(self, entries: "Mapping[Row, Any] | GMR | Iterable[tuple[Row, Any]]" = ()) -> None:
        data: dict[Row, Any] = {}
        if isinstance(entries, GMR):
            items = entries.items()
        elif isinstance(entries, Mapping):
            items = entries.items()
        else:
            items = entries
        for row, multiplicity in items:
            if not isinstance(row, Row):
                row = Row(row)
            if is_zero(multiplicity):
                continue
            if row in data:
                total = data[row] + multiplicity
                if is_zero(total):
                    del data[row]
                else:
                    data[row] = normalize_number(total)
            else:
                data[row] = normalize_number(multiplicity)
        self._data = data

    # -- constructors -------------------------------------------------------
    @classmethod
    def empty(cls) -> "GMR":
        """The zero GMR (additive identity)."""
        return cls()

    @classmethod
    def singleton(cls, row: Row | Mapping[str, Any], multiplicity: Any = 1) -> "GMR":
        """A GMR containing exactly one tuple."""
        return cls([(Row(row), multiplicity)])

    @classmethod
    def scalar(cls, value: Any) -> "GMR":
        """A nullary GMR mapping the empty tuple to ``value`` (a 'constant')."""
        return cls([(Row(), value)])

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, Any]]) -> "GMR":
        """Build a GMR from an iterable of plain dict rows, each with multiplicity 1."""
        return cls((Row(row), 1) for row in rows)

    # -- basic access ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._data)

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, Row):
            row = Row(row)  # type: ignore[arg-type]
        return row in self._data

    def __getitem__(self, row: Row | Mapping[str, Any]) -> Any:
        if not isinstance(row, Row):
            row = Row(row)
        return self._data.get(row, 0)

    def items(self) -> Iterator[tuple[Row, Any]]:
        """Iterate over ``(row, multiplicity)`` pairs of the support."""
        return iter(self._data.items())

    def rows(self) -> Iterator[Row]:
        """Iterate over the support rows."""
        return iter(self._data)

    @property
    def support_size(self) -> int:
        """Number of tuples with nonzero multiplicity."""
        return len(self._data)

    def columns(self) -> frozenset[str]:
        """The set of column names used by the support (empty for the zero GMR)."""
        cols: set[str] = set()
        for row in self._data:
            cols.update(row.columns)
        return frozenset(cols)

    def scalar_value(self) -> Any:
        """The multiplicity of the empty tuple (aggregate value of a nullary GMR)."""
        return self._data.get(Row(), 0)

    # -- mutation (used only by the runtime database / map store) --------------
    def add_tuple(self, row: Row | Mapping[str, Any], multiplicity: Any = 1) -> None:
        """Add ``multiplicity`` to ``row`` in place, dropping the entry at zero."""
        if not isinstance(row, Row):
            row = Row(row)
        total = self._data.get(row, 0) + multiplicity
        if is_zero(total):
            self._data.pop(row, None)
        else:
            self._data[row] = normalize_number(total)

    def update(self, other: "GMR", scale: Any = 1) -> None:
        """In-place ``self += scale * other``."""
        for row, multiplicity in other.items():
            self.add_tuple(row, multiplicity * scale)

    # -- ring operations --------------------------------------------------------
    def __add__(self, other: "GMR") -> "GMR":
        if not isinstance(other, GMR):
            return NotImplemented
        result = dict(self._data)
        out = GMR()
        out._data = result
        out.update(other)
        return out

    def __neg__(self) -> "GMR":
        return GMR((row, -mult) for row, mult in self.items())

    def __sub__(self, other: "GMR") -> "GMR":
        if not isinstance(other, GMR):
            return NotImplemented
        return self + (-other)

    def scale(self, factor: Any) -> "GMR":
        """Multiply every multiplicity by ``factor``."""
        if is_zero(factor):
            return GMR()
        return GMR((row, mult * factor) for row, mult in self.items())

    def natural_join(self, other: "GMR") -> "GMR":
        """Generalized natural join: multiplicities of joinable tuples multiply.

        This is the ``*`` of the GMR ring restricted to the case where both
        operands are already fully evaluated (no sideways binding involved).
        """
        if not self._data or not other._data:
            return GMR()
        shared = self.columns() & other.columns()
        out = GMR()
        if not shared:
            for lrow, lmult in self.items():
                for rrow, rmult in other.items():
                    out.add_tuple(lrow.extend(rrow), lmult * rmult)
            return out
        index: dict[Row, list[tuple[Row, Any]]] = {}
        for rrow, rmult in other.items():
            index.setdefault(rrow.project(shared), []).append((rrow, rmult))
        for lrow, lmult in self.items():
            for rrow, rmult in index.get(lrow.project(shared), ()):  # joinable partners
                out.add_tuple(lrow.extend(rrow), lmult * rmult)
        return out

    def __mul__(self, other: "GMR") -> "GMR":
        if not isinstance(other, GMR):
            return NotImplemented
        return self.natural_join(other)

    # -- relational helpers -------------------------------------------------------
    def project(self, columns: Iterable[str]) -> "GMR":
        """Multiplicity-preserving projection (``Sum_A`` over the given columns)."""
        wanted = tuple(columns)
        out = GMR()
        for row, mult in self.items():
            out.add_tuple(row.project(wanted), mult)
        return out

    def select(self, predicate: Callable[[Row], bool]) -> "GMR":
        """Keep only rows for which ``predicate`` is true."""
        return GMR((row, mult) for row, mult in self.items() if predicate(row))

    def rename(self, mapping: Mapping[str, str]) -> "GMR":
        """Rename columns of every row."""
        return GMR((row.rename(mapping), mult) for row, mult in self.items())

    def filter_consistent(self, context: Mapping[str, Any]) -> "GMR":
        """Keep rows consistent with ``context`` (selection on bound variables)."""
        return GMR(
            (row, mult) for row, mult in self.items() if row.consistent_with(context)
        )

    def total_multiplicity(self) -> Any:
        """Sum of all multiplicities (the value of ``Sum_[]`` over this GMR)."""
        total = 0
        for mult in self._data.values():
            total = total + mult
        return normalize_number(total)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Expand to a list of plain dict rows, repeating rows by multiplicity.

        Only valid for non-negative integer multiplicities; used by tests and
        by the reference engine when exporting results.
        """
        out: list[dict[str, Any]] = []
        for row, mult in sorted(self.items(), key=lambda item: repr(item[0])):
            if not isinstance(mult, int) or mult < 0:
                raise ValueError("to_dicts requires non-negative integer multiplicities")
            out.extend(dict(row) for _ in range(mult))
        return out

    # -- identity ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, GMR):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - GMRs are not meant to be dict keys
        return hash(frozenset(self._data.items()))

    def __repr__(self) -> str:
        if not self._data:
            return "GMR{}"
        inner = ", ".join(
            f"{row!r} -> {mult}" for row, mult in sorted(self.items(), key=lambda i: repr(i[0]))
        )
        return f"GMR{{{inner}}}"
