"""Value arithmetic used by GMR multiplicities and AGCA scalar expressions.

The paper's GMRs carry rational multiplicities.  In this reproduction
multiplicities are plain Python numbers (``int``, ``float`` or
``fractions.Fraction``); the helpers here centralize zero-testing, comparison
and division semantics so the rest of the library stays agnostic of which
numeric type flows through.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Number
from typing import Any

#: Absolute tolerance used when deciding that a float multiplicity is zero.
ZERO_EPSILON = 1e-12


def is_zero(value: Any) -> bool:
    """True when ``value`` counts as a zero multiplicity.

    Integers and Fractions are compared exactly; floats use a small absolute
    tolerance so that long chains of incremental +=/-= updates that should
    cancel out actually free their map entries.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int) or isinstance(value, Fraction):
        return value == 0
    if isinstance(value, float):
        return abs(value) <= ZERO_EPSILON
    return value == 0


def normalize_number(value: Any) -> Any:
    """Canonicalize a numeric value (collapse integral floats/Fractions to int)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def div(numerator: Any, denominator: Any) -> Any:
    """Division used by AVG reconstruction and arithmetic value expressions.

    Division by zero yields 0 rather than raising; this mirrors DBToaster's
    treatment (e.g. ``LISTMAX(1, ...)`` guards in the workload exist precisely
    to avoid 0 denominators, and an empty group has aggregate value 0).
    """
    if is_zero(denominator):
        return 0
    if isinstance(numerator, int) and isinstance(denominator, int):
        if numerator % denominator == 0:
            return numerator // denominator
        return numerator / denominator
    return numerator / denominator


#: Ordering comparison operators servable by an ordered range index probe.
RANGE_OPS = frozenset(("<", "<=", ">", ">="))

#: Mirror table for normalizing ``c op x`` into ``x op' c``.
FLIP_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def flip_comparison(op: str) -> str:
    """The mirrored operator (``a op b`` ⇔ ``b flip(op) a``)."""
    return FLIP_OPS.get(op, op)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(left: Any, op: str, right: Any) -> bool:
    """Evaluate a comparison ``left op right`` as used in AGCA conditions.

    Numbers compare numerically, strings lexicographically.  Comparing a
    number with a string is a type error in SQL; here it raises ``TypeError``
    except for equality/inequality which are well defined on mixed types.
    """
    try:
        fn = _COMPARATORS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None
    if op in ("=", "==", "!=", "<>"):
        return fn(left, right)
    if isinstance(left, Number) != isinstance(right, Number):
        raise TypeError(
            f"cannot order {type(left).__name__} against {type(right).__name__}"
        )
    return fn(left, right)


def comparison_holds(left: Any, op: str, right: Any) -> int:
    """Return 1/0 multiplicity for a condition, as the AGCA semantics does."""
    return 1 if compare(left, op, right) else 0
