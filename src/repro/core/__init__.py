"""Core data model: rows (tuples), value arithmetic and generalized multiset relations."""

from repro.core.rows import Row, merge_rows, rows_consistent
from repro.core.gmr import GMR
from repro.core.values import compare, div, is_zero, normalize_number

__all__ = [
    "Row",
    "merge_rows",
    "rows_consistent",
    "GMR",
    "compare",
    "div",
    "is_zero",
    "normalize_number",
]
