"""Tuples ("rows") of the GMR data model.

The paper (Section 3.1) models tuples as partial functions from column names to
values; the same structure serves as a variable environment (context) during
AGCA evaluation.  :class:`Row` is an immutable, hashable mapping with helpers
for the natural-join style consistency checks the semantics relies on.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class Row(Mapping[str, Any]):
    """An immutable partial function from column/variable names to values.

    Rows are hashable so they can key GMR dictionaries.  Equality is by
    content, independent of construction order.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, Any] | Iterable[tuple[str, Any]] = ()) -> None:
        if isinstance(mapping, Row):
            self._items = mapping._items
            self._hash = mapping._hash
            return
        if isinstance(mapping, Mapping):
            pairs = mapping.items()
        else:
            pairs = mapping
        items = tuple(sorted((str(name), value) for name, value in pairs))
        seen = set()
        for name, _ in items:
            if name in seen:
                raise ValueError(f"duplicate column {name!r} in row")
            seen.add(name)
        self._items = items
        self._hash = hash(items)

    @classmethod
    def from_sorted_items(cls, items: tuple[tuple[str, Any], ...]) -> "Row":
        """Trusted constructor: ``items`` must be name-sorted and duplicate-free.

        Used by generated trigger code (:mod:`repro.codegen`), which knows the
        sorted column order of every key it builds at compile time and can
        therefore skip the sorting and duplicate checks of ``__init__``.
        """
        row = cls.__new__(cls)
        row._items = items
        row._hash = hash(items)
        return row

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, _ in self._items)

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in self._items)
        return f"<{inner}>"

    def values_sorted(self) -> tuple:
        """Values in name-sorted order (the row's storage order).

        Hot-path accessor for callers that resolved the column permutation
        up front (e.g. provenance watchers): one pass, no name lookups.
        """
        return tuple(value for _, value in self._items)

    # -- row algebra --------------------------------------------------------
    @property
    def columns(self) -> frozenset[str]:
        """The domain of the row (set of bound column names)."""
        return frozenset(name for name, _ in self._items)

    def project(self, columns: Iterable[str]) -> "Row":
        """Restrict the row to ``columns`` (missing names are ignored)."""
        wanted = set(columns)
        return Row((name, value) for name, value in self._items if name in wanted)

    def drop(self, columns: Iterable[str]) -> "Row":
        """Remove ``columns`` from the row."""
        unwanted = set(columns)
        return Row((name, value) for name, value in self._items if name not in unwanted)

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """Rename columns according to ``mapping`` (missing names kept as-is)."""
        return Row((mapping.get(name, name), value) for name, value in self._items)

    def extend(self, other: Mapping[str, Any]) -> "Row":
        """Consistent concatenation with ``other``.

        Raises ``ValueError`` if the rows disagree on a shared column; this is
        the ``{s} ⋈ {t} ≠ ∅`` precondition of the paper's semantics.
        """
        merged = dict(self._items)
        for name, value in other.items():
            if name in merged and merged[name] != value:
                raise ValueError(
                    f"inconsistent concatenation on column {name!r}: "
                    f"{merged[name]!r} vs {value!r}"
                )
            merged[name] = value
        return Row(merged)

    def consistent_with(self, other: Mapping[str, Any]) -> bool:
        """True when the rows agree on every shared column."""
        for name, value in other.items():
            mine = self.get(name, _MISSING)
            if mine is not _MISSING and mine != value:
                return False
        return True


_MISSING = object()

#: The empty tuple ⟨⟩ of the paper.
EMPTY_ROW = Row()


def rows_consistent(left: Mapping[str, Any], right: Mapping[str, Any]) -> bool:
    """True when ``left`` and ``right`` agree on shared columns (joinable)."""
    for name, value in right.items():
        if name in left and left[name] != value:
            return False
    return True


def merge_rows(left: Row, right: Mapping[str, Any]) -> Row:
    """Consistent concatenation of two rows (natural join of singletons)."""
    return left.extend(right)
