"""One documented shape for the stack's statistics dictionaries.

Historically every layer grew its own ``stats()`` dict: the single engines
return ``{events_processed, memory_bytes, maps, relations[, codegen]}``, the
batched engine adds ``batching``, the partitioned engine returns routing
counters plus a ``partitions`` list, and the service wraps an ``engine`` key
inside ``{version, views, stream, subscriptions}``.  Consumers (``bench
stats``, ``describe()``, dashboards) each hard-coded one of those shapes.

:func:`unify_statistics` normalizes any of them into the schema below without
touching the original dictionaries — the raw shapes stay exactly as they were
(the compatibility shim: every existing key keeps its name and meaning, and
the raw dict rides along under ``"raw"``).

Schema ``repro.stats/1``::

    {
      "schema":  "repro.stats/1",
      "mode":    "incremental" | "compiled" | "batched" | "partitioned",
      "engine":  {"events_processed": int, "memory_bytes": int},
      "maps":    {name: {entries, memory_bytes, probes, scans, range_probes,
                         indexes, [ordered_indexes]}} | None,
      "relations": {name: {...}} | None,
      "codegen":   {...} | None,          # codegen_statistics() shape
      "batching":  {...} | None,          # batching counters
      "partitioning": {"spec", "events_routed", "events_broadcast",
                       "partitions": [unified...]} | None,
      "service": {"version", "views", "stream", "subscriptions"} | None,
      "raw": <the original dictionary>,
    }
"""

from __future__ import annotations

from typing import Any, Mapping

#: Version marker carried by every unified statistics dictionary.
STATS_SCHEMA = "repro.stats/1"


def unify_statistics(stats: Mapping[str, Any]) -> dict[str, Any]:
    """Normalize any layer's ``statistics()`` dict into the unified schema."""
    if "engine" in stats and "views" in stats:
        engine = unify_statistics(stats["engine"])
        unified = dict(engine)
        unified["service"] = {
            "version": stats.get("version"),
            "views": stats.get("views"),
            "stream": stats.get("stream"),
            "subscriptions": stats.get("subscriptions"),
        }
        unified["raw"] = dict(stats)
        return unified

    unified: dict[str, Any] = {
        "schema": STATS_SCHEMA,
        "engine": {
            "events_processed": stats.get("events_processed", 0),
            "memory_bytes": stats.get("memory_bytes", 0),
        },
        "maps": stats.get("maps"),
        "relations": stats.get("relations"),
        "codegen": stats.get("codegen"),
        "batching": stats.get("batching"),
        "partitioning": None,
        "service": None,
        "raw": dict(stats),
    }
    if "partitions" in stats and "spec" in stats:
        unified["mode"] = "partitioned"
        unified["partitioning"] = {
            "spec": stats.get("spec"),
            "events_routed": stats.get("events_routed"),
            "events_broadcast": stats.get("events_broadcast"),
            "exec": stats.get("exec"),
            "partitions": [unify_statistics(p) for p in stats.get("partitions", ())],
        }
    elif stats.get("batching") is not None:
        unified["mode"] = "batched"
    elif stats.get("codegen") is not None:
        unified["mode"] = "compiled"
    else:
        unified["mode"] = "incremental"
    return unified


def flatten_statistics(stats: Mapping[str, Any]) -> dict[str, Any]:
    """Headline scalars of a (unified or raw) statistics dict, one level deep.

    The ``bench stats --json`` output: stable dotted keys, scalar values.
    """
    unified = stats if stats.get("schema") == STATS_SCHEMA else unify_statistics(stats)
    flat: dict[str, Any] = {
        "schema": unified["schema"],
        "mode": unified["mode"],
        "engine.events_processed": unified["engine"]["events_processed"],
        "engine.memory_bytes": unified["engine"]["memory_bytes"],
    }
    codegen = unified.get("codegen")
    if codegen:
        for key in (
            "compiled_statements",
            "fallback_statements",
            "fallback_hits",
            "fused_kernels",
            "fused_statements",
        ):
            if key in codegen:
                flat[f"codegen.{key}"] = codegen[key]
    batching = unified.get("batching")
    if batching:
        for key, value in batching.items():
            if isinstance(value, Mapping):
                # vector_fallbacks: reason -> count, one dotted key per reason.
                for inner, count in value.items():
                    flat[f"batching.{key}.{inner}"] = count
            else:
                flat[f"batching.{key}"] = value
    partitioning = unified.get("partitioning")
    if partitioning:
        flat["partitioning.events_broadcast"] = partitioning.get("events_broadcast")
        routed = partitioning.get("events_routed") or []
        flat["partitioning.events_routed"] = sum(routed)
        flat["partitioning.partitions"] = len(partitioning.get("partitions", ()))
    service = unified.get("service")
    if service:
        flat["service.version"] = service.get("version")
    return flat
