"""Unified observability for the view-maintenance stack.

One :class:`~repro.telemetry.core.MetricRegistry` collects every layer's
signals — per-trigger latency histograms, map probe counters, codegen
fallback hits, batching/partitioning timings, service staleness — and exposes
them as Prometheus text, a JSON snapshot, or through the
``python -m repro.telemetry`` CLI.  :mod:`repro.telemetry.trace` adds
span-style tracing of the event pipeline into a rotating JSONL sink, and
:mod:`repro.telemetry.schema` normalizes the historical per-layer ``stats()``
dictionaries into one documented shape.

Disabled (the default) costs nothing: instruments are shared no-op
singletons and instrumented hot paths reduce to a single ``None`` check.
Enable per engine (``telemetry=Telemetry(enabled=True)``), per process
(:func:`configure`), or via the ``REPRO_TELEMETRY`` environment variable.
"""

from repro.telemetry.core import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    Telemetry,
    TELEMETRY_ENV,
    configure,
    current,
    reset,
)
from repro.telemetry.schema import STATS_SCHEMA, unify_statistics
from repro.telemetry.trace import (
    JsonlTraceSink,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "COUNT_BOUNDS",
    "LATENCY_BOUNDS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MetricRegistry",
    "NullRegistry",
    "NullTracer",
    "STATS_SCHEMA",
    "Span",
    "TELEMETRY_ENV",
    "Telemetry",
    "Tracer",
    "configure",
    "current",
    "reset",
    "unify_statistics",
]
