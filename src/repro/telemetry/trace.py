"""Span-style tracing of the event pipeline, with a JSONL file sink.

Spans form a per-thread stack, so a trace of one ingest batch reads as the
pipeline hierarchy::

    service.ingest
      service.validate
      service.apply
        engine.apply            (sampled per-event records)
      service.publish
        service.deliver

Each finished span becomes one JSON object in the sink (rotating file) with
monotonic-clock timing.  Sampling is deterministic and counter-based: at
``sample_rate=0.01`` exactly every 100th candidate span is recorded, which
keeps overhead bounded and runs reproducible.  The disabled tracer hands out
one shared no-op span, so un-sampled spans allocate nothing.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Mapping


class JsonlTraceSink:
    """An append-only JSONL file with size-based rotation (one ``.1`` backup)."""

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def write(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._file.write(line + "\n")
            if self._file.tell() >= self.max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        self._file.close()
        backup = self.path + ".1"
        if os.path.exists(backup):
            os.remove(backup)
        os.replace(self.path, backup)
        self._file = open(self.path, "a", encoding="utf-8")

    def flush(self) -> None:
        with self._lock:
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


class Span:
    """One timed section; use as a context manager."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, span_id: int, parent_id: int | None, attrs):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        self.tracer._pop(self)
        self.tracer._record(self, duration, error=exc_type is not None)


class _NullSpan:
    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SuppressedSpan:
    """No-op span for the subtree of an un-sampled root.

    Unlike :data:`NULL_SPAN` it tracks nesting depth on the tracer's
    thread-local stack so that spans opened *inside* an un-sampled root are
    suppressed too, instead of being re-sampled as orphan roots.  One shared
    instance per tracer — entering only bumps a counter, so un-sampled
    subtrees still allocate nothing per span.
    """

    __slots__ = ("tracer",)
    name = ""
    span_id = 0
    parent_id = None

    def __init__(self, tracer: "Tracer") -> None:
        self.tracer = tracer

    def __enter__(self) -> "_SuppressedSpan":
        stack = self.tracer._stack
        stack.suppressed = getattr(stack, "suppressed", 0) + 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._stack.suppressed -= 1


class Tracer:
    """Emits sampled span records into a sink."""

    def __init__(self, sink: JsonlTraceSink | None = None, sample_rate: float = 1.0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sink = sink
        self.sample_rate = sample_rate
        self.enabled = sink is not None and sample_rate > 0.0
        self.spans_recorded = 0
        self.spans_skipped = 0
        self._ids = itertools.count(1)
        self._candidates = 0
        self._accumulator = 0.0
        self._sample_lock = threading.Lock()
        self._stack = threading.local()
        self._suppressed_span = _SuppressedSpan(self)

    # -- sampling ---------------------------------------------------------------
    def _sampled(self) -> bool:
        """Deterministic counter-based sampling (every 1/rate-th candidate)."""
        if not self.enabled:
            return False
        if self.sample_rate >= 1.0:
            return True
        with self._sample_lock:
            self._accumulator += self.sample_rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                return True
            self.spans_skipped += 1
            return False

    # -- span stack -------------------------------------------------------------
    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _parent_id(self) -> int | None:
        stack = getattr(self._stack, "spans", None)
        return stack[-1].span_id if stack else None

    # -- public API -------------------------------------------------------------
    def span(self, name: str, attrs: Mapping[str, Any] | None = None):
        """A context-managed span; the shared no-op span when not sampled.

        Sampling applies at trace roots: nested spans inside a sampled root
        are always recorded (a sampled ingest carries its full pipeline
        breakdown) and nested spans inside an un-sampled root are always
        suppressed (no orphan children in the trace).
        """
        if not self.enabled:
            return NULL_SPAN
        if getattr(self._stack, "suppressed", 0):
            return self._suppressed_span
        if self._parent_id() is None and not self._sampled():
            return self._suppressed_span
        return Span(self, name, next(self._ids), self._parent_id(), attrs)

    def event(self, name: str, duration: float, attrs: Mapping[str, Any] | None = None) -> None:
        """Record an already-measured duration as a leaf span.

        Lets hot paths reuse a ``perf_counter`` pair they measured anyway
        (the engine's per-event latency sample) instead of timing twice.
        """
        if getattr(self._stack, "suppressed", 0):
            return
        if self._parent_id() is None and not self._sampled():
            return
        span = Span(self, name, next(self._ids), self._parent_id(), attrs)
        self._record(span, duration, error=False)

    def _record(self, span: Span, duration: float, error: bool) -> None:
        if self.sink is None:
            return
        record: dict[str, Any] = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "duration_seconds": duration,
            "monotonic": time.monotonic(),
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        if error:
            record["error"] = True
        self.spans_recorded += 1
        self.sink.write(record)

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


class NullTracer:
    """The disabled tracer: every span is the shared no-op span."""

    enabled = False
    spans_recorded = 0
    spans_skipped = 0

    def span(self, name: str, attrs: Mapping[str, Any] | None = None) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, duration: float, attrs=None) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
