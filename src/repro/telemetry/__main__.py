"""Live profiling CLI: inspect a running view server's telemetry.

Point it at a server started with ``python -m repro.service serve
--telemetry`` (or ``REPRO_TELEMETRY=1``)::

    python -m repro.telemetry summary --port 7641
    python -m repro.telemetry top-triggers -n 10 --port 7641
    python -m repro.telemetry watch --interval 2 --port 7641
    python -m repro.telemetry dump --prom --port 7641

``summary`` prints the headline health figures (event rates, per-trigger
latency quantiles, service staleness, subscription lag); ``top-triggers``
ranks triggers by total time spent; ``watch`` refreshes the summary
periodically with interval deltas; ``dump`` emits the raw JSON snapshot or
the Prometheus text exposition for piping into other tools.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any


def _connect(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.host, args.port, timeout=args.timeout)


def _fetch(args: argparse.Namespace) -> dict[str, Any]:
    with _connect(args) as client:
        return client.metrics()


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _series(metrics: dict[str, Any], name: str) -> list[dict[str, Any]]:
    family = metrics.get(name)
    if not family:
        return []
    return list(family.get("series", ()))


def _merged_histogram(metrics: dict[str, Any], name: str) -> dict[str, Any] | None:
    """Aggregate a histogram family's series (approximate: count-weighted)."""
    series = [s for s in _series(metrics, name) if "count" in s]
    total = sum(s["count"] for s in series)
    if not total:
        return None
    return {
        "count": total,
        "sum": sum(s["sum"] for s in series),
        # Count-weighted quantile estimate across series; exact per-series
        # quantiles are available in the dump.
        "p50": sum(s["p50"] * s["count"] for s in series) / total,
        "p99": sum(s["p99"] * s["count"] for s in series) / total,
    }


def _trigger_rows(metrics: dict[str, Any]) -> list[dict[str, Any]]:
    rows = []
    for entry in _series(metrics, "repro_engine_trigger_latency_seconds"):
        if not entry.get("count"):
            continue
        labels = entry.get("labels", {})
        rows.append(
            {
                "trigger": f"on_{labels.get('op', '?')}_{labels.get('relation', '?')}",
                "count": entry["count"],
                "total": entry["sum"],
                "p50": entry.get("p50"),
                "p99": entry.get("p99"),
            }
        )
    return rows


def _print_summary(response: dict[str, Any]) -> None:
    metrics = response.get("metrics", {})
    if not response.get("enabled"):
        print("telemetry disabled on the server "
              "(start it with --telemetry or REPRO_TELEMETRY=1)")
        return

    stats = response.get("statistics", {})
    service = stats.get("service", {}) if isinstance(stats, dict) else {}
    version = service.get("version")
    mode = stats.get("mode", "?") if isinstance(stats, dict) else "?"
    header = f"engine mode: {mode}"
    if version is not None:
        header += f"   service version: {version}"
    print(header)

    events = _merged_histogram(metrics, "repro_engine_trigger_latency_seconds")
    if events:
        print(f"events measured: {events['count']}   "
              f"per-event p50 {_fmt_seconds(events['p50'])}   "
              f"p99 {_fmt_seconds(events['p99'])}")

    staleness = _merged_histogram(metrics, "repro_service_staleness_seconds")
    if staleness:
        print(f"ingest->visible staleness: p50 {_fmt_seconds(staleness['p50'])}   "
              f"p99 {_fmt_seconds(staleness['p99'])}   "
              f"(batches: {staleness['count']})")

    queries = _merged_histogram(metrics, "repro_service_query_latency_seconds")
    if queries:
        print(f"query latency: p50 {_fmt_seconds(queries['p50'])}   "
              f"p99 {_fmt_seconds(queries['p99'])}   (queries: {queries['count']})")

    rows = _trigger_rows(metrics)
    if rows:
        print("\ntriggers (by total time):")
        rows.sort(key=lambda r: r["total"], reverse=True)
        for row in rows[:8]:
            print(f"  {row['trigger']:<28s} n={row['count']:<9d} "
                  f"p50 {_fmt_seconds(row['p50']):>9s}  "
                  f"p99 {_fmt_seconds(row['p99']):>9s}  "
                  f"total {_fmt_seconds(row['total'])}")

    depth = _series(metrics, "repro_service_subscription_depth")
    if depth:
        pending = sum(int(s.get("value", 0)) for s in depth)
        overflow = _series(metrics, "repro_service_subscription_overflows_total")
        overflows = int(overflow[0]["value"]) if overflow else 0
        print(f"\nsubscriptions: {len(depth)} live, {pending} pending deltas, "
              f"{overflows} overflow(s)")


def _cmd_summary(args: argparse.Namespace) -> int:
    _print_summary(_fetch(args))
    return 0


def _cmd_top_triggers(args: argparse.Namespace) -> int:
    response = _fetch(args)
    if not response.get("enabled"):
        print("telemetry disabled on the server")
        return 1
    rows = _trigger_rows(response.get("metrics", {}))
    if not rows:
        print("no trigger samples yet")
        return 0
    rows.sort(key=lambda r: r["total"], reverse=True)
    print(f"{'trigger':<28s} {'events':>9s} {'p50':>10s} {'p99':>10s} {'total':>10s}")
    for row in rows[: args.count]:
        print(f"{row['trigger']:<28s} {row['count']:>9d} "
              f"{_fmt_seconds(row['p50']):>10s} {_fmt_seconds(row['p99']):>10s} "
              f"{_fmt_seconds(row['total']):>10s}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    previous_events = None
    try:
        while True:
            response = _fetch(args)
            merged = _merged_histogram(
                response.get("metrics", {}), "repro_engine_trigger_latency_seconds"
            )
            now = time.strftime("%H:%M:%S")
            print(f"--- {now} ---")
            _print_summary(response)
            if merged is not None:
                if previous_events is not None:
                    delta = merged["count"] - previous_events
                    print(f"events in last {args.interval:g}s interval: {delta} "
                          f"({delta / args.interval:.0f}/s)")
                previous_events = merged["count"]
            print(flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    response = _fetch(args)
    if args.prom:
        sys.stdout.write(response.get("prometheus", ""))
    else:
        json.dump(
            {
                "enabled": response.get("enabled"),
                "metrics": response.get("metrics", {}),
                "statistics": response.get("statistics", {}),
            },
            sys.stdout,
            indent=2,
            sort_keys=True,
            default=str,
        )
        sys.stdout.write("\n")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default="127.0.0.1")
    connection.add_argument("--port", type=int, default=7641)
    connection.add_argument("--timeout", type=float, default=10.0)

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect a running view server's metrics and latency profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", parents=[connection],
                             help="headline health figures")
    summary.set_defaults(func=_cmd_summary)

    top = sub.add_parser("top-triggers", parents=[connection],
                         help="triggers ranked by total time")
    top.add_argument("-n", "--count", type=int, default=20)
    top.set_defaults(func=_cmd_top_triggers)

    watch = sub.add_parser("watch", parents=[connection],
                           help="refresh the summary periodically")
    watch.add_argument("--interval", type=float, default=2.0)
    watch.set_defaults(func=_cmd_watch)

    dump = sub.add_parser("dump", parents=[connection],
                          help="raw snapshot (JSON, or --prom text)")
    dump.add_argument("--prom", action="store_true",
                      help="Prometheus text exposition instead of JSON")
    dump.set_defaults(func=_cmd_dump)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConnectionRefusedError:
        print(f"no server at {args.host}:{args.port}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
