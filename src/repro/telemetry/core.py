"""Low-overhead metrics core: counters, gauges, histograms, one registry.

Design constraints, in priority order:

1. **Hot-path cost.**  The engine observes one latency sample per event; at
   fused rates (>1M events/s) every nanosecond shows up in the 5% overhead
   gate.  ``Histogram.observe`` is therefore three statements (a C-level
   ``bisect_right`` over shared precomputed bounds, plus two attribute
   increments) and instruments use ``__slots__``.
2. **Zero cost when disabled.**  A disabled :class:`Telemetry` hands out
   shared no-op singletons; instrumented hot paths additionally keep a
   ``None`` sentinel so the disabled branch is a single comparison and
   allocates nothing per event (see the no-op allocation test).
3. **One registry.**  Every layer registers into the same
   :class:`MetricRegistry`; cheap always-on integer counters that live inside
   data structures (map probes, fallback hits, queue lag) are pulled in at
   scrape time by *collector* callbacks instead of paying registry calls on
   the hot path.

Quantiles come from fixed log-scaled buckets (20 per decade, 100 ns .. 100 s)
with geometric interpolation inside the winning bucket, so p50/p90/p99 are
accurate to ~6% — plenty for profiling, and far cheaper than reservoirs.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from bisect import bisect_right
from typing import Any, Callable, Mapping

#: Log-scaled latency bucket bounds shared by every histogram: 20 buckets per
#: decade spanning 1e-7 s (100 ns) .. 1e2 s.  Shared so ``observe`` never
#: recomputes them and merged families line up bucket-for-bucket.
_DECADES = 9
_PER_DECADE = 20
_STEP = 1.0 / _PER_DECADE
LATENCY_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (-7.0 + i * _STEP) for i in range(_DECADES * _PER_DECADE + 1)
)
_BUCKET_FACTOR = 10.0 ** _STEP

#: Log-scaled bounds for count-valued histograms (batch sizes, queue depths):
#: 1 .. 1e6, same 20-per-decade resolution.
COUNT_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (i * _STEP) for i in range(6 * _PER_DECADE + 1)
)

#: Environment variable that switches the process-global telemetry on.
TELEMETRY_ENV = "REPRO_TELEMETRY"

LabelsLike = Mapping[str, str] | None
_Labels = tuple[tuple[str, str], ...]


def _freeze_labels(labels: LabelsLike) -> _Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket log-scaled histogram for latency quantiles.

    ``counts`` has one slot per bound plus a final overflow slot;
    ``counts[i]`` counts observations in ``(bounds[i-1], bounds[i]]``.
    """

    __slots__ = ("name", "labels", "_bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, labels: _Labels = (), bounds: tuple[float, ...] = LATENCY_BOUNDS
    ):
        self.name = name
        self.labels = labels
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self._bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (geometric interpolation in-bucket)."""
        return _bucket_quantile(self._bounds, self.counts, self.count, q)

    def merge_into(self, counts: list[int]) -> None:
        for i, c in enumerate(self.counts):
            counts[i] += c


def _bucket_quantile(
    bounds: tuple[float, ...], counts: list[int], total: int, q: float
) -> float:
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        before = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            if i >= len(bounds):  # overflow bucket: clamp to the last bound
                return bounds[-1]
            hi = bounds[i]
            lo = bounds[i - 1] if i > 0 else hi / _BUCKET_FACTOR
            fraction = (target - before) / bucket_count
            return lo * (hi / lo) ** fraction
    return bounds[-1]


class _NullCounter:
    __slots__ = ()
    name = "null"
    labels: _Labels = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    labels: _Labels = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    labels: _Labels = ()
    count = 0
    sum = 0.0
    bounds = LATENCY_BOUNDS

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """All live instruments of one telemetry domain, keyed by (name, labels).

    Asking for the same (name, labels) twice returns the same instrument, so
    components can re-derive their handles idempotently (the compiled engine
    re-runs instrument setup after swapping executors).  ``register`` can bind
    an *existing* instrument under an additional series — used to expose one
    measured histogram under both its engine-level and kernel-level names
    without observing twice.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, _Labels], Any] = {}
        self._meta: dict[str, tuple[str, str]] = {}
        self._collectors: list[Callable[["MetricRegistry"], None]] = []

    # -- instrument handles -----------------------------------------------------
    def _get(self, kind: str, cls, name: str, labels: LabelsLike, help: str, **kwargs):
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._series[key] = instrument
                self._meta.setdefault(name, (kind, help))
            return instrument

    def counter(self, name: str, labels: LabelsLike = None, help: str = "") -> Counter:
        return self._get("counter", Counter, name, labels, help)

    def gauge(self, name: str, labels: LabelsLike = None, help: str = "") -> Gauge:
        return self._get("gauge", Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: LabelsLike = None,
        help: str = "",
        bounds: tuple[float, ...] = LATENCY_BOUNDS,
    ) -> Histogram:
        return self._get("histogram", Histogram, name, labels, help, bounds=bounds)

    def register(
        self,
        name: str,
        labels: LabelsLike,
        instrument,
        kind: str = "histogram",
        help: str = "",
    ) -> None:
        """Expose an existing instrument under an additional series name."""
        key = (name, _freeze_labels(labels))
        with self._lock:
            self._series[key] = instrument
            self._meta.setdefault(name, (kind, help))

    # -- scrape-time collectors -------------------------------------------------
    def add_collector(self, collector: Callable[["MetricRegistry"], None]) -> None:
        """Register a callback that refreshes gauges/counters at scrape time.

        Collectors let always-on integer counters that live inside data
        structures (map probes, fallback hits, queue depth) surface in the
        registry without any hot-path registry calls.
        """
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # -- exposition -------------------------------------------------------------
    def series(self) -> list[tuple[str, _Labels, Any]]:
        with self._lock:
            return [(name, labels, inst) for (name, labels), inst in self._series.items()]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable dump: per-name families with per-series stats."""
        self.collect()
        families: dict[str, Any] = {}
        for name, labels, instrument in sorted(
            self.series(), key=lambda item: (item[0], item[1])
        ):
            kind, help = self._meta.get(name, ("untyped", ""))
            family = families.setdefault(
                name, {"type": kind, "help": help, "series": []}
            )
            entry: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(instrument, Histogram):
                entry.update(
                    count=instrument.count,
                    sum=instrument.sum,
                    p50=instrument.quantile(0.5),
                    p90=instrument.quantile(0.9),
                    p99=instrument.quantile(0.99),
                )
            else:
                entry["value"] = instrument.value
            family["series"].append(entry)
        return families

    def histogram_family(self, name: str) -> dict[str, Any] | None:
        """Merge every series of one histogram family into aggregate quantiles."""
        merged: list[int] | None = None
        total = 0
        total_sum = 0.0
        bounds = LATENCY_BOUNDS
        for series_name, _labels, instrument in self.series():
            if series_name != name or not isinstance(instrument, Histogram):
                continue
            if merged is None:
                bounds = instrument.bounds
                merged = [0] * (len(bounds) + 1)
            instrument.merge_into(merged)
            total += instrument.count
            total_sum += instrument.sum
        if merged is None:
            return None
        return {
            "count": total,
            "sum": total_sum,
            "p50": _bucket_quantile(bounds, merged, total, 0.5),
            "p90": _bucket_quantile(bounds, merged, total, 0.9),
            "p99": _bucket_quantile(bounds, merged, total, 0.99),
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (histograms as cumulative ``_bucket``)."""
        self.collect()
        lines: list[str] = []
        seen_header: set[str] = set()
        for name, labels, instrument in sorted(
            self.series(), key=lambda item: (item[0], item[1])
        ):
            kind, help = self._meta.get(name, ("untyped", ""))
            if name not in seen_header:
                seen_header.add(name)
                if help:
                    lines.append(f"# HELP {name} {help}")
                lines.append(f"# TYPE {name} {kind}")
            if isinstance(instrument, Histogram):
                cumulative = 0
                for i, bucket_count in enumerate(instrument.counts):
                    cumulative += bucket_count
                    if not bucket_count and i < len(instrument.bounds):
                        continue  # sparse render: skip empty non-terminal buckets
                    le = (
                        _format_value(instrument.bounds[i])
                        if i < len(instrument.bounds)
                        else "+Inf"
                    )
                    lines.append(
                        f"{name}_bucket{_label_text(labels, ('le', le))} {cumulative}"
                    )
                lines.append(f"{name}_sum{_label_text(labels)} {_format_value(instrument.sum)}")
                lines.append(f"{name}_count{_label_text(labels)} {instrument.count}")
            else:
                lines.append(f"{name}{_label_text(labels)} {_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: _Labels, extra: tuple[str, str] | None = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    formatted = repr(float(value))
    return formatted


class NullRegistry:
    """The disabled registry: every handle is a shared no-op singleton."""

    enabled = False

    def counter(self, name: str, labels: LabelsLike = None, help: str = "") -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, labels: LabelsLike = None, help: str = "") -> _NullGauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, labels: LabelsLike = None, help: str = ""
    ) -> _NullHistogram:
        return NULL_HISTOGRAM

    def register(self, name, labels, instrument, kind="histogram", help="") -> None:
        pass

    def add_collector(self, collector) -> None:
        pass

    def collect(self) -> None:
        pass

    def series(self) -> list:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}

    def histogram_family(self, name: str) -> None:
        return None

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()


class Telemetry:
    """One telemetry domain: a metric registry plus a trace emitter.

    ``enabled`` gates the *measuring* cost (``perf_counter`` calls, histogram
    observes); always-on integer counters inside data structures keep counting
    regardless and are only scraped when enabled.  A disabled instance shares
    the process-wide null registry/tracer, so constructing one is free.

    Two knobs trade per-event latency coverage for hot-path overhead:

    * ``sample_stride`` — with stride ``n`` only every n-th event is timed
      and observed; the rest pay one attribute decrement.  Deterministic and
      exact (stride 1, the default, observes everything), but the decrement
      itself is measurable at fused >1M events/s rates.
    * ``profile_interval`` — timer-driven burst profiling: a daemon thread
      re-arms the engine's observers every ``profile_interval`` seconds for a
      burst of ``profile_burst`` consecutive timed events, after which the
      engine disarms itself.  Between bursts the hot path pays exactly the
      disabled-mode ``None`` check, so steady-state overhead is bounded by
      ``burst * observe_cost / interval`` regardless of the event rate — the
      mode the benchmark overhead gate runs under.

    Scrape-time event totals are scaled back up (by the stride, or by the
    sampled fraction in profiling mode), so rates stay correct; per-key
    totals are exact at stride 1 and statistical estimates otherwise.
    """

    __slots__ = (
        "enabled",
        "profile_burst",
        "profile_interval",
        "registry",
        "sample_stride",
        "tracer",
        "_engines",
        "_profiler",
    )

    def __init__(
        self,
        enabled: bool = False,
        registry=None,
        tracer=None,
        sample_stride: int = 1,
        profile_interval: float = 0.0,
        profile_burst: int = 64,
    ) -> None:
        from repro.telemetry.trace import NULL_TRACER

        self.enabled = bool(enabled)
        if registry is None:
            registry = MetricRegistry() if self.enabled else NULL_REGISTRY
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sample_stride = max(1, int(sample_stride))
        self.profile_interval = float(profile_interval)
        self.profile_burst = max(1, int(profile_burst))
        self._engines: weakref.WeakSet = weakref.WeakSet()
        self._profiler: threading.Thread | None = None

    def attach_engine(self, engine) -> None:
        """Register an engine for periodic burst re-arming (profiling mode).

        No-op outside profiling mode.  The profiler thread holds only weak
        references and exits once every attached engine is gone, so attaching
        never extends an engine's lifetime.
        """
        if not self.enabled or self.profile_interval <= 0:
            return
        self._engines.add(engine)
        thread = self._profiler
        if thread is None or not thread.is_alive():
            thread = threading.Thread(
                target=self._profile_loop, name="repro-telemetry-profiler", daemon=True
            )
            self._profiler = thread
            thread.start()

    def _profile_loop(self) -> None:
        while True:
            time.sleep(self.profile_interval)
            engines = list(self._engines)
            if not engines:
                return
            for engine in engines:
                arm = getattr(engine, "_telemetry_arm", None)
                if arm is not None:
                    arm()


_current_lock = threading.Lock()
_current: Telemetry | None = None


def _env_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in {"1", "true", "on", "yes"}


def current() -> Telemetry:
    """The process-global telemetry (enabled via ``REPRO_TELEMETRY`` or
    :func:`configure`); a shared disabled instance otherwise."""
    global _current
    with _current_lock:
        if _current is None:
            _current = Telemetry(enabled=_env_enabled())
        return _current


def configure(
    enabled: bool = True,
    trace_file: str | None = None,
    trace_sample: float = 1.0,
    max_trace_bytes: int = 16 * 1024 * 1024,
    sample_stride: int = 1,
) -> Telemetry:
    """Install the process-global telemetry (server/CLI entry points)."""
    global _current
    tracer = None
    if trace_file:
        from repro.telemetry.trace import JsonlTraceSink, Tracer

        tracer = Tracer(
            JsonlTraceSink(trace_file, max_bytes=max_trace_bytes),
            sample_rate=trace_sample,
        )
    telemetry = Telemetry(enabled=enabled, tracer=tracer, sample_stride=sample_stride)
    with _current_lock:
        _current = telemetry
    return telemetry


def reset() -> None:
    """Forget the process-global telemetry (test isolation)."""
    global _current
    with _current_lock:
        _current = None
