"""Stream adapters: move events between files, plain rows and the engines.

The released DBToaster binaries consume updates from CSV files or sockets;
these adapters provide the file-based equivalent so generated workloads can
be persisted, replayed and shared between benchmark runs.

Two file formats are supported:

* CSV (``write_events_csv`` / ``events_from_csv``) — compact and spreadsheet
  friendly, but typed by parsing: every field is re-read as int, float, bool,
  ``None`` or string, so a *string* that looks like one of those literals
  (``"7"``, ``"True"``) comes back as the typed value;
* JSON lines (``write_events_jsonl`` / ``events_from_jsonl``) — one event
  object per line, lossless for the engine value types (int, float, bool,
  ``None``, str).  This is also the wire format of the serving layer
  (:mod:`repro.service`), which reuses :func:`event_to_dict` /
  :func:`event_from_dict`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.delta.events import DELETE, INSERT, StreamEvent
from repro.errors import WorkloadError

_KIND_SIGNS = {"insert": INSERT, "delete": DELETE}


def events_from_rows(
    relation: str,
    rows: Iterable[Sequence[Any] | Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    sign: int = INSERT,
) -> Iterator[StreamEvent]:
    """Turn plain rows into insert (or delete) events for one relation."""
    for row in rows:
        if isinstance(row, Mapping):
            if columns is None:
                raise WorkloadError("columns are required when rows are mappings")
            values = tuple(row[c] for c in columns)
        else:
            values = tuple(row)
        yield StreamEvent(relation, values, sign)


def write_events_csv(path: str | Path, events: Iterable[StreamEvent]) -> int:
    """Persist events to a CSV file (kind, relation, values...); returns the count.

    ``None`` is written as the literal ``None`` (the csv module would emit an
    empty string, which cannot be told apart from ``""``); the reader turns
    the ``True``/``False``/``None`` literals back into their typed values.
    """
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for event in events:
            values = ["None" if value is None else value for value in event.values]
            writer.writerow([event.kind, event.relation, *values])
            count += 1
    return count


_CSV_LITERALS = {"True": True, "False": False, "None": None}


def _parse_value(text: str) -> Any:
    literal = _CSV_LITERALS.get(text, text)
    if literal is not text:
        return literal
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def events_from_csv(path: str | Path) -> Iterator[StreamEvent]:
    """Read back events written by :func:`write_events_csv`."""
    with open(path, newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) < 2:
                raise WorkloadError(f"malformed event on line {line_number}: {row!r}")
            kind, relation, *values = row
            sign = _KIND_SIGNS.get(kind)
            if sign is None:
                raise WorkloadError(f"unknown event kind {kind!r} on line {line_number}")
            yield StreamEvent(relation, tuple(_parse_value(v) for v in values), sign)


def event_to_dict(event: StreamEvent) -> dict[str, Any]:
    """A JSON-serializable representation of one event (the wire/JSONL format)."""
    return {"kind": event.kind, "relation": event.relation, "values": list(event.values)}


def event_from_dict(payload: Mapping[str, Any], context: str = "event") -> StreamEvent:
    """Rebuild an event from :func:`event_to_dict` output, validating the shape."""
    if not isinstance(payload, Mapping):
        raise WorkloadError(f"{context}: expected an object, got {payload!r}")
    try:
        kind = payload["kind"]
        relation = payload["relation"]
        values = payload["values"]
    except KeyError as exc:
        raise WorkloadError(f"{context}: missing field {exc.args[0]!r}") from None
    sign = _KIND_SIGNS.get(kind)
    if sign is None:
        raise WorkloadError(f"{context}: unknown event kind {kind!r}")
    if not isinstance(relation, str) or not isinstance(values, (list, tuple)):
        raise WorkloadError(f"{context}: malformed relation/values in {payload!r}")
    return StreamEvent(relation, tuple(values), sign)


def write_events_jsonl(path: str | Path, events: Iterable[StreamEvent]) -> int:
    """Persist events as JSON lines (lossless value typing); returns the count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event)))
            handle.write("\n")
            count += 1
    return count


def events_from_jsonl(path: str | Path) -> Iterator[StreamEvent]:
    """Read back events written by :func:`write_events_jsonl`."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"malformed JSON on line {line_number}: {exc}"
                ) from None
            yield event_from_dict(payload, context=f"line {line_number}")
