"""Stream adapters: move events between files, plain rows and the engines.

The released DBToaster binaries consume updates from CSV files or sockets;
these adapters provide the file-based equivalent so generated workloads can
be persisted, replayed and shared between benchmark runs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.delta.events import DELETE, INSERT, StreamEvent
from repro.errors import WorkloadError


def events_from_rows(
    relation: str,
    rows: Iterable[Sequence[Any] | Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    sign: int = INSERT,
) -> Iterator[StreamEvent]:
    """Turn plain rows into insert (or delete) events for one relation."""
    for row in rows:
        if isinstance(row, Mapping):
            if columns is None:
                raise WorkloadError("columns are required when rows are mappings")
            values = tuple(row[c] for c in columns)
        else:
            values = tuple(row)
        yield StreamEvent(relation, values, sign)


def write_events_csv(path: str | Path, events: Iterable[StreamEvent]) -> int:
    """Persist events to a CSV file (kind, relation, values...); returns the count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for event in events:
            writer.writerow([event.kind, event.relation, *event.values])
            count += 1
    return count


def _parse_value(text: str) -> Any:
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def events_from_csv(path: str | Path) -> Iterator[StreamEvent]:
    """Read back events written by :func:`write_events_csv`."""
    with open(path, newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) < 2:
                raise WorkloadError(f"malformed event on line {line_number}: {row!r}")
            kind, relation, *values = row
            if kind == "insert":
                sign = INSERT
            elif kind == "delete":
                sign = DELETE
            else:
                raise WorkloadError(f"unknown event kind {kind!r} on line {line_number}")
            yield StreamEvent(relation, tuple(_parse_value(v) for v in values), sign)
