"""Stream statistics used by reports and by the workload tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.delta.events import StreamEvent


@dataclass
class StreamStats:
    """Counts describing an update stream."""

    total: int = 0
    inserts: int = 0
    deletes: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)
    peak_live_tuples: dict[str, int] = field(default_factory=dict)

    @property
    def delete_fraction(self) -> float:
        """Fraction of events that are deletions."""
        return self.deletes / self.total if self.total else 0.0

    def record(self, event: StreamEvent) -> None:
        """Fold one event into the counts (used by live ingestion loops)."""
        self.total += 1
        if event.sign > 0:
            self.inserts += 1
        else:
            self.deletes += 1
        self.per_relation[event.relation] = self.per_relation.get(event.relation, 0) + 1

    def as_dict(self) -> dict[str, object]:
        """A JSON-serializable summary (used by service statistics)."""
        return {
            "total": self.total,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "per_relation": dict(self.per_relation),
        }


@dataclass(frozen=True)
class QueueStats:
    """Delivery counters of one bounded consumer queue (delta subscriptions).

    ``lag`` is the number of published-but-undelivered notifications; a
    non-zero ``overflowed`` means the queue hit its bound and the subscription
    was closed rather than silently dropping notifications.  ``coalesced``
    counts the changes a ``coalesce``-policy subscription absorbed into net
    per-key deltas under backpressure instead of closing.

    ``high_watermark`` is the deepest the queue ever got, and
    ``last_delivery_age_seconds`` is the monotonic-clock age of the last
    successful drain — together they make a stalled consumer visible even
    when nothing is being published right now (pending alone reads 0 both
    for a healthy idle subscriber and for one that died mid-backlog).
    """

    published: int
    delivered: int
    pending: int
    overflowed: bool
    high_watermark: int = 0
    last_delivery_age_seconds: float | None = None
    coalesced: int = 0

    @property
    def lag(self) -> int:
        """Published notifications the consumer has not drained yet."""
        return self.pending

    @property
    def idle(self) -> bool:
        """True when there is a backlog the consumer has not touched recently."""
        return self.pending > 0 and (self.last_delivery_age_seconds or 0.0) > 0.0

    def as_dict(self) -> dict[str, object]:
        """A JSON-serializable summary (used by service statistics)."""
        return {
            "published": self.published,
            "delivered": self.delivered,
            "pending": self.pending,
            "lag": self.lag,
            "overflowed": self.overflowed,
            "high_watermark": self.high_watermark,
            "last_delivery_age_seconds": self.last_delivery_age_seconds,
            "coalesced": self.coalesced,
        }


def summarize_stream(events: Iterable[StreamEvent]) -> StreamStats:
    """Single pass over a stream computing counts and peak live-tuple sizes."""
    stats = StreamStats()
    live: dict[str, int] = {}
    for event in events:
        stats.total += 1
        if event.sign > 0:
            stats.inserts += 1
        else:
            stats.deletes += 1
        stats.per_relation[event.relation] = stats.per_relation.get(event.relation, 0) + 1
        live[event.relation] = live.get(event.relation, 0) + event.sign
        peak = stats.peak_live_tuples.get(event.relation, 0)
        if live[event.relation] > peak:
            stats.peak_live_tuples[event.relation] = live[event.relation]
    return stats
