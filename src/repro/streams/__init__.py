"""Update streams: agendas, adapters and stream statistics."""

from repro.streams.agenda import Agenda, AgendaEntry
from repro.streams.adapters import (
    event_from_dict,
    event_to_dict,
    events_from_csv,
    events_from_jsonl,
    events_from_rows,
    write_events_csv,
    write_events_jsonl,
)
from repro.streams.stats import QueueStats, StreamStats, summarize_stream

__all__ = [
    "Agenda",
    "AgendaEntry",
    "event_from_dict",
    "event_to_dict",
    "events_from_csv",
    "events_from_jsonl",
    "events_from_rows",
    "write_events_csv",
    "write_events_jsonl",
    "QueueStats",
    "StreamStats",
    "summarize_stream",
]
