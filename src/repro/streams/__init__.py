"""Update streams: agendas, adapters and stream statistics."""

from repro.streams.agenda import Agenda, AgendaEntry
from repro.streams.adapters import events_from_csv, events_from_rows, write_events_csv
from repro.streams.stats import StreamStats, summarize_stream

__all__ = [
    "Agenda",
    "AgendaEntry",
    "events_from_csv",
    "events_from_rows",
    "write_events_csv",
    "StreamStats",
    "summarize_stream",
]
