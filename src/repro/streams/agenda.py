"""The agenda: a totally ordered, replayable stream of updates.

The paper's experimental methodology (Section 8) preloads all updates into a
single "Agenda" table whose rows carry the target relation, the update kind
and a sequence number, and then replays it against every system under test.
:class:`Agenda` is that table: an ordered list of events that can be sliced,
iterated repeatedly, serialized and summarized, so every engine sees exactly
the same update sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.delta.events import DELETE, INSERT, StreamEvent


@dataclass(frozen=True)
class AgendaEntry:
    """One row of the agenda: a sequence number plus the event it orders."""

    sequence: int
    event: StreamEvent

    @property
    def relation(self) -> str:
        """Target relation of the event."""
        return self.event.relation

    @property
    def kind(self) -> str:
        """``"insert"`` or ``"delete"``."""
        return self.event.kind


class Agenda:
    """An ordered, replayable sequence of update events."""

    def __init__(self, events: Iterable[StreamEvent] = ()) -> None:
        self._entries: list[AgendaEntry] = []
        for event in events:
            self.append(event)

    # -- construction -----------------------------------------------------------
    def append(self, event: StreamEvent) -> AgendaEntry:
        """Append an event, assigning the next sequence number."""
        entry = AgendaEntry(len(self._entries), event)
        self._entries.append(entry)
        return entry

    def extend(self, events: Iterable[StreamEvent]) -> None:
        """Append several events in order."""
        for event in events:
            self.append(event)

    def insert_row(self, relation: str, *values: Any) -> AgendaEntry:
        """Append an insertion event."""
        return self.append(StreamEvent(relation, values, INSERT))

    def delete_row(self, relation: str, *values: Any) -> AgendaEntry:
        """Append a deletion event."""
        return self.append(StreamEvent(relation, values, DELETE))

    # -- access --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StreamEvent]:
        return (entry.event for entry in self._entries)

    def __getitem__(self, index: int | slice) -> StreamEvent | list[StreamEvent]:
        if isinstance(index, slice):
            return [entry.event for entry in self._entries[index]]
        return self._entries[index].event

    def entries(self) -> Sequence[AgendaEntry]:
        """The agenda rows, in order."""
        return tuple(self._entries)

    def events(self) -> list[StreamEvent]:
        """All events as a list (copies the ordering, not the events)."""
        return [entry.event for entry in self._entries]

    def prefix(self, count: int) -> "Agenda":
        """A new agenda containing the first ``count`` events."""
        return Agenda(entry.event for entry in self._entries[:count])

    def relations(self) -> frozenset[str]:
        """All relations touched by the agenda."""
        return frozenset(entry.relation for entry in self._entries)

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-relation insert/delete counts (used by stream summaries)."""
        out: dict[str, dict[str, int]] = {}
        for entry in self._entries:
            bucket = out.setdefault(entry.relation, {"insert": 0, "delete": 0})
            bucket[entry.kind] += 1
        return out
