"""Command-line entry point for the view service.

Serve a workload query over TCP, durably (recovering from the newest intact
checkpoint chain and the write-ahead log when they hold anything)::

    python -m repro.service serve --query Q1 --engine batched --batch-size 100 \\
        --checkpoint-dir /tmp/q1-ckpt --wal-dir /tmp/q1-wal --port 7641

Replay a persisted event stream through a service offline, print the final
views and leave a checkpoint behind::

    python -m repro.service replay stream.jsonl --query Q1 \\
        --checkpoint-dir /tmp/q1-ckpt --checkpoint-every 1000

The ``--engine`` flag selects the execution mode (``incremental``,
``compiled`` — trigger programs lowered to specialized Python by
``repro.codegen`` — ``batched`` or ``partitioned``); ``--batch-size``,
``--partitions`` and ``--backend`` configure it exactly like the benchmark
CLI.  ``--provenance-depth N`` keeps per-view mutation-history rings (served
through the ``explain-row`` operation), and ``--audit`` attaches the online
view auditor, re-deriving sampled view rows from mirrored base data every
``--audit-every`` events.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.compiler.hoivm import compile_query
from repro.service.core import (
    DEFAULT_INGEST_BATCH,
    ENGINE_MODES,
    ViewService,
    engine_for_mode,
)
from repro.service.server import ViewServer
from repro.workloads import all_workloads, workload


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--query", default="Q1",
                        help="workload query to serve (see: python -m repro.bench list)")
    parser.add_argument("--engine", choices=list(ENGINE_MODES), default="incremental",
                        help="execution mode hosting the views")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="delta batch size (batched/partitioned engines)")
    parser.add_argument("--partitions", type=int, default=None,
                        help="partition count (partitioned engine)")
    parser.add_argument("--backend", choices=["sequential", "process", "vector"],
                        default="sequential",
                        help="partitioned-engine executor (sequential/process) "
                             "or the batched engine's columnar numpy backend "
                             "(vector, with --engine batched)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for durable checkpoints")
    parser.add_argument("--wal-dir", default=None,
                        help="directory for the write-ahead event log (enables "
                             "crash recovery past the last checkpoint)")
    parser.add_argument("--fsync-every", type=int, default=1,
                        help="group-commit bound: fsync the WAL once per this "
                             "many ingested batches (1 = every batch)")
    parser.add_argument("--fsync-interval-ms", type=float, default=None,
                        help="also fsync when this many milliseconds passed "
                             "since the last sync")
    parser.add_argument("--checkpoint-full-every", type=int, default=None,
                        help="cuts between full checkpoint bases; intermediate "
                             "cuts write incremental deltas (1 = always full)")
    parser.add_argument("--checkpoint-keep", type=int, default=None,
                        help="full checkpoint bases retained by checkpoint GC")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore existing checkpoints (and reset the WAL) "
                             "instead of recovering")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the metrics registry (also: REPRO_TELEMETRY=1)")
    parser.add_argument("--trace-file", default=None,
                        help="JSONL span-trace sink (implies --telemetry)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="fraction of root spans to record (0..1)")
    parser.add_argument("--provenance-depth", type=int, default=None,
                        help="enable row provenance with this per-view history "
                             "depth (serves the explain-row operation)")
    parser.add_argument("--audit", action="store_true",
                        help="enable the online view auditor (sampled reference "
                             "re-derivation against live views)")
    parser.add_argument("--audit-every", type=int, default=None,
                        help="audit once per this many ingested events")
    parser.add_argument("--audit-sample", type=int, default=None,
                        help="view rows re-derived per audit pass")
    parser.add_argument("--audit-fail-fast", action="store_true",
                        help="raise (failing the ingest) on the first divergence")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve continuously fresh materialized views.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve one workload query over TCP")
    _add_engine_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7641, help="0 picks a free port")

    replay = sub.add_parser("replay", help="replay a .csv/.jsonl event stream offline")
    replay.add_argument("source", help="event stream file (.csv or .jsonl)")
    _add_engine_arguments(replay)
    replay.add_argument("--ingest-batch", type=int, default=DEFAULT_INGEST_BATCH,
                        help="events per atomic ingest batch")
    replay.add_argument("--checkpoint-every", type=int, default=None,
                        help="checkpoint after this many applied events")
    replay.add_argument("--limit", type=int, default=10,
                        help="rows to print per view")

    sub.add_parser("list", help="list the servable workload queries")
    return parser


def build_service(
    args: argparse.Namespace,
) -> tuple[ViewService, dict | None]:
    """Compile the query, build the engine and (maybe) recover durable state.

    Returns the service plus the recovery report (``None`` under ``--fresh``).
    Static tables are loaded only when nothing was restored: a restored
    engine state already contains them, and loading twice would double their
    multiplicity — :meth:`ViewService.recover` invokes the loader callback
    exactly on that cold-start path.
    """
    spec = workload(args.query)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    telemetry = None
    if getattr(args, "telemetry", False) or getattr(args, "trace_file", None):
        from repro.telemetry import configure

        telemetry = configure(
            enabled=True,
            trace_file=args.trace_file,
            trace_sample=args.trace_sample,
        )
    engine = engine_for_mode(
        program,
        mode=args.engine,
        batch_size=args.batch_size,
        partitions=args.partitions,
        backend=args.backend,
        telemetry=telemetry,
    )
    service_kwargs = {}
    if getattr(args, "checkpoint_full_every", None) is not None:
        service_kwargs["checkpoint_full_every"] = args.checkpoint_full_every
    if getattr(args, "checkpoint_keep", None) is not None:
        service_kwargs["checkpoint_keep"] = args.checkpoint_keep
    service = ViewService(
        engine,
        checkpoint_dir=args.checkpoint_dir,
        telemetry=telemetry,
        wal_dir=getattr(args, "wal_dir", None),
        fsync_every=getattr(args, "fsync_every", 1),
        fsync_interval_ms=getattr(args, "fsync_interval_ms", None),
        **service_kwargs,
    )
    # Auditing must attach before any data reaches the engine (the mirror
    # has to see every static row and event); recovery afterwards reloads the
    # mirror from the checkpoint's audit state.
    if getattr(args, "audit", False):
        service.enable_audit(
            check_every=args.audit_every,
            sample_rows=args.audit_sample,
            fail_fast=args.audit_fail_fast,
        )

    def _load_statics() -> None:
        for relation, rows in spec.static_tables().items():
            if relation in program.static_relations:
                service.load_static(relation, rows)

    recovery = None
    if args.fresh:
        if service.wal is not None:
            service.wal.reset()
        _load_statics()
    else:
        recovery = service.recover(load_statics=_load_statics)
    if getattr(args, "provenance_depth", None) is not None:
        service.enable_provenance(depth=args.provenance_depth)
    return service, recovery


def describe_recovery(recovery: dict | None) -> str | None:
    """A one-line human summary of a recovery report (``None``: nothing to say)."""
    if recovery is None:
        return None
    replayed = recovery["wal_batches_replayed"]
    if recovery["restored"]:
        message = f"restored checkpoint at version {recovery['version']}"
        if replayed:
            message += f" (including {replayed} replayed WAL batches)"
        return message
    if replayed:
        return (
            f"replayed {replayed} WAL batches; "
            f"recovered to version {recovery['version']}"
        )
    return None


async def _serve(service: ViewService, host: str, port: int) -> None:
    server = ViewServer(service, host, port)
    await server.start()
    print(f"serving {sorted(service.program.roots)} on {server.host}:{server.port} "
          f"(version {service.version})", flush=True)
    await server.serve_until_stopped()
    print("server stopped", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name, spec in sorted(all_workloads().items()):
            print(f"{name:8s} {spec.family:8s} {spec.description}")
        return 0

    if args.command == "serve":
        service, recovery = build_service(args)
        recovered = describe_recovery(recovery)
        if recovered is not None:
            print(recovered, flush=True)
        try:
            asyncio.run(_serve(service, args.host, args.port))
        except KeyboardInterrupt:
            pass
        finally:
            service.close()
        return 0

    if args.command == "replay":
        service, recovery = build_service(args)
        try:
            recovered = describe_recovery(recovery)
            if recovered is not None:
                print(recovered)
            applied = service.replay(
                args.source,
                batch_size=args.ingest_batch,
                checkpoint_every=args.checkpoint_every,
            )
            print(f"replayed {applied} events; service version {service.version} "
                  f"({args.engine} engine)")
            for view in service.views():
                snapshot = service.query(view)
                print(f"view {view} [{', '.join(snapshot.columns)}]: "
                      f"{len(snapshot.entries)} rows")
                shown = sorted(snapshot.entries.items(), key=lambda kv: repr(kv[0]))
                for key, value in shown[: args.limit]:
                    print(f"  {key!r} -> {value!r}")
                if len(shown) > args.limit:
                    print(f"  ... {len(shown) - args.limit} more")
            if service.checkpoints is not None:
                info = service.checkpoint()
                print(f"checkpoint saved: {info.path} (version {info.version})")
        finally:
            service.close()
        return 0

    return 1


if __name__ == "__main__":
    raise SystemExit(main())
