"""Checkpoint/restore: durable service state on disk.

A checkpoint captures, at one event offset, everything a restarted service
needs to serve bit-identical views without replaying the whole stream:

* the engine state from
  :meth:`~repro.runtime.protocol.EngineProtocol.checkpoint_state` — every
  map's entries, every stored base relation (including loaded static tables)
  and the engine's event count — with exact runtime value types;
* the service **version** (event offset), so a replay source knows how many
  leading events to skip;
* the running stream statistics, so reporting continues seamlessly.

Files are pickled payloads named ``checkpoint-<offset>.ckpt`` inside the
checkpoint directory, written atomically (temp file + fsync + rename, then a
directory fsync) so a crash mid-write never corrupts the latest durable
state; should a file still turn out unreadable (e.g. power loss on a
filesystem that reordered the rename), :meth:`CheckpointStore.load` falls
back to the next older intact checkpoint.  Pickle is the right
trade-off here: checkpoints are private files written and read by the same
library, and restore must reproduce values *bit-identically* (ints vs floats
vs Fractions survive, which JSON cannot guarantee).
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ServiceError

#: Version tag of the checkpoint payload layout.
CHECKPOINT_FORMAT = 1

_FILE_PATTERN = re.compile(r"^checkpoint-(\d+)\.ckpt$")


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of one on-disk checkpoint."""

    path: Path
    version: int


class CheckpointStore:
    """Writes and reads the checkpoints of one service directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- writing ----------------------------------------------------------------
    def save(
        self,
        version: int,
        engine_state: Mapping[str, Any],
        stream_stats: Mapping[str, Any] | None = None,
        audit_state: Mapping[str, Any] | None = None,
    ) -> CheckpointInfo:
        """Persist one checkpoint atomically; returns its metadata.

        ``audit_state`` carries the online auditor's base-relation mirror
        when auditing is enabled, so a restored service keeps auditing
        (checkpoints without it deactivate a live auditor on restore).
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": version,
            "engine_state": dict(engine_state),
            "stream_stats": dict(stream_stats or {}),
        }
        if audit_state is not None:
            payload["audit_state"] = dict(audit_state)
        path = self.directory / f"checkpoint-{version:012d}.ckpt"
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as temp:
                pickle.dump(payload, temp, protocol=pickle.HIGHEST_PROTOCOL)
                temp.flush()
                os.fsync(temp.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._sync_directory()
        return CheckpointInfo(path=path, version=version)

    def _sync_directory(self) -> None:
        """fsync the directory so the rename itself is durable (best effort)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- reading ----------------------------------------------------------------
    def list(self) -> list[CheckpointInfo]:
        """All checkpoints in the directory, oldest first."""
        found: list[CheckpointInfo] = []
        for entry in self.directory.iterdir():
            match = _FILE_PATTERN.match(entry.name)
            if match:
                found.append(CheckpointInfo(path=entry, version=int(match.group(1))))
        return sorted(found, key=lambda info: info.version)

    def latest(self) -> CheckpointInfo | None:
        """The most recent checkpoint, or ``None`` when the directory is empty."""
        checkpoints = self.list()
        return checkpoints[-1] if checkpoints else None

    def load(self, info: CheckpointInfo | None = None) -> dict[str, Any]:
        """Read one checkpoint payload (the newest *intact* one by default).

        With an explicit ``info`` the file must be readable.  Without one, a
        corrupt newest file (e.g. truncated by a crash) is skipped in favour
        of the next older checkpoint rather than failing the restore.
        """
        if info is not None:
            return self._read(info)
        checkpoints = self.list()
        if not checkpoints:
            raise ServiceError(f"no checkpoints in {self.directory}")
        errors: list[str] = []
        for candidate in reversed(checkpoints):
            try:
                return self._read(candidate)
            except ServiceError:
                raise  # explicit format mismatch, not corruption
            except Exception as exc:
                errors.append(f"{candidate.path.name}: {exc}")
        raise ServiceError(
            f"no intact checkpoint in {self.directory} ({'; '.join(errors)})"
        )

    def _read(self, info: CheckpointInfo) -> dict[str, Any]:
        with open(info.path, "rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ServiceError(
                f"checkpoint {info.path} has format {payload.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        return payload
