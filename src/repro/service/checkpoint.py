"""Checkpoint/restore: durable service state on disk.

A **full checkpoint** captures, at one event offset, everything a restarted
service needs to serve bit-identical views without replaying the whole
stream:

* the engine state from
  :meth:`~repro.runtime.protocol.EngineProtocol.checkpoint_state` — every
  map's entries, every stored base relation (including loaded static tables)
  and the engine's event count — with exact runtime value types;
* the service **version** (event offset), so a replay source knows how many
  leading events to skip;
* the running stream statistics, so reporting continues seamlessly.

An **incremental checkpoint** (a *delta*) captures only the per-map dirty
keys since the previous cut, as produced by
:meth:`~repro.runtime.protocol.EngineProtocol.delta_state`.  Deltas form a
linear chain through full-base waypoints: every cut writes a delta (when the
engine supports them) carrying the ``parent`` cut version, and periodically a
cut also writes a full base.  Restore walks the newest *intact* base forward
through the chain (:meth:`CheckpointStore.load_chain`) and the write-ahead
log replays whatever the chain does not reach:

* a corrupt newest base falls back to the next older base — the delta chain
  is shared, so the walk simply passes through the corrupt base's version;
* a corrupt or missing mid-chain delta stops the walk at the last intact
  link; the WAL tail covers the rest;
* :meth:`CheckpointStore.prune` keeps the newest ``keep_bases`` bases and
  deletes older bases and the deltas at or below the oldest kept base, which
  is also the offset the WAL can be pruned to.

Files are pickled payloads — ``checkpoint-<offset>.ckpt`` for bases,
``delta-<offset>.ckpt`` for deltas — written atomically (temp file + fsync +
rename, then a directory fsync) so a crash mid-write never corrupts the
latest durable state.  Pickle is the right trade-off here: checkpoints are
private files written and read by the same library, and restore must
reproduce values *bit-identically* (ints vs floats vs Fractions survive,
which JSON cannot guarantee).
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.durability.faults import maybe_crash
from repro.errors import ServiceError

#: Version tag of the checkpoint payload layout.
CHECKPOINT_FORMAT = 1

#: How many cuts between full bases by default (every cut writes a delta).
DEFAULT_FULL_EVERY = 4

#: How many full bases checkpoint GC retains by default.
DEFAULT_KEEP_BASES = 2

_FILE_PATTERN = re.compile(r"^checkpoint-(\d+)\.ckpt$")
_DELTA_PATTERN = re.compile(r"^delta-(\d+)\.ckpt$")


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of one on-disk checkpoint (full base or delta)."""

    path: Path
    version: int
    kind: str = "full"


class CheckpointStore:
    """Writes and reads the checkpoints of one service directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- writing ----------------------------------------------------------------
    def save(
        self,
        version: int,
        engine_state: Mapping[str, Any],
        stream_stats: Mapping[str, Any] | None = None,
        audit_state: Mapping[str, Any] | None = None,
    ) -> CheckpointInfo:
        """Persist one full checkpoint atomically; returns its metadata.

        ``audit_state`` carries the online auditor's base-relation mirror
        when auditing is enabled, so a restored service keeps auditing
        (checkpoints without it deactivate a live auditor on restore).
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "kind": "full",
            "version": version,
            "engine_state": dict(engine_state),
            "stream_stats": dict(stream_stats or {}),
        }
        if audit_state is not None:
            payload["audit_state"] = dict(audit_state)
        path = self.directory / f"checkpoint-{version:012d}.ckpt"
        self._write_atomic(path, payload, "checkpoint.written", "checkpoint.renamed")
        return CheckpointInfo(path=path, version=version, kind="full")

    def save_delta(
        self,
        version: int,
        parent: int,
        delta_state: Mapping[str, Any],
        stream_stats: Mapping[str, Any] | None = None,
        audit_state: Mapping[str, Any] | None = None,
    ) -> CheckpointInfo:
        """Persist one incremental checkpoint; ``parent`` is the previous cut.

        Restore applies a delta only on top of exactly its parent cut, so a
        missing or corrupt link breaks the chain there instead of producing a
        silently wrong state.
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "kind": "delta",
            "version": version,
            "parent": parent,
            "engine_state": dict(delta_state),
            "stream_stats": dict(stream_stats or {}),
        }
        if audit_state is not None:
            payload["audit_state"] = dict(audit_state)
        path = self.directory / f"delta-{version:012d}.ckpt"
        self._write_atomic(path, payload, "delta.written", "delta.renamed")
        return CheckpointInfo(path=path, version=version, kind="delta")

    def _write_atomic(
        self, path: Path, payload: dict[str, Any], site_written: str, site_renamed: str
    ) -> None:
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as temp:
                pickle.dump(payload, temp, protocol=pickle.HIGHEST_PROTOCOL)
                temp.flush()
                os.fsync(temp.fileno())
            maybe_crash(site_written)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        maybe_crash(site_renamed)
        self._sync_directory()

    def _sync_directory(self) -> None:
        """fsync the directory so the rename itself is durable (best effort)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- reading ----------------------------------------------------------------
    def list(self) -> list[CheckpointInfo]:
        """All full checkpoints in the directory, oldest first."""
        found: list[CheckpointInfo] = []
        for entry in self.directory.iterdir():
            match = _FILE_PATTERN.match(entry.name)
            if match:
                found.append(
                    CheckpointInfo(path=entry, version=int(match.group(1)), kind="full")
                )
        return sorted(found, key=lambda info: info.version)

    def list_deltas(self) -> list[CheckpointInfo]:
        """All incremental checkpoints in the directory, oldest first."""
        found: list[CheckpointInfo] = []
        for entry in self.directory.iterdir():
            match = _DELTA_PATTERN.match(entry.name)
            if match:
                found.append(
                    CheckpointInfo(path=entry, version=int(match.group(1)), kind="delta")
                )
        return sorted(found, key=lambda info: info.version)

    def latest(self) -> CheckpointInfo | None:
        """The most recent full checkpoint, or ``None`` when there is none."""
        checkpoints = self.list()
        return checkpoints[-1] if checkpoints else None

    def load(self, info: CheckpointInfo | None = None) -> dict[str, Any]:
        """Read one full-checkpoint payload (the newest *intact* one by default).

        With an explicit ``info`` the file must be readable.  Without one, a
        corrupt newest file (e.g. truncated by a crash) is skipped in favour
        of the next older checkpoint rather than failing the restore.
        """
        if info is not None:
            return self._read(info)
        checkpoints = self.list()
        if not checkpoints:
            raise ServiceError(f"no checkpoints in {self.directory}")
        errors: list[str] = []
        for candidate in reversed(checkpoints):
            try:
                return self._read(candidate)
            except ServiceError:
                raise  # explicit format mismatch, not corruption
            except Exception as exc:
                errors.append(f"{candidate.path.name}: {exc}")
        raise ServiceError(
            f"no intact checkpoint in {self.directory} ({'; '.join(errors)})"
        )

    def load_chain(self) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """The newest intact base plus the intact delta chain on top of it.

        Returns ``(base payload, [delta payloads in application order])``.
        The walk starts at the base's version and follows ``parent`` links
        upward; a corrupt, missing or mis-parented delta ends the chain there
        (the WAL tail replays the rest).  A corrupt newest base falls back to
        an older one — the shared delta chain walks through the corrupt
        base's version unchanged.
        """
        bases = self.list()
        if not bases:
            raise ServiceError(f"no checkpoints in {self.directory}")
        deltas = {info.version: info for info in self.list_deltas()}
        ordered_versions = sorted(deltas)
        errors: list[str] = []
        for candidate in reversed(bases):
            try:
                base = self._read(candidate)
            except ServiceError:
                raise
            except Exception as exc:
                errors.append(f"{candidate.path.name}: {exc}")
                continue
            chain: list[dict[str, Any]] = []
            current = candidate.version
            for version in ordered_versions:
                if version <= candidate.version:
                    continue
                try:
                    payload = self._read(deltas[version])
                except Exception:
                    break  # corrupt link: stop here, WAL covers the rest
                if payload.get("kind") != "delta" or payload.get("parent") != current:
                    break  # gap or foreign chain: do not guess
                chain.append(payload)
                current = version
            return base, chain
        raise ServiceError(
            f"no intact checkpoint in {self.directory} ({'; '.join(errors)})"
        )

    def _read(self, info: CheckpointInfo) -> dict[str, Any]:
        with open(info.path, "rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ServiceError(
                f"checkpoint {info.path} has format {payload.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        return payload

    # -- garbage collection -------------------------------------------------------
    def prune(self, keep_bases: int = DEFAULT_KEEP_BASES) -> int | None:
        """Drop bases beyond the newest ``keep_bases`` and now-unreachable deltas.

        Deltas at or below the oldest kept base can never be applied again
        (their parents are gone), so they go too.  Returns the oldest kept
        base version — the offset the WAL can safely be pruned to — or None
        when nothing is on disk yet.
        """
        if keep_bases < 1:
            raise ServiceError(f"keep_bases must be >= 1, got {keep_bases}")
        bases = self.list()
        if not bases:
            return None
        kept = bases[-keep_bases:]
        floor = kept[0].version
        removed = False
        for info in bases[:-keep_bases]:
            info.path.unlink(missing_ok=True)
            removed = True
        for info in self.list_deltas():
            if info.version <= floor:
                info.path.unlink(missing_ok=True)
                removed = True
        if removed:
            maybe_crash("checkpoint.pruned")
            self._sync_directory()
        return floor
