"""The serving layer: continuous view serving over any execution engine.

Built on the engine contract (:class:`~repro.runtime.protocol.EngineProtocol`),
this package turns a compiled trigger program into a long-running service:

* :class:`~repro.service.core.ViewService` — live ingestion with
  version-tagged, snapshot-consistent reads;
* :mod:`repro.service.subscriptions` — ordered, exactly-once per-view delta
  notifications with bounded queues;
* :mod:`repro.service.checkpoint` — durable checkpoint/restore of engine
  state and event offset;
* :mod:`repro.service.server` / :mod:`repro.service.client` — an asyncio TCP
  server speaking a JSONL protocol, plus the matching Python client;
* ``python -m repro.service`` — ``serve`` and ``replay`` commands.

See the "Serving layer" section of DESIGN.md for the consistency model, the
wire protocol and the checkpoint format.
"""

from repro.service.checkpoint import CheckpointInfo, CheckpointStore
from repro.service.client import DeltaStream, ServiceClient
from repro.service.core import (
    DEFAULT_INGEST_BATCH,
    ENGINE_MODES,
    IngestResult,
    Snapshot,
    ViewService,
    diff_results,
    engine_for_mode,
    open_source,
)
from repro.service.server import ServerHandle, ViewServer, start_in_thread
from repro.service.subscriptions import (
    DEFAULT_QUEUE_SIZE,
    DeltaNotification,
    Subscription,
    SubscriptionRegistry,
)

__all__ = [
    "CheckpointInfo",
    "CheckpointStore",
    "DEFAULT_INGEST_BATCH",
    "DEFAULT_QUEUE_SIZE",
    "DeltaNotification",
    "DeltaStream",
    "ENGINE_MODES",
    "IngestResult",
    "ServerHandle",
    "ServiceClient",
    "Snapshot",
    "Subscription",
    "SubscriptionRegistry",
    "ViewServer",
    "ViewService",
    "diff_results",
    "engine_for_mode",
    "open_source",
    "start_in_thread",
]
