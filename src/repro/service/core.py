"""The view service: continuous ingestion with snapshot-consistent reads.

:class:`ViewService` owns one engine — any implementation of
:class:`~repro.runtime.protocol.EngineProtocol`: per-event, delta-batched or
hash-partitioned — and turns it into a long-running serving component:

* **versioned ingestion** — events are applied in atomic batches under the
  service lock; the service version is the total event offset, so version
  ``v`` means "exactly the first ``v`` stream events are reflected";
* **snapshot reads** — :meth:`ViewService.query` returns a
  :class:`Snapshot` tagged with the version it reflects; because reads and
  ingest batches serialize on the same lock (and buffered engines are flushed
  before reading), a reader never observes a half-applied batch;
* **delta subscriptions** — registered consumers receive ordered,
  exactly-once ``(key, old, new)`` notifications per view, computed by
  diffing the view around each ingest batch (exact for every engine mode,
  including bulk-unsafe triggers);
* **checkpoint/restore** — the engine state and the event offset persist to a
  :class:`~repro.service.checkpoint.CheckpointStore`; a restarted service
  restores the newest checkpoint and :meth:`ViewService.replay` skips the
  already-applied stream prefix, converging to bit-identical views.

The TCP server in :mod:`repro.service.server` is a thin wire adapter over
this class; everything here also works fully in-process.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace as dataclass_replace
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.compiler.program import MapDeclaration, TriggerProgram
from repro.delta.events import StreamEvent
from repro.durability.faults import maybe_crash
from repro.durability.wal import WriteAheadLog
from repro.errors import AuditError, ServiceError
from repro.exec import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_PARTITIONS,
    BatchedEngine,
    PartitionedEngine,
)
from repro.runtime.engine import IncrementalEngine
from repro.runtime.protocol import EngineProtocol
from repro.service.checkpoint import (
    DEFAULT_FULL_EVERY,
    DEFAULT_KEEP_BASES,
    CheckpointInfo,
    CheckpointStore,
)
from repro.service.subscriptions import (
    DEFAULT_QUEUE_SIZE,
    Subscription,
    SubscriptionRegistry,
)
from repro.streams.adapters import events_from_csv, events_from_jsonl, events_from_rows
from repro.streams.stats import StreamStats

#: Engine modes the service (and its CLI) can host.
ENGINE_MODES = ("incremental", "compiled", "batched", "partitioned")

#: Events per ingest batch when replaying a source through the service.
DEFAULT_INGEST_BATCH = 256

#: Client batch ids remembered in memory for idempotent-retry answers
#: (the WAL-backed index extends this window across restarts).
DEDUP_CACHE_SIZE = 8192


def engine_for_mode(
    program: TriggerProgram,
    mode: str = "incremental",
    batch_size: int | None = None,
    partitions: int | None = None,
    backend: str = "sequential",
    telemetry=None,
) -> EngineProtocol:
    """Build an engine for one of the service's execution modes."""
    if mode == "incremental":
        return IncrementalEngine(program, telemetry=telemetry)
    if mode == "compiled":
        from repro.codegen.engine import CompiledEngine

        return CompiledEngine(program, telemetry=telemetry)
    if mode == "batched":
        return BatchedEngine(
            program,
            DEFAULT_BATCH_SIZE if batch_size is None else batch_size,
            # "sequential"/"process" are the partitioned engine's executor
            # names; the batched engine's axis is scalar-vs-vector, so only
            # "vector" routes through (one --backend flag serves both modes).
            backend="vector" if backend == "vector" else "scalar",
            telemetry=telemetry,
        )
    if mode == "partitioned":
        if backend == "vector":
            raise ServiceError(
                "backend 'vector' belongs to the batched engine "
                "(mode='batched'); partitioned backends are "
                "'sequential' or 'process'"
            )
        return PartitionedEngine(
            program,
            partitions=DEFAULT_PARTITIONS if partitions is None else partitions,
            backend=backend,
            batch_size=batch_size,
            telemetry=telemetry,
        )
    raise ServiceError(f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}")


def open_source(source: Any) -> Iterator[StreamEvent]:
    """Events from any supported stream source.

    Accepts a ``.csv`` / ``.jsonl`` path, any iterable of events (list,
    :class:`~repro.streams.agenda.Agenda`, generator) or a zero-argument
    callable returning one.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        suffix = path.suffix.lower()
        if suffix == ".csv":
            return events_from_csv(path)
        if suffix in (".jsonl", ".ndjson"):
            return events_from_jsonl(path)
        raise ServiceError(
            f"cannot infer stream format of {path}; expected a .csv or .jsonl file"
        )
    if callable(source):
        source = source()
    return iter(source)


@dataclass(frozen=True)
class Snapshot:
    """One consistent read of one view, tagged with the version it reflects."""

    version: int
    view: str
    map_name: str
    columns: tuple[str, ...]
    entries: dict[tuple, Any]

    def rows(self, value_column: str = "value") -> list[dict[str, Any]]:
        """Entries as dictionaries (key columns plus the aggregate value)."""
        return [
            {**dict(zip(self.columns, key)), value_column: value}
            for key, value in self.entries.items()
        ]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one atomic ingest batch.

    ``notifications`` counts the delta notifications actually enqueued to
    subscriber queues (closed or overflowed subscriptions receive nothing).
    ``deduplicated`` marks a retried batch id answered from the dedup index
    instead of being applied a second time.
    """

    count: int
    version: int
    notifications: int = 0
    deduplicated: bool = False


def diff_results(before: Mapping[tuple, Any], after: Mapping[tuple, Any]):
    """Ordered ``(key, old, new)`` changes between two view snapshots.

    Changed and added keys come first (in the after-snapshot's order), then
    deleted keys (in the before-snapshot's order); absent sides are ``None``.
    """
    changes: list[tuple[tuple, Any, Any]] = []
    for key, new in after.items():
        old = before.get(key)
        if old != new:
            changes.append((key, old, new))
    for key, old in before.items():
        if key not in after:
            changes.append((key, old, None))
    return changes


class ViewService:
    """Serves continuously fresh materialized views from one engine."""

    def __init__(
        self,
        engine: EngineProtocol,
        checkpoint_dir: str | Path | None = None,
        telemetry=None,
        wal_dir: str | Path | None = None,
        fsync_every: int | None = 1,
        fsync_interval_ms: float | None = None,
        checkpoint_full_every: int = DEFAULT_FULL_EVERY,
        checkpoint_keep: int = DEFAULT_KEEP_BASES,
    ) -> None:
        if not isinstance(engine, EngineProtocol):
            raise ServiceError(
                f"{type(engine).__name__} does not implement the engine protocol"
            )
        if checkpoint_full_every < 1:
            raise ServiceError(
                f"checkpoint_full_every must be >= 1, got {checkpoint_full_every}"
            )
        self.engine = engine
        self.program: TriggerProgram = engine.program
        self.subscriptions = SubscriptionRegistry()
        self.stream_stats = StreamStats()
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._stream_relations = frozenset(self.program.stream_relations)
        self._publish_hooks: list[Callable[[], None]] = []
        self._lock = threading.RLock()
        self._version = 0
        self._closed = False
        self._failed = False
        self._recovering = False
        self._auditor = None
        self._statics_loaded = 0
        # Incremental-checkpoint chain state: cut counter (full base every
        # checkpoint_full_every-th cut) and the version of the previous cut
        # on disk (the parent of the next delta; None before any cut).
        self.checkpoint_full_every = checkpoint_full_every
        self.checkpoint_keep = checkpoint_keep
        self._cuts = 0
        self._last_cut_version: int | None = None
        self._incremental = (
            checkpoint_full_every > 1 and engine.supports_delta_state()
        )
        # Idempotent-ingest answers for recently seen client batch ids.
        self._dedup: OrderedDict[str, IngestResult] = OrderedDict()
        self._recovery_seconds: float | None = None
        self._wal_replayed_last = 0
        if telemetry is None:
            # Share the engine's telemetry so trigger latency and service
            # staleness land in one registry (one scrape shows both).
            telemetry = getattr(engine, "telemetry", None)
        if telemetry is None:
            from repro.telemetry import current

            telemetry = current()
        self.telemetry = telemetry
        self.wal = (
            WriteAheadLog(
                wal_dir,
                fsync_every=fsync_every,
                fsync_interval_ms=fsync_interval_ms,
                telemetry=telemetry,
            )
            if wal_dir is not None
            else None
        )
        if self._incremental:
            # Track from the very first event so the first delta cut is
            # complete; restore()/recover() re-begin tracking at their cut.
            engine.begin_delta_tracking()
        self._tracer = telemetry.tracer
        if telemetry.enabled:
            registry = telemetry.registry
            self._staleness_hist = registry.histogram(
                "repro_service_staleness_seconds",
                help="Ingest-to-visible latency per atomic batch (apply + diff + publish)",
            )
            from repro.telemetry import COUNT_BOUNDS

            self._ingest_batch_hist = registry.histogram(
                "repro_service_ingest_batch_events",
                help="Events per ingest batch",
                bounds=COUNT_BOUNDS,
            )
            registry.add_collector(self._collect_telemetry)
        else:
            self._staleness_hist = None
            self._ingest_batch_hist = None

    def _collect_telemetry(self, registry) -> None:
        registry.gauge("repro_service_version", help="Applied event offset").set(
            self._version
        )
        registry.gauge(
            "repro_service_recovering", help="1 while recovery blocks reads"
        ).set(1 if self._recovering else 0)
        if self._recovery_seconds is not None:
            registry.gauge(
                "repro_service_recovery_seconds",
                help="Wall time of the last restore (chain + WAL tail)",
            ).set(self._recovery_seconds)
        registry.counter(
            "repro_service_subscription_overflows_total",
            help="Subscriptions closed by queue overflow",
        ).value = self.subscriptions.overflows
        for view, subscribers in self.subscriptions.stats().items():
            labels = {"view": view}
            registry.gauge(
                "repro_service_subscription_depth",
                labels,
                help="Pending notifications across a view's subscribers",
            ).set(sum(s["pending"] for s in subscribers))
            registry.gauge(
                "repro_service_subscription_high_watermark",
                labels,
                help="Deepest queue ever seen for a view",
            ).set(max((s["high_watermark"] for s in subscribers), default=0))
            registry.gauge(
                "repro_service_subscription_max_delivery_age_seconds",
                labels,
                help="Oldest last-drain age across a view's subscribers",
            ).set(
                max(
                    (s["last_delivery_age_seconds"] or 0.0 for s in subscribers),
                    default=0.0,
                )
            )

    # -- identity --------------------------------------------------------------
    @property
    def version(self) -> int:
        """The event offset: how many stream events the views reflect."""
        with self._lock:
            return self._version

    def views(self) -> tuple[str, ...]:
        """The root query names this service can serve."""
        return tuple(sorted(self.program.roots))

    def _declaration(self, name: str | None) -> MapDeclaration:
        program = self.program
        if name is None or name in program.roots:
            return program.root_map(name)
        decl = program.maps.get(name)
        if decl is None:
            raise ServiceError(
                f"unknown view {name!r}; available: {sorted(program.roots)}"
            )
        return decl

    def _canonical_view(self, name: str | None) -> str:
        if name is None:
            roots = sorted(self.program.roots)
            if len(roots) != 1:
                raise ServiceError(f"service has {len(roots)} views; specify one of {roots}")
            return roots[0]
        self._declaration(name)  # validates
        return name

    # -- data loading ----------------------------------------------------------
    def load_static(
        self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Load a static relation before (or between) ingest batches."""
        with self._lock:
            if self._auditor is not None:
                rows = list(rows)
                loaded = self.engine.load_static(relation, rows)
                self._auditor.observe_static(relation, rows)
                return loaded
            self._statics_loaded += 1
            return self.engine.load_static(relation, rows)

    # -- correctness observability ----------------------------------------------
    def enable_audit(
        self,
        views: Sequence[str] | None = None,
        check_every: int | None = None,
        sample_rows: int | None = None,
        seed: int = 0,
        fail_fast: bool = False,
    ):
        """Attach an online :class:`~repro.inspect.auditor.ViewAuditor`.

        Must run before any data reaches the engine — the auditor mirrors
        base relations as they stream in, so statics loaded or events
        ingested earlier would be missing from its reference.  (Restoring a
        checkpoint afterwards is fine: :meth:`restore` reloads the mirror
        from the checkpoint's audit state, or deactivates the auditor when
        the checkpoint predates auditing.)  Returns the auditor.
        """
        from repro.inspect.auditor import (
            DEFAULT_CHECK_EVERY,
            DEFAULT_SAMPLE_ROWS,
            ViewAuditor,
        )

        with self._lock:
            self._require_open()
            if self._version > 0 or self._statics_loaded > 0:
                raise ServiceError(
                    "enable_audit must run before statics are loaded or events "
                    "ingested; the auditor cannot reconstruct data it never saw"
                )
            registry = self.telemetry.registry if self.telemetry.enabled else None
            self._auditor = ViewAuditor(
                self.program,
                views=views,
                check_every=DEFAULT_CHECK_EVERY if check_every is None else check_every,
                sample_rows=DEFAULT_SAMPLE_ROWS if sample_rows is None else sample_rows,
                seed=seed,
                fail_fast=fail_fast,
                registry=registry,
            )
            return self._auditor

    @property
    def auditor(self):
        return self._auditor

    def audit_now(self):
        """Force an audit pass immediately (regardless of cadence)."""
        with self._lock:
            self._require_open()
            if self._auditor is None:
                raise ServiceError("auditing is not enabled on this service")
            self.engine.flush()
            try:
                return self._auditor.check(self.engine, self._version)
            except AuditError:
                self._failed = True
                raise

    def enable_provenance(
        self, depth: int | None = None, views: Sequence[str] | None = None
    ) -> None:
        """Enable row-provenance rings on the owned engine."""
        with self._lock:
            self._require_open()
            self.engine.enable_provenance(depth=depth, views=list(views) if views else None)

    def explain_row(
        self, view: str | None = None, key: Sequence[Any] | None = None
    ) -> dict[str, Any]:
        """Recent mutation history of one view row, stamped with the version."""
        with self._lock:
            self._require_open()
            self.engine.flush()
            report = self.engine.explain_row(view, key)
            report["version"] = self._version
            return report

    # -- ingestion -------------------------------------------------------------
    def _validate_batch(self, events: Sequence[StreamEvent]) -> None:
        """Reject the whole batch before any event mutates engine state."""
        schemas = self.program.schemas
        for index, event in enumerate(events):
            if not isinstance(event, StreamEvent):
                raise ServiceError(
                    f"events[{index}] is {type(event).__name__}, not a StreamEvent"
                )
            if event.relation not in self._stream_relations:
                raise ServiceError(
                    f"events[{index}]: relation {event.relation!r} is not a stream "
                    f"relation of this program "
                    f"(streams: {sorted(self._stream_relations)})"
                )
            arity = len(schemas[event.relation])
            if len(event.values) != arity:
                raise ServiceError(
                    f"events[{index}]: {event.relation} expects {arity} values, "
                    f"got {len(event.values)}"
                )

    def _remember_batch(self, batch_id: str, result: IngestResult) -> None:
        """Cache the idempotent-retry answer for a client batch id."""
        self._dedup[batch_id] = result
        self._dedup.move_to_end(batch_id)
        while len(self._dedup) > DEDUP_CACHE_SIZE:
            self._dedup.popitem(last=False)

    def _deduplicate(self, batch_id: str) -> IngestResult | None:
        """The original result of an already-applied batch id, if known.

        The in-memory cache answers retries against a live server; the
        WAL-backed index extends the window across restarts to everything in
        the log's retained segments.
        """
        cached = self._dedup.get(batch_id)
        if cached is not None:
            self._dedup.move_to_end(batch_id)
            return cached
        if self.wal is not None:
            seen = self.wal.seen_batch(batch_id)
            if seen is not None:
                count, version = seen
                result = IngestResult(
                    count=count, version=version, notifications=0, deduplicated=True
                )
                self._remember_batch(batch_id, result)
                return result
        return None

    def ingest(
        self, events: Iterable[StreamEvent], batch_id: str | None = None
    ) -> IngestResult:
        """Apply one batch of events atomically and publish the deltas.

        Readers either see the state before the whole batch or after it —
        never in between — and the version advances by the batch size.  The
        batch is validated up front so a malformed event rejects it as a whole
        without touching engine state; should the engine itself still fail
        mid-batch, the service marks itself failed and refuses further
        operations (:meth:`restore` from a checkpoint recovers it) rather
        than serving state that no longer matches any version.

        With a write-ahead log attached, the batch is logged *before* it
        touches engine state (the write-ahead invariant: the log is always at
        or ahead of memory), so recovery replays exactly the accepted
        batches.  A client-supplied ``batch_id`` makes the call idempotent:
        a retried id is answered with the original result — deduplicated
        against the in-memory cache and the WAL — instead of double-applied.
        """
        events = list(events)
        tracer = self._tracer
        started = perf_counter()
        with tracer.span("service.ingest", {"events": len(events)}):
            with self._lock:
                self._require_open()
                if batch_id is not None:
                    previous = self._deduplicate(batch_id)
                    if previous is not None:
                        return dataclass_replace(previous, deduplicated=True)
                with tracer.span("service.validate"):
                    self._validate_batch(events)
                if self.wal is not None:
                    self.wal.append(self._version, events, batch_id)
                subscribed = self.subscriptions.subscribed_views()
                before = {view: self.engine.result_dict(view) for view in subscribed}
                try:
                    with tracer.span("service.apply"):
                        count = self.engine.apply_many(events)
                        self.engine.flush()
                except BaseException:
                    self._failed = True
                    raise
                self._version += count
                for event in events:
                    self.stream_stats.record(event)
                auditor = self._auditor
                if auditor is not None and auditor.active:
                    auditor.record(events)
                    try:
                        auditor.maybe_check(self.engine, self._version)
                    except AuditError:
                        # The incremental state provably diverged from the
                        # reference: stop serving it (restore() recovers).
                        self._failed = True
                        raise
                notifications = 0
                with tracer.span("service.publish"):
                    for view in subscribed:
                        changes = diff_results(
                            before[view], self.engine.result_dict(view)
                        )
                        if changes:
                            notifications += self.subscriptions.publish(
                                view, self._version, changes
                            )
                result = IngestResult(
                    count=count, version=self._version, notifications=notifications
                )
                if batch_id is not None:
                    self._remember_batch(batch_id, result)
                staleness_hist = self._staleness_hist
                if staleness_hist is not None and events:
                    # Ingest-to-visible staleness: by here the views reflect the
                    # batch and every subscriber queue holds its deltas.
                    staleness_hist.observe(perf_counter() - started)
                    self._ingest_batch_hist.observe(len(events))
        if notifications:
            for hook in list(self._publish_hooks):
                hook()
        return result

    def ingest_rows(
        self,
        relation: str,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]],
        columns: Sequence[str] | None = None,
        sign: int = 1,
    ) -> IngestResult:
        """Ingest plain rows as insert (or delete) events for one relation."""
        return self.ingest(events_from_rows(relation, rows, columns=columns, sign=sign))

    def replay(
        self,
        source: Any,
        batch_size: int = DEFAULT_INGEST_BATCH,
        checkpoint_every: int | None = None,
    ) -> int:
        """Run the ingestion loop over a stream source until it is exhausted.

        The first ``version`` events of the source are skipped — they are
        already reflected (the restart path: restore a checkpoint, then replay
        the same stream).  ``checkpoint_every`` takes a checkpoint after that
        many newly applied events.  Returns the number of events applied.
        """
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ServiceError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
        skip = self.version
        applied = 0
        since_checkpoint = 0
        batch: list[StreamEvent] = []

        def flush_batch() -> None:
            nonlocal applied, since_checkpoint
            if not batch:
                return
            applied += self.ingest(batch).count
            since_checkpoint += len(batch)
            batch.clear()
            if checkpoint_every is not None and since_checkpoint >= checkpoint_every:
                self.checkpoint()
                since_checkpoint = 0

        for event in open_source(source):
            if skip > 0:
                skip -= 1
                continue
            batch.append(event)
            if len(batch) >= batch_size:
                flush_batch()
        flush_batch()
        return applied

    # -- snapshot reads ---------------------------------------------------------
    def query(self, name: str | None = None) -> Snapshot:
        """A version-tagged, snapshot-consistent read of one view."""
        started = perf_counter()
        with self._tracer.span("service.query", {"view": name}):
            with self._lock:
                self._require_open()
                view = self._canonical_view(name)  # friendly multi-root error first
                decl = self._declaration(view)
                self.engine.flush()
                snapshot = Snapshot(
                    version=self._version,
                    view=view,
                    map_name=decl.name,
                    columns=decl.keys,
                    entries=self.engine.result_dict(view),
                )
        if self.telemetry.enabled:
            self.telemetry.registry.histogram(
                "repro_service_query_latency_seconds",
                {"view": snapshot.view},
                help="Snapshot query latency per view",
            ).observe(perf_counter() - started)
        return snapshot

    # -- subscriptions ----------------------------------------------------------
    def subscribe(
        self,
        name: str | None = None,
        maxlen: int = DEFAULT_QUEUE_SIZE,
        policy: str = "close",
    ) -> Subscription:
        """Register a consumer for one view's future deltas.

        ``policy`` picks the queue-overflow behaviour: ``close`` (default)
        closes the subscription with an overflow mark, ``coalesce`` collapses
        backpressured changes into net per-key deltas and stays subscribed.
        """
        with self._lock:
            self._require_open()
            return self.subscriptions.subscribe(
                self._canonical_view(name), maxlen, policy
            )

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a subscription (pending notifications are discarded)."""
        self.subscriptions.unsubscribe(subscription)

    def add_publish_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired after an ingest batch published deltas.

        Hooks run on the ingesting thread, outside the service lock, and must
        be cheap and thread-safe.  The TCP server uses one to schedule
        subscriber pumps when an in-process :meth:`ingest`/:meth:`replay`
        publishes notifications that no wire request would otherwise flush.
        """
        with self._lock:
            if hook not in self._publish_hooks:
                self._publish_hooks.append(hook)

    def remove_publish_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a previously added publication hook."""
        with self._lock:
            if hook in self._publish_hooks:
                self._publish_hooks.remove(hook)

    # -- checkpoint / restore ----------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        """Cut one checkpoint; returns the newest file written at this cut.

        With incremental checkpoints active (the engine supports delta
        states and ``checkpoint_full_every > 1``), every cut writes a delta
        of the dirty keys since the previous cut, and every
        ``checkpoint_full_every``-th cut *also* writes a full base — the
        chain stays linear through base waypoints, so restore can fall past
        a corrupt base without losing the deltas above it.  Full cuts also
        garbage-collect: old bases and unreachable deltas are pruned, and
        the WAL (when attached) is synced, rotated at the cut and pruned to
        the oldest kept base.
        """
        with self._lock:
            self._require_open()
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
            self.engine.flush()
            version = self._version
            if self.wal is not None:
                # A checkpoint must never claim an offset the log has not
                # durably reached: sync, then seal the segment at the cut.
                self.wal.sync()
                self.wal.rotate()
            auditor = self._auditor
            audit_state = (
                auditor.state() if auditor is not None and auditor.active else None
            )
            stream_stats = self.stream_stats.as_dict()
            parent = self._last_cut_version
            full_due = not self._incremental or self._cuts % self.checkpoint_full_every == 0
            info: CheckpointInfo | None = None
            if self._incremental and parent is not None and parent < version:
                info = self.checkpoints.save_delta(
                    version,
                    parent,
                    self.engine.delta_state(),
                    stream_stats,
                    audit_state=audit_state,
                )
            elif self._incremental:
                # No parent cut on disk (or nothing new): drain the dirty
                # sets anyway so the next delta starts at this cut.
                self.engine.delta_state()
            if full_due or info is None:
                info = self.checkpoints.save(
                    version,
                    self.engine.checkpoint_state(),
                    stream_stats,
                    audit_state=audit_state,
                )
                floor = self.checkpoints.prune(self.checkpoint_keep)
                if self.wal is not None and floor is not None:
                    self.wal.prune(floor)
            self._cuts += 1
            self._last_cut_version = version
            return info

    def restore(self) -> int | None:
        """Rebuild state from disk, if any; returns the caught-up version.

        Three stages, each covering what the previous one misses: the newest
        intact full base, the intact delta chain on top of it, and — when a
        write-ahead log is attached — an idempotent replay of the WAL tail
        past the last restored cut.  Also the recovery path after a mid-batch
        engine failure: restoring replaces the (possibly inconsistent) engine
        state wholesale and clears the failed mark.  Live subscriptions are
        closed — the version may have jumped backwards, so delivering further
        deltas would break the exactly-once contract; consumers resubscribe
        with a fresh snapshot, exactly as after an overflow.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
            started = perf_counter()
            version: int | None = None
            if self.checkpoints.latest() is not None:
                base, chain = self.checkpoints.load_chain()
                self.engine.restore_state(base["engine_state"])
                for delta in chain:
                    self.engine.apply_delta_state(delta["engine_state"])
                tip = chain[-1] if chain else base
                self._version = int(tip["version"])
                stats = tip.get("stream_stats") or {}
                self.stream_stats = StreamStats(
                    total=stats.get("total", 0),
                    inserts=stats.get("inserts", 0),
                    deletes=stats.get("deletes", 0),
                    per_relation=dict(stats.get("per_relation", {})),
                )
                if self._auditor is not None:
                    self._auditor.restore(tip.get("audit_state"))
                self._last_cut_version = self._version
                version = self._version
            maybe_crash("recovery.restored")
            if self._incremental:
                # Changes at or below the restored cut are on disk; the next
                # delta must cover exactly what follows (including any WAL
                # tail replayed next).
                self.engine.begin_delta_tracking()
            if self.wal is not None and version is not None:
                self._replay_wal_tail()
                version = self._version
                maybe_crash("recovery.replayed")
            self._recovery_seconds = perf_counter() - started
            self.subscriptions.close_all()
            self._failed = False
        # Let the server pump the close marks to wire subscribers promptly.
        for hook in list(self._publish_hooks):
            hook()
        return version

    def _replay_wal_tail(self) -> int:
        """Apply every logged batch past the current version; returns the count.

        Replay is idempotent by offset: records at or below the restored cut
        are skipped inside the log, and each applied record fast-forwards the
        version to its end offset, so replaying after a crash *during* replay
        converges to the same state.
        """
        wal = self.wal
        auditor = self._auditor
        replayed = 0
        for record in wal.replay(self._version):
            if auditor is not None and auditor.active:
                auditor.record(record.events)
            self.engine.apply_many(record.events)
            for event in record.events:
                self.stream_stats.record(event)
            self._version = record.end
            replayed += 1
        self.engine.flush()
        if wal.end_offset < self._version:
            # The checkpoint chain is newer than the retained log (e.g. a
            # fresh WAL directory next to old checkpoints): everything below
            # the version is on disk already, so the log restarts here.
            wal.align_to(self._version)
        self._wal_replayed_last = replayed
        return replayed

    def recover(self, load_statics: Callable[[], None] | None = None) -> dict[str, Any]:
        """Run the full recovery sequence, refusing reads until caught up.

        Orchestrates restart: restore the newest intact base + delta chain +
        WAL tail when checkpoints exist; otherwise call ``load_statics`` (the
        cold-start path — static tables are not in the log) and replay the
        whole WAL from offset zero.  While recovery runs, queries and ingest
        raise and ``statistics()`` reports ``recovering: true``; once the
        service is bit-identical with the pre-crash tip it atomically resumes
        serving.  Returns a report of what each stage contributed.
        """
        with self._lock:
            self._require_open()
            self._recovering = True
        try:
            started = perf_counter()
            version = (
                self.restore()
                if self.checkpoints is not None and self.checkpoints.latest() is not None
                else None
            )
            if version is None:
                # Cold start: nothing on disk but (possibly) the log.
                if load_statics is not None:
                    load_statics()
                with self._lock:
                    maybe_crash("recovery.restored")
                    if self._incremental:
                        self.engine.begin_delta_tracking()
                    if self.wal is not None:
                        self._replay_wal_tail()
                        maybe_crash("recovery.replayed")
                    self._recovery_seconds = perf_counter() - started
            report = {
                "version": self._version,
                "restored": version is not None,
                "wal_batches_replayed": self._wal_replayed_last,
                "recovery_seconds": perf_counter() - started,
                "wal": self.wal.stats() if self.wal is not None else None,
            }
        finally:
            with self._lock:
                self._recovering = False
        return report

    # -- accounting / lifecycle --------------------------------------------------
    def statistics(self) -> dict[str, object]:
        """Service-level counters plus the owned engine's statistics.

        Unlike reads, this works *during* recovery — reporting
        ``recovering: true`` and the current replay position instead of the
        engine internals — so operators can watch a restart catch up.
        """
        with self._lock:
            if self._recovering:
                stats: dict[str, object] = {
                    "version": self._version,
                    "views": list(self.views()),
                    "recovering": True,
                }
                if self.wal is not None:
                    stats["durability"] = {"wal": self.wal.stats()}
                return stats
            self._require_open()
            self.engine.flush()
            stats = {
                "version": self._version,
                "views": list(self.views()),
                "recovering": False,
                "stream": self.stream_stats.as_dict(),
                "subscriptions": self.subscriptions.stats(),
                "engine": self.engine.statistics(),
            }
            if self.wal is not None or self._cuts:
                durability: dict[str, object] = {
                    "incremental_checkpoints": self._incremental,
                    "cuts": self._cuts,
                    "last_cut_version": self._last_cut_version,
                    "wal_batches_replayed": self._wal_replayed_last,
                }
                if self._recovery_seconds is not None:
                    durability["recovery_seconds"] = self._recovery_seconds
                if self.wal is not None:
                    durability["wal"] = self.wal.stats()
                stats["durability"] = durability
            if self._auditor is not None:
                stats["audit"] = self._auditor.summary()
            return stats

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if self._recovering:
            raise ServiceError(
                "service is recovering; reads and ingest resume once it has "
                "caught up with the write-ahead log"
            )
        if self._failed:
            raise ServiceError(
                "service failed mid-ingest and its state may be inconsistent; "
                "restore() from a checkpoint to recover"
            )

    def close(self) -> None:
        """Release engine resources (syncing the WAL); further operations raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.wal is not None:
                self.wal.close()
            self.engine.close()

    def __enter__(self) -> "ViewService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
