"""The view service: continuous ingestion with snapshot-consistent reads.

:class:`ViewService` owns one engine — any implementation of
:class:`~repro.runtime.protocol.EngineProtocol`: per-event, delta-batched or
hash-partitioned — and turns it into a long-running serving component:

* **versioned ingestion** — events are applied in atomic batches under the
  service lock; the service version is the total event offset, so version
  ``v`` means "exactly the first ``v`` stream events are reflected";
* **snapshot reads** — :meth:`ViewService.query` returns a
  :class:`Snapshot` tagged with the version it reflects; because reads and
  ingest batches serialize on the same lock (and buffered engines are flushed
  before reading), a reader never observes a half-applied batch;
* **delta subscriptions** — registered consumers receive ordered,
  exactly-once ``(key, old, new)`` notifications per view, computed by
  diffing the view around each ingest batch (exact for every engine mode,
  including bulk-unsafe triggers);
* **checkpoint/restore** — the engine state and the event offset persist to a
  :class:`~repro.service.checkpoint.CheckpointStore`; a restarted service
  restores the newest checkpoint and :meth:`ViewService.replay` skips the
  already-applied stream prefix, converging to bit-identical views.

The TCP server in :mod:`repro.service.server` is a thin wire adapter over
this class; everything here also works fully in-process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.compiler.program import MapDeclaration, TriggerProgram
from repro.delta.events import StreamEvent
from repro.errors import AuditError, ServiceError
from repro.exec import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_PARTITIONS,
    BatchedEngine,
    PartitionedEngine,
)
from repro.runtime.engine import IncrementalEngine
from repro.runtime.protocol import EngineProtocol
from repro.service.checkpoint import CheckpointInfo, CheckpointStore
from repro.service.subscriptions import (
    DEFAULT_QUEUE_SIZE,
    Subscription,
    SubscriptionRegistry,
)
from repro.streams.adapters import events_from_csv, events_from_jsonl, events_from_rows
from repro.streams.stats import StreamStats

#: Engine modes the service (and its CLI) can host.
ENGINE_MODES = ("incremental", "compiled", "batched", "partitioned")

#: Events per ingest batch when replaying a source through the service.
DEFAULT_INGEST_BATCH = 256


def engine_for_mode(
    program: TriggerProgram,
    mode: str = "incremental",
    batch_size: int | None = None,
    partitions: int | None = None,
    backend: str = "sequential",
    telemetry=None,
) -> EngineProtocol:
    """Build an engine for one of the service's execution modes."""
    if mode == "incremental":
        return IncrementalEngine(program, telemetry=telemetry)
    if mode == "compiled":
        from repro.codegen.engine import CompiledEngine

        return CompiledEngine(program, telemetry=telemetry)
    if mode == "batched":
        return BatchedEngine(
            program,
            DEFAULT_BATCH_SIZE if batch_size is None else batch_size,
            telemetry=telemetry,
        )
    if mode == "partitioned":
        return PartitionedEngine(
            program,
            partitions=DEFAULT_PARTITIONS if partitions is None else partitions,
            backend=backend,
            batch_size=batch_size,
            telemetry=telemetry,
        )
    raise ServiceError(f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}")


def open_source(source: Any) -> Iterator[StreamEvent]:
    """Events from any supported stream source.

    Accepts a ``.csv`` / ``.jsonl`` path, any iterable of events (list,
    :class:`~repro.streams.agenda.Agenda`, generator) or a zero-argument
    callable returning one.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        suffix = path.suffix.lower()
        if suffix == ".csv":
            return events_from_csv(path)
        if suffix in (".jsonl", ".ndjson"):
            return events_from_jsonl(path)
        raise ServiceError(
            f"cannot infer stream format of {path}; expected a .csv or .jsonl file"
        )
    if callable(source):
        source = source()
    return iter(source)


@dataclass(frozen=True)
class Snapshot:
    """One consistent read of one view, tagged with the version it reflects."""

    version: int
    view: str
    map_name: str
    columns: tuple[str, ...]
    entries: dict[tuple, Any]

    def rows(self, value_column: str = "value") -> list[dict[str, Any]]:
        """Entries as dictionaries (key columns plus the aggregate value)."""
        return [
            {**dict(zip(self.columns, key)), value_column: value}
            for key, value in self.entries.items()
        ]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one atomic ingest batch.

    ``notifications`` counts the delta notifications actually enqueued to
    subscriber queues (closed or overflowed subscriptions receive nothing).
    """

    count: int
    version: int
    notifications: int = 0


def diff_results(before: Mapping[tuple, Any], after: Mapping[tuple, Any]):
    """Ordered ``(key, old, new)`` changes between two view snapshots.

    Changed and added keys come first (in the after-snapshot's order), then
    deleted keys (in the before-snapshot's order); absent sides are ``None``.
    """
    changes: list[tuple[tuple, Any, Any]] = []
    for key, new in after.items():
        old = before.get(key)
        if old != new:
            changes.append((key, old, new))
    for key, old in before.items():
        if key not in after:
            changes.append((key, old, None))
    return changes


class ViewService:
    """Serves continuously fresh materialized views from one engine."""

    def __init__(
        self,
        engine: EngineProtocol,
        checkpoint_dir: str | Path | None = None,
        telemetry=None,
    ) -> None:
        if not isinstance(engine, EngineProtocol):
            raise ServiceError(
                f"{type(engine).__name__} does not implement the engine protocol"
            )
        self.engine = engine
        self.program: TriggerProgram = engine.program
        self.subscriptions = SubscriptionRegistry()
        self.stream_stats = StreamStats()
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._stream_relations = frozenset(self.program.stream_relations)
        self._publish_hooks: list[Callable[[], None]] = []
        self._lock = threading.RLock()
        self._version = 0
        self._closed = False
        self._failed = False
        self._auditor = None
        self._statics_loaded = 0
        if telemetry is None:
            # Share the engine's telemetry so trigger latency and service
            # staleness land in one registry (one scrape shows both).
            telemetry = getattr(engine, "telemetry", None)
        if telemetry is None:
            from repro.telemetry import current

            telemetry = current()
        self.telemetry = telemetry
        self._tracer = telemetry.tracer
        if telemetry.enabled:
            registry = telemetry.registry
            self._staleness_hist = registry.histogram(
                "repro_service_staleness_seconds",
                help="Ingest-to-visible latency per atomic batch (apply + diff + publish)",
            )
            from repro.telemetry import COUNT_BOUNDS

            self._ingest_batch_hist = registry.histogram(
                "repro_service_ingest_batch_events",
                help="Events per ingest batch",
                bounds=COUNT_BOUNDS,
            )
            registry.add_collector(self._collect_telemetry)
        else:
            self._staleness_hist = None
            self._ingest_batch_hist = None

    def _collect_telemetry(self, registry) -> None:
        registry.gauge("repro_service_version", help="Applied event offset").set(
            self._version
        )
        registry.counter(
            "repro_service_subscription_overflows_total",
            help="Subscriptions closed by queue overflow",
        ).value = self.subscriptions.overflows
        for view, subscribers in self.subscriptions.stats().items():
            labels = {"view": view}
            registry.gauge(
                "repro_service_subscription_depth",
                labels,
                help="Pending notifications across a view's subscribers",
            ).set(sum(s["pending"] for s in subscribers))
            registry.gauge(
                "repro_service_subscription_high_watermark",
                labels,
                help="Deepest queue ever seen for a view",
            ).set(max((s["high_watermark"] for s in subscribers), default=0))
            registry.gauge(
                "repro_service_subscription_max_delivery_age_seconds",
                labels,
                help="Oldest last-drain age across a view's subscribers",
            ).set(
                max(
                    (s["last_delivery_age_seconds"] or 0.0 for s in subscribers),
                    default=0.0,
                )
            )

    # -- identity --------------------------------------------------------------
    @property
    def version(self) -> int:
        """The event offset: how many stream events the views reflect."""
        with self._lock:
            return self._version

    def views(self) -> tuple[str, ...]:
        """The root query names this service can serve."""
        return tuple(sorted(self.program.roots))

    def _declaration(self, name: str | None) -> MapDeclaration:
        program = self.program
        if name is None or name in program.roots:
            return program.root_map(name)
        decl = program.maps.get(name)
        if decl is None:
            raise ServiceError(
                f"unknown view {name!r}; available: {sorted(program.roots)}"
            )
        return decl

    def _canonical_view(self, name: str | None) -> str:
        if name is None:
            roots = sorted(self.program.roots)
            if len(roots) != 1:
                raise ServiceError(f"service has {len(roots)} views; specify one of {roots}")
            return roots[0]
        self._declaration(name)  # validates
        return name

    # -- data loading ----------------------------------------------------------
    def load_static(
        self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Load a static relation before (or between) ingest batches."""
        with self._lock:
            if self._auditor is not None:
                rows = list(rows)
                loaded = self.engine.load_static(relation, rows)
                self._auditor.observe_static(relation, rows)
                return loaded
            self._statics_loaded += 1
            return self.engine.load_static(relation, rows)

    # -- correctness observability ----------------------------------------------
    def enable_audit(
        self,
        views: Sequence[str] | None = None,
        check_every: int | None = None,
        sample_rows: int | None = None,
        seed: int = 0,
        fail_fast: bool = False,
    ):
        """Attach an online :class:`~repro.inspect.auditor.ViewAuditor`.

        Must run before any data reaches the engine — the auditor mirrors
        base relations as they stream in, so statics loaded or events
        ingested earlier would be missing from its reference.  (Restoring a
        checkpoint afterwards is fine: :meth:`restore` reloads the mirror
        from the checkpoint's audit state, or deactivates the auditor when
        the checkpoint predates auditing.)  Returns the auditor.
        """
        from repro.inspect.auditor import (
            DEFAULT_CHECK_EVERY,
            DEFAULT_SAMPLE_ROWS,
            ViewAuditor,
        )

        with self._lock:
            self._require_open()
            if self._version > 0 or self._statics_loaded > 0:
                raise ServiceError(
                    "enable_audit must run before statics are loaded or events "
                    "ingested; the auditor cannot reconstruct data it never saw"
                )
            registry = self.telemetry.registry if self.telemetry.enabled else None
            self._auditor = ViewAuditor(
                self.program,
                views=views,
                check_every=DEFAULT_CHECK_EVERY if check_every is None else check_every,
                sample_rows=DEFAULT_SAMPLE_ROWS if sample_rows is None else sample_rows,
                seed=seed,
                fail_fast=fail_fast,
                registry=registry,
            )
            return self._auditor

    @property
    def auditor(self):
        return self._auditor

    def audit_now(self):
        """Force an audit pass immediately (regardless of cadence)."""
        with self._lock:
            self._require_open()
            if self._auditor is None:
                raise ServiceError("auditing is not enabled on this service")
            self.engine.flush()
            try:
                return self._auditor.check(self.engine, self._version)
            except AuditError:
                self._failed = True
                raise

    def enable_provenance(
        self, depth: int | None = None, views: Sequence[str] | None = None
    ) -> None:
        """Enable row-provenance rings on the owned engine."""
        with self._lock:
            self._require_open()
            self.engine.enable_provenance(depth=depth, views=list(views) if views else None)

    def explain_row(
        self, view: str | None = None, key: Sequence[Any] | None = None
    ) -> dict[str, Any]:
        """Recent mutation history of one view row, stamped with the version."""
        with self._lock:
            self._require_open()
            self.engine.flush()
            report = self.engine.explain_row(view, key)
            report["version"] = self._version
            return report

    # -- ingestion -------------------------------------------------------------
    def _validate_batch(self, events: Sequence[StreamEvent]) -> None:
        """Reject the whole batch before any event mutates engine state."""
        schemas = self.program.schemas
        for index, event in enumerate(events):
            if not isinstance(event, StreamEvent):
                raise ServiceError(
                    f"events[{index}] is {type(event).__name__}, not a StreamEvent"
                )
            if event.relation not in self._stream_relations:
                raise ServiceError(
                    f"events[{index}]: relation {event.relation!r} is not a stream "
                    f"relation of this program "
                    f"(streams: {sorted(self._stream_relations)})"
                )
            arity = len(schemas[event.relation])
            if len(event.values) != arity:
                raise ServiceError(
                    f"events[{index}]: {event.relation} expects {arity} values, "
                    f"got {len(event.values)}"
                )

    def ingest(self, events: Iterable[StreamEvent]) -> IngestResult:
        """Apply one batch of events atomically and publish the deltas.

        Readers either see the state before the whole batch or after it —
        never in between — and the version advances by the batch size.  The
        batch is validated up front so a malformed event rejects it as a whole
        without touching engine state; should the engine itself still fail
        mid-batch, the service marks itself failed and refuses further
        operations (:meth:`restore` from a checkpoint recovers it) rather
        than serving state that no longer matches any version.
        """
        events = list(events)
        tracer = self._tracer
        started = perf_counter()
        with tracer.span("service.ingest", {"events": len(events)}):
            with self._lock:
                self._require_open()
                with tracer.span("service.validate"):
                    self._validate_batch(events)
                subscribed = self.subscriptions.subscribed_views()
                before = {view: self.engine.result_dict(view) for view in subscribed}
                try:
                    with tracer.span("service.apply"):
                        count = self.engine.apply_many(events)
                        self.engine.flush()
                except BaseException:
                    self._failed = True
                    raise
                self._version += count
                for event in events:
                    self.stream_stats.record(event)
                auditor = self._auditor
                if auditor is not None and auditor.active:
                    auditor.record(events)
                    try:
                        auditor.maybe_check(self.engine, self._version)
                    except AuditError:
                        # The incremental state provably diverged from the
                        # reference: stop serving it (restore() recovers).
                        self._failed = True
                        raise
                notifications = 0
                with tracer.span("service.publish"):
                    for view in subscribed:
                        changes = diff_results(
                            before[view], self.engine.result_dict(view)
                        )
                        if changes:
                            notifications += self.subscriptions.publish(
                                view, self._version, changes
                            )
                result = IngestResult(
                    count=count, version=self._version, notifications=notifications
                )
                staleness_hist = self._staleness_hist
                if staleness_hist is not None and events:
                    # Ingest-to-visible staleness: by here the views reflect the
                    # batch and every subscriber queue holds its deltas.
                    staleness_hist.observe(perf_counter() - started)
                    self._ingest_batch_hist.observe(len(events))
        if notifications:
            for hook in list(self._publish_hooks):
                hook()
        return result

    def ingest_rows(
        self,
        relation: str,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]],
        columns: Sequence[str] | None = None,
        sign: int = 1,
    ) -> IngestResult:
        """Ingest plain rows as insert (or delete) events for one relation."""
        return self.ingest(events_from_rows(relation, rows, columns=columns, sign=sign))

    def replay(
        self,
        source: Any,
        batch_size: int = DEFAULT_INGEST_BATCH,
        checkpoint_every: int | None = None,
    ) -> int:
        """Run the ingestion loop over a stream source until it is exhausted.

        The first ``version`` events of the source are skipped — they are
        already reflected (the restart path: restore a checkpoint, then replay
        the same stream).  ``checkpoint_every`` takes a checkpoint after that
        many newly applied events.  Returns the number of events applied.
        """
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ServiceError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
        skip = self.version
        applied = 0
        since_checkpoint = 0
        batch: list[StreamEvent] = []

        def flush_batch() -> None:
            nonlocal applied, since_checkpoint
            if not batch:
                return
            applied += self.ingest(batch).count
            since_checkpoint += len(batch)
            batch.clear()
            if checkpoint_every is not None and since_checkpoint >= checkpoint_every:
                self.checkpoint()
                since_checkpoint = 0

        for event in open_source(source):
            if skip > 0:
                skip -= 1
                continue
            batch.append(event)
            if len(batch) >= batch_size:
                flush_batch()
        flush_batch()
        return applied

    # -- snapshot reads ---------------------------------------------------------
    def query(self, name: str | None = None) -> Snapshot:
        """A version-tagged, snapshot-consistent read of one view."""
        started = perf_counter()
        with self._tracer.span("service.query", {"view": name}):
            with self._lock:
                self._require_open()
                view = self._canonical_view(name)  # friendly multi-root error first
                decl = self._declaration(view)
                self.engine.flush()
                snapshot = Snapshot(
                    version=self._version,
                    view=view,
                    map_name=decl.name,
                    columns=decl.keys,
                    entries=self.engine.result_dict(view),
                )
        if self.telemetry.enabled:
            self.telemetry.registry.histogram(
                "repro_service_query_latency_seconds",
                {"view": snapshot.view},
                help="Snapshot query latency per view",
            ).observe(perf_counter() - started)
        return snapshot

    # -- subscriptions ----------------------------------------------------------
    def subscribe(
        self, name: str | None = None, maxlen: int = DEFAULT_QUEUE_SIZE
    ) -> Subscription:
        """Register a consumer for one view's future deltas."""
        with self._lock:
            self._require_open()
            return self.subscriptions.subscribe(self._canonical_view(name), maxlen)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a subscription (pending notifications are discarded)."""
        self.subscriptions.unsubscribe(subscription)

    def add_publish_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired after an ingest batch published deltas.

        Hooks run on the ingesting thread, outside the service lock, and must
        be cheap and thread-safe.  The TCP server uses one to schedule
        subscriber pumps when an in-process :meth:`ingest`/:meth:`replay`
        publishes notifications that no wire request would otherwise flush.
        """
        with self._lock:
            if hook not in self._publish_hooks:
                self._publish_hooks.append(hook)

    def remove_publish_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a previously added publication hook."""
        with self._lock:
            if hook in self._publish_hooks:
                self._publish_hooks.remove(hook)

    # -- checkpoint / restore ----------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        """Persist the engine state and event offset; returns the checkpoint."""
        with self._lock:
            self._require_open()
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
            self.engine.flush()
            auditor = self._auditor
            return self.checkpoints.save(
                self._version,
                self.engine.checkpoint_state(),
                self.stream_stats.as_dict(),
                audit_state=(
                    auditor.state()
                    if auditor is not None and auditor.active
                    else None
                ),
            )

    def restore(self) -> int | None:
        """Load the newest intact checkpoint, if any; returns the restored version.

        Also the recovery path after a mid-batch engine failure: restoring
        replaces the (possibly inconsistent) engine state wholesale and
        clears the failed mark.  Live subscriptions are closed — the version
        may have jumped backwards, so delivering further deltas would break
        the exactly-once contract; consumers resubscribe with a fresh
        snapshot, exactly as after an overflow.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self.checkpoints is None:
                raise ServiceError("service was built without a checkpoint directory")
            if self.checkpoints.latest() is None:
                return None
            payload = self.checkpoints.load()
            self.engine.restore_state(payload["engine_state"])
            self._version = int(payload["version"])
            stats = payload.get("stream_stats") or {}
            self.stream_stats = StreamStats(
                total=stats.get("total", 0),
                inserts=stats.get("inserts", 0),
                deletes=stats.get("deletes", 0),
                per_relation=dict(stats.get("per_relation", {})),
            )
            if self._auditor is not None:
                self._auditor.restore(payload.get("audit_state"))
            self.subscriptions.close_all()
            self._failed = False
            version = self._version
        # Let the server pump the close marks to wire subscribers promptly.
        for hook in list(self._publish_hooks):
            hook()
        return version

    # -- accounting / lifecycle --------------------------------------------------
    def statistics(self) -> dict[str, object]:
        """Service-level counters plus the owned engine's statistics."""
        with self._lock:
            self._require_open()
            self.engine.flush()
            stats = {
                "version": self._version,
                "views": list(self.views()),
                "stream": self.stream_stats.as_dict(),
                "subscriptions": self.subscriptions.stats(),
                "engine": self.engine.statistics(),
            }
            if self._auditor is not None:
                stats["audit"] = self._auditor.summary()
            return stats

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if self._failed:
            raise ServiceError(
                "service failed mid-ingest and its state may be inconsistent; "
                "restore() from a checkpoint to recover"
            )

    def close(self) -> None:
        """Release engine resources; further operations raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.engine.close()

    def __enter__(self) -> "ViewService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
