"""Synchronous Python client for the view service's JSONL TCP protocol.

:class:`ServiceClient` is a thin, dependency-free socket client: one
connection, one request line per call, blocking responses.  Query results
come back as the same :class:`~repro.service.core.Snapshot` objects an
in-process :class:`~repro.service.core.ViewService` returns, so application
code can switch between embedded and served modes without changes.

The client is robust against a restarting server: a dropped connection is
re-established transparently with exponential backoff plus jitter, and the
failed request is retried (``retries`` attempts).  Retrying an ingest is
safe because every batch carries a client-supplied id — the server
deduplicates a batch it already applied (acknowledging with
``deduplicated=True``) instead of applying it twice, so a response lost to a
crash between apply and acknowledgement cannot double-count events.  Every
operation also takes a per-call ``timeout`` overriding the client default.

Subscriptions switch a connection into push mode, so use a dedicated client
(:meth:`ServiceClient.subscribe` on a fresh connection) for each subscriber;
:class:`DeltaStream` then iterates the pushed notifications.  Push streams
are *not* transparently resumed — a reconnect cannot replay deltas the dead
connection lost, so the stream closes and the consumer resubscribes with a
fresh snapshot, exactly like the overflow contract.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Iterable, Iterator

from repro.delta.events import StreamEvent
from repro.errors import ServiceError
from repro.service.core import IngestResult, Snapshot
from repro.service.subscriptions import DeltaNotification
from repro.service.wire import (
    decode_entries,
    decode_value,
    dump_line,
    encode_value,
    parse_line,
)
from repro.streams.adapters import event_to_dict

#: Default socket timeout (seconds) for requests and subscription reads.
DEFAULT_TIMEOUT = 30.0

#: Default reconnect-and-retry attempts after a dropped connection.
DEFAULT_RETRIES = 3

#: First reconnect backoff (seconds); doubles per attempt up to the cap.
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_MAX = 2.0


class DeltaStream:
    """An iterator over the delta notifications pushed to one subscription."""

    def __init__(self, client: "ServiceClient", view: str, subscription_id: int):
        self._client = client
        self.view = view
        self.subscription_id = subscription_id
        self.closed = False
        self.overflowed = False

    def __iter__(self) -> Iterator[DeltaNotification]:
        while not self.closed:
            message = self._client._read_message()
            if message is None:
                self.closed = True
                break
            kind = message.get("type")
            if kind == "delta":
                yield DeltaNotification(
                    sequence=message["sequence"],
                    version=message["version"],
                    view=message["view"],
                    key=tuple(decode_value(part) for part in message["key"]),
                    old=decode_value(message.get("old")),
                    new=decode_value(message.get("new")),
                )
            elif kind == "subscription_closed":
                self.closed = True
                self.overflowed = bool(message.get("overflowed"))
            else:
                raise ServiceError(f"unexpected push message {message!r}")

    def take(self, count: int) -> list[DeltaNotification]:
        """Block until ``count`` notifications arrived (or the stream closed)."""
        out: list[DeltaNotification] = []
        if count <= 0:
            return out
        for notification in self:
            out.append(notification)
            if len(out) >= count:
                break
        return out


class ServiceClient:
    """One JSONL TCP connection to a running view server (auto-reconnecting)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._file = None
        self._push_mode = False
        self._closed = False
        self._connect()

    # -- plumbing ---------------------------------------------------------------
    def _connect(self) -> None:
        self._teardown()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        """Drop the current connection quietly (reconnect or close follows)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _read_message(self) -> dict[str, Any] | None:
        line = self._file.readline()
        if not line:
            return None
        return parse_line(line, context="response")

    def _request(
        self,
        payload: dict[str, Any],
        timeout: float | None = None,
        retriable: bool = True,
    ) -> dict[str, Any]:
        """One request/response round trip, reconnecting on socket failure.

        A :class:`ServiceError` the *server* reported is raised immediately —
        the request reached the service and failed there, so a retry would
        just fail again (or, worse, succeed differently).  Only transport
        errors (reset, refused, timeout, half-closed file) trigger the
        reconnect-with-backoff loop.
        """
        if self._closed:
            raise ServiceError("client is closed")
        if self._push_mode:
            raise ServiceError(
                "connection carries a subscription; use a fresh client for requests"
            )
        attempts = self.retries + 1 if retriable else 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                delay = min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)
                time.sleep(delay * (0.5 + random.random()))  # jittered backoff
            try:
                if self._sock is None:
                    self._connect()
                    self.reconnects += 1
                self._sock.settimeout(self.timeout if timeout is None else timeout)
                self._file.write(dump_line(payload))
                self._file.flush()
                response = self._read_message()
                if response is None:
                    raise ConnectionError("server closed the connection")
                if not response.get("ok"):
                    raise ServiceError(
                        response.get("error", f"request {payload!r} failed")
                    )
                return response
            except ServiceError:
                raise
            except (OSError, ValueError) as exc:
                last_error = exc
                self._teardown()
        raise ServiceError(
            f"request {payload.get('op')!r} failed after {attempts} attempt(s): "
            f"{last_error}"
        )

    # -- operations -------------------------------------------------------------
    def ping(self, timeout: float | None = None) -> int:
        """Liveness check; returns the service version."""
        return self._request({"op": "ping"}, timeout=timeout)["version"]

    def ingest(
        self,
        events: Iterable[StreamEvent],
        batch_id: str | None = None,
        timeout: float | None = None,
    ) -> IngestResult:
        """Apply one atomic batch of events; returns count and new version.

        Every batch carries an id (a fresh UUID unless the caller supplies
        one), making retries after a reconnect idempotent: a batch the server
        already applied is acknowledged, not re-applied.
        """
        if batch_id is None:
            batch_id = uuid.uuid4().hex
        response = self._request(
            {
                "op": "ingest",
                "events": [event_to_dict(e) for e in events],
                "batch_id": batch_id,
            },
            timeout=timeout,
        )
        return IngestResult(
            count=response["count"],
            version=response["version"],
            notifications=response.get("notifications", 0),
            deduplicated=bool(response.get("deduplicated", False)),
        )

    def query(self, view: str | None = None, timeout: float | None = None) -> Snapshot:
        """A version-tagged snapshot of one view."""
        response = self._request({"op": "query", "view": view}, timeout=timeout)
        return Snapshot(
            version=response["version"],
            view=response["view"],
            map_name=response["map"],
            columns=tuple(response["columns"]),
            entries=decode_entries(response["rows"]),
        )

    def subscribe(
        self,
        view: str | None = None,
        queue_size: int | None = None,
        policy: str | None = None,
    ) -> DeltaStream:
        """Turn this connection into a delta stream for one view.

        ``policy`` selects the server-side overflow behaviour (``close`` or
        ``coalesce``).  After the ack the socket switches to blocking mode
        (no timeout): an idle subscription waits for the next delta
        indefinitely instead of dying with ``socket.timeout`` after the
        request timeout.
        """
        response = self._request(
            {"op": "subscribe", "view": view, "queue_size": queue_size,
             "policy": policy}
        )
        self._sock.settimeout(None)
        self._push_mode = True
        return DeltaStream(self, response["view"], response["subscription"])

    def statistics(self, timeout: float | None = None) -> dict[str, Any]:
        """Service + engine statistics."""
        return self._request({"op": "stats"}, timeout=timeout)["statistics"]

    def metrics(self, timeout: float | None = None) -> dict[str, Any]:
        """The server's telemetry registry.

        Returns the full response: ``enabled`` (whether telemetry is on),
        ``prometheus`` (text exposition), ``metrics`` (structured snapshot
        with pre-computed histogram quantiles) and ``statistics`` (the
        unified stats schema).
        """
        return self._request({"op": "metrics"}, timeout=timeout)

    def explain(
        self, query: str | None = None, timeout: float | None = None
    ) -> dict[str, Any]:
        """The server's physical-design explain report (``repro.explain/1``).

        Planned kernel shapes for every map and trigger, joined with the
        probe/scan counters the serving engine has actually accumulated.
        """
        return self._request({"op": "explain", "query": query}, timeout=timeout)[
            "report"
        ]

    def explain_row(
        self,
        view: str | None = None,
        key: Iterable[Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Recent provenance history of one view row (or a whole view).

        The server must be running with row provenance enabled (``serve
        --provenance-depth``).  Values decode back to engine types.
        """
        payload: dict[str, Any] = {"op": "explain-row", "view": view}
        if key is not None:
            payload["key"] = [encode_value(part) for part in key]
        report = self._request(payload, timeout=timeout)["report"]
        report["history"] = [
            {
                **entry,
                "key": [decode_value(part) for part in entry["key"]],
                "old": decode_value(entry["old"]),
                "new": decode_value(entry["new"]),
            }
            for entry in report["history"]
        ]
        if report.get("key") is not None:
            report["key"] = [decode_value(part) for part in report["key"]]
        if "current" in report:
            report["current"] = decode_value(report["current"])
        return report

    def checkpoint(self, timeout: float | None = None) -> tuple[int, str]:
        """Persist a checkpoint server-side; returns (version, path)."""
        response = self._request({"op": "checkpoint"}, timeout=timeout)
        return response["version"], response["path"]

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it winds down).

        Never retried: reconnecting to a server that is already winding down
        would only race its listener going away.
        """
        self._request({"op": "shutdown"}, retriable=False)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
