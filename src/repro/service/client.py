"""Synchronous Python client for the view service's JSONL TCP protocol.

:class:`ServiceClient` is a thin, dependency-free socket client: one
connection, one request line per call, blocking responses.  Query results
come back as the same :class:`~repro.service.core.Snapshot` objects an
in-process :class:`~repro.service.core.ViewService` returns, so application
code can switch between embedded and served modes without changes.

Subscriptions switch a connection into push mode, so use a dedicated client
(:meth:`ServiceClient.subscribe` on a fresh connection) for each subscriber;
:class:`DeltaStream` then iterates the pushed notifications.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Iterator

from repro.delta.events import StreamEvent
from repro.errors import ServiceError
from repro.service.core import IngestResult, Snapshot
from repro.service.subscriptions import DeltaNotification
from repro.service.wire import (
    decode_entries,
    decode_value,
    dump_line,
    encode_value,
    parse_line,
)
from repro.streams.adapters import event_to_dict

#: Default socket timeout (seconds) for requests and subscription reads.
DEFAULT_TIMEOUT = 30.0


class DeltaStream:
    """An iterator over the delta notifications pushed to one subscription."""

    def __init__(self, client: "ServiceClient", view: str, subscription_id: int):
        self._client = client
        self.view = view
        self.subscription_id = subscription_id
        self.closed = False
        self.overflowed = False

    def __iter__(self) -> Iterator[DeltaNotification]:
        while not self.closed:
            message = self._client._read_message()
            if message is None:
                self.closed = True
                break
            kind = message.get("type")
            if kind == "delta":
                yield DeltaNotification(
                    sequence=message["sequence"],
                    version=message["version"],
                    view=message["view"],
                    key=tuple(decode_value(part) for part in message["key"]),
                    old=decode_value(message.get("old")),
                    new=decode_value(message.get("new")),
                )
            elif kind == "subscription_closed":
                self.closed = True
                self.overflowed = bool(message.get("overflowed"))
            else:
                raise ServiceError(f"unexpected push message {message!r}")

    def take(self, count: int) -> list[DeltaNotification]:
        """Block until ``count`` notifications arrived (or the stream closed)."""
        out: list[DeltaNotification] = []
        if count <= 0:
            return out
        for notification in self:
            out.append(notification)
            if len(out) >= count:
                break
        return out


class ServiceClient:
    """One JSONL TCP connection to a running view server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ---------------------------------------------------------------
    def _read_message(self) -> dict[str, Any] | None:
        line = self._file.readline()
        if not line:
            return None
        return parse_line(line, context="response")

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._file.write(dump_line(payload))
        self._file.flush()
        response = self._read_message()
        if response is None:
            raise ServiceError("server closed the connection")
        if not response.get("ok"):
            raise ServiceError(response.get("error", f"request {payload!r} failed"))
        return response

    # -- operations -------------------------------------------------------------
    def ping(self) -> int:
        """Liveness check; returns the service version."""
        return self._request({"op": "ping"})["version"]

    def ingest(self, events: Iterable[StreamEvent]) -> IngestResult:
        """Apply one atomic batch of events; returns count and new version."""
        response = self._request(
            {"op": "ingest", "events": [event_to_dict(e) for e in events]}
        )
        return IngestResult(
            count=response["count"],
            version=response["version"],
            notifications=response.get("notifications", 0),
        )

    def query(self, view: str | None = None) -> Snapshot:
        """A version-tagged snapshot of one view."""
        response = self._request({"op": "query", "view": view})
        return Snapshot(
            version=response["version"],
            view=response["view"],
            map_name=response["map"],
            columns=tuple(response["columns"]),
            entries=decode_entries(response["rows"]),
        )

    def subscribe(self, view: str | None = None, queue_size: int | None = None) -> DeltaStream:
        """Turn this connection into a delta stream for one view.

        After the ack the socket switches to blocking mode (no timeout): an
        idle subscription waits for the next delta indefinitely instead of
        dying with ``socket.timeout`` after the request timeout.
        """
        response = self._request(
            {"op": "subscribe", "view": view, "queue_size": queue_size}
        )
        self._sock.settimeout(None)
        return DeltaStream(self, response["view"], response["subscription"])

    def statistics(self) -> dict[str, Any]:
        """Service + engine statistics."""
        return self._request({"op": "stats"})["statistics"]

    def metrics(self) -> dict[str, Any]:
        """The server's telemetry registry.

        Returns the full response: ``enabled`` (whether telemetry is on),
        ``prometheus`` (text exposition), ``metrics`` (structured snapshot
        with pre-computed histogram quantiles) and ``statistics`` (the
        unified stats schema).
        """
        return self._request({"op": "metrics"})

    def explain(self, query: str | None = None) -> dict[str, Any]:
        """The server's physical-design explain report (``repro.explain/1``).

        Planned kernel shapes for every map and trigger, joined with the
        probe/scan counters the serving engine has actually accumulated.
        """
        return self._request({"op": "explain", "query": query})["report"]

    def explain_row(
        self, view: str | None = None, key: Iterable[Any] | None = None
    ) -> dict[str, Any]:
        """Recent provenance history of one view row (or a whole view).

        The server must be running with row provenance enabled (``serve
        --provenance-depth``).  Values decode back to engine types.
        """
        payload: dict[str, Any] = {"op": "explain-row", "view": view}
        if key is not None:
            payload["key"] = [encode_value(part) for part in key]
        report = self._request(payload)["report"]
        report["history"] = [
            {
                **entry,
                "key": [decode_value(part) for part in entry["key"]],
                "old": decode_value(entry["old"]),
                "new": decode_value(entry["new"]),
            }
            for entry in report["history"]
        ]
        if report.get("key") is not None:
            report["key"] = [decode_value(part) for part in report["key"]]
        if "current" in report:
            report["current"] = decode_value(report["current"])
        return report

    def checkpoint(self) -> tuple[int, str]:
        """Persist a checkpoint server-side; returns (version, path)."""
        response = self._request({"op": "checkpoint"})
        return response["version"], response["path"]

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it winds down)."""
        self._request({"op": "shutdown"})

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
