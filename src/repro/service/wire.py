"""The JSONL wire format shared by the service server and client.

Every message is one JSON object per ``\\n``-terminated line.  Requests carry
an ``op`` field; responses carry ``ok`` (with ``error`` on failure); pushed
subscription messages carry ``type: "delta"``.

Engine values are Python numbers (int, float, :class:`fractions.Fraction`),
strings, booleans or ``None``.  Everything except Fraction maps 1:1 onto
JSON; Fractions are wrapped as ``{"__fraction__": [numerator, denominator]}``
so served snapshots stay bit-identical to in-process reads.  Events reuse the
JSONL adapter representation from :mod:`repro.streams.adapters`
(``{"kind", "relation", "values"}``).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.errors import ServiceError

#: Tag wrapping non-JSON-native rational values.
FRACTION_TAG = "__fraction__"


def encode_value(value: Any) -> Any:
    """A JSON-representable stand-in for one engine value."""
    if isinstance(value, Fraction):
        return {FRACTION_TAG: [value.numerator, value.denominator]}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, Mapping) and FRACTION_TAG in value:
        numerator, denominator = value[FRACTION_TAG]
        return Fraction(numerator, denominator)
    return value


def encode_entries(entries: Mapping[tuple, Any]) -> list[list[Any]]:
    """View contents as ``[[key values...], value]`` rows."""
    return [
        [[encode_value(part) for part in key], encode_value(value)]
        for key, value in entries.items()
    ]


def decode_entries(rows: Iterable[Iterable[Any]]) -> dict[tuple, Any]:
    """Invert :func:`encode_entries`."""
    return {
        tuple(decode_value(part) for part in key): decode_value(value)
        for key, value in rows
    }


def dump_line(payload: Mapping[str, Any]) -> bytes:
    """Serialize one message to a wire line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def parse_line(line: bytes | str, context: str = "message") -> dict[str, Any]:
    """Parse one wire line into a message dictionary."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed {context}: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError(f"malformed {context}: expected an object, got {payload!r}")
    return payload
