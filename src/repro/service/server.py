"""Asyncio TCP server exposing one :class:`ViewService` over the JSONL wire.

Operations (one request line -> one response line):

* ``{"op": "ping"}`` — liveness plus the current version;
* ``{"op": "ingest", "events": [...], "batch_id": id?}`` — apply one atomic
  batch; a client-supplied ``batch_id`` makes the ingest idempotent (a retry
  of an already-applied batch is acknowledged with ``deduplicated: true``
  instead of applied twice);
* ``{"op": "query", "view": name?}`` — version-tagged snapshot of one view;
* ``{"op": "subscribe", "view": name?, "policy": name?}`` — switch this
  connection into push mode: after the ack the server streams
  ``{"type": "delta", ...}`` lines for every output-key change of the view
  (ordered, exactly-once); ``policy`` picks the queue-overflow behaviour
  (``close`` or ``coalesce``);
* ``{"op": "stats"}`` — service + engine statistics;
* ``{"op": "metrics"}`` — the telemetry registry: Prometheus text plus a
  structured JSON snapshot and the unified statistics schema;
* ``{"op": "explain", "query": name?}`` — the physical-design explain report
  (planned kernels joined with this service's observed statistics);
* ``{"op": "explain-row", "view": name?, "key": [...]?}`` — recent provenance
  history of one view row (requires the service to run with provenance on);
* ``{"op": "checkpoint"}`` — persist a checkpoint, returns version and path;
* ``{"op": "shutdown"}`` — stop the server after acknowledging.

Handlers run on one event loop and every mutation goes through the service
lock, so wire clients get the same snapshot-consistency contract as
in-process readers.  Subscription fan-out happens at the end of each ingest
request, before its response is written — a subscriber's delta stream is
therefore never behind an ingest acknowledgement the ingesting client saw.
Deltas published by *in-process* ingestion (``ViewService.ingest`` /
``replay`` called directly on an embedded service) are pumped too: the
server registers a publication hook on the service that schedules a
subscriber pump on the event loop, so TCP subscribers never wait for the
next wire request.

:func:`start_in_thread` runs a server on a background thread with its own
event loop, which is how the examples, benchmarks and tests embed it.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.service.core import ViewService
from repro.service.subscriptions import Subscription
from repro.service.wire import (
    decode_value,
    dump_line,
    encode_entries,
    encode_value,
    parse_line,
)
from repro.streams.adapters import event_from_dict

#: Safety bound for one request line (16 MiB accommodates large ingest batches).
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Unread bytes a subscriber connection may accumulate before it is closed.
MAX_SUBSCRIBER_BACKLOG_BYTES = 8 * 1024 * 1024


class ViewServer:
    """Serves one :class:`ViewService` to JSONL TCP clients."""

    def __init__(self, service: ViewService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subscribers: list[tuple[Subscription, asyncio.StreamWriter]] = []

    # -- lifecycle --------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (resolves the real port)."""
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.service.add_publish_hook(self._on_service_publish)

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`; closes connections on the way out."""
        if self._server is None:
            await self.start()
        assert self._stop is not None
        try:
            await self._stop.wait()
        finally:
            self.service.remove_publish_hook(self._on_service_publish)
            self._server.close()
            await self._server.wait_closed()
            for _, writer in list(self._subscribers):
                writer.close()

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (safe from any handler)."""
        if self._stop is not None:
            self._stop.set()

    # -- service-side publication ------------------------------------------------
    def _on_service_publish(self) -> None:
        """Publication hook: runs on whichever thread ingested in-process.

        Hops onto the server's event loop to pump subscribers, so deltas from
        embedded ``ViewService.ingest``/``replay`` calls reach TCP
        subscribers without waiting for the next wire request.  Wire ingests
        run on the loop thread and pump inline right after dispatch, so for
        them the hook is a no-op instead of a redundant second pump.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            if asyncio.get_running_loop() is loop:
                return
        except RuntimeError:
            pass  # no running loop on this thread: an in-process ingest
        try:
            loop.call_soon_threadsafe(self._schedule_pump)
        except RuntimeError:  # loop shut down between the check and the call
            pass

    def _schedule_pump(self) -> None:
        if self._stop is None or self._stop.is_set():
            return
        asyncio.ensure_future(self._pump_subscribers())

    # -- connection handling ----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        subscription: Subscription | None = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except ValueError:
                    # StreamReader.readline re-raises over-limit lines
                    # (> MAX_LINE_BYTES) as ValueError: drop the connection
                    # cleanly rather than crashing the handler task.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_line(line, context="request")
                    response, subscription = await self._dispatch(
                        request, writer, subscription
                    )
                except ReproError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:
                    # A type-malformed but valid-JSON request (wrong field
                    # types etc.) is a protocol error, not a reason to drop
                    # the connection without a response.
                    response = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                writer.write(dump_line(response))
                await writer.drain()
                if response.get("stopping"):
                    break
        finally:
            if subscription is not None:
                self.service.unsubscribe(subscription)
                self._subscribers = [
                    pair for pair in self._subscribers if pair[0] is not subscription
                ]
            writer.close()

    async def _dispatch(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        subscription: Subscription | None,
    ) -> tuple[dict[str, Any], Subscription | None]:
        op = request.get("op")
        service = self.service

        if op == "ping":
            return {"ok": True, "version": service.version}, subscription

        if op == "ingest":
            events = [
                event_from_dict(payload, context=f"events[{i}]")
                for i, payload in enumerate(request.get("events", ()))
            ]
            result = service.ingest(events, batch_id=request.get("batch_id"))
            await self._pump_subscribers()
            return (
                {
                    "ok": True,
                    "count": result.count,
                    "version": result.version,
                    "notifications": result.notifications,
                    "deduplicated": result.deduplicated,
                },
                subscription,
            )

        if op == "query":
            snapshot = service.query(request.get("view"))
            return (
                {
                    "ok": True,
                    "version": snapshot.version,
                    "view": snapshot.view,
                    "map": snapshot.map_name,
                    "columns": list(snapshot.columns),
                    "rows": encode_entries(snapshot.entries),
                },
                subscription,
            )

        if op == "subscribe":
            if subscription is not None:
                raise ServiceError("connection already carries a subscription")
            kwargs = {}
            if request.get("queue_size") is not None:
                kwargs["maxlen"] = int(request["queue_size"])
            if request.get("policy") is not None:
                kwargs["policy"] = str(request["policy"])
            subscription = service.subscribe(request.get("view"), **kwargs)
            self._subscribers.append((subscription, writer))
            return (
                {
                    "ok": True,
                    "view": subscription.view,
                    "subscription": subscription.subscription_id,
                },
                subscription,
            )

        if op == "stats":
            return {"ok": True, "statistics": service.statistics()}, subscription

        if op == "metrics":
            from repro.telemetry import STATS_SCHEMA, unify_statistics

            telemetry = service.telemetry
            return (
                {
                    "ok": True,
                    "schema": STATS_SCHEMA,
                    "enabled": telemetry.enabled,
                    "prometheus": telemetry.registry.render_prometheus(),
                    "metrics": telemetry.registry.snapshot(),
                    "statistics": unify_statistics(service.statistics()),
                },
                subscription,
            )

        if op == "explain":
            from repro.inspect.explain import build_explain_report

            report = build_explain_report(
                service.program,
                query=request.get("query"),
                statistics=service.statistics().get("engine"),
            )
            return {"ok": True, "report": report}, subscription

        if op == "explain-row":
            key = request.get("key")
            if key is not None:
                key = [decode_value(part) for part in key]
            report = service.explain_row(request.get("view"), key)
            report["history"] = [
                {
                    **entry,
                    "key": [encode_value(part) for part in entry["key"]],
                    "old": encode_value(entry["old"]),
                    "new": encode_value(entry["new"]),
                }
                for entry in report["history"]
            ]
            if "key" in report and report["key"] is not None:
                report["key"] = [encode_value(part) for part in report["key"]]
            if "current" in report:
                report["current"] = encode_value(report["current"])
            return {"ok": True, "report": report}, subscription

        if op == "checkpoint":
            info = service.checkpoint()
            return (
                {"ok": True, "version": info.version, "path": str(info.path)},
                subscription,
            )

        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "stopping": True}, subscription

        raise ServiceError(f"unknown operation {op!r}")

    async def _pump_subscribers(self) -> None:
        """Push pending delta notifications to every subscriber connection.

        Writes are never drained here: draining would let one slow subscriber
        stall the ingest request (and can deadlock a client that ingests
        before reading its own subscription).  Instead the transport buffers,
        and a subscriber whose unread backlog exceeds
        :data:`MAX_SUBSCRIBER_BACKLOG_BYTES` is closed with an overflow mark —
        the same no-silent-loss contract as the bounded queues.
        """
        dead: list[tuple[Subscription, asyncio.StreamWriter]] = []
        tracer = self.service.telemetry.tracer
        with tracer.span("service.deliver", {"subscribers": len(self._subscribers)}):
            await self._pump_subscribers_inner(dead)
        for pair in dead:
            self.service.unsubscribe(pair[0])
            if pair in self._subscribers:
                self._subscribers.remove(pair)

    async def _pump_subscribers_inner(
        self, dead: list[tuple[Subscription, asyncio.StreamWriter]]
    ) -> None:
        for pair in list(self._subscribers):
            subscription, writer = pair
            try:
                for notification in subscription.poll():
                    writer.write(dump_line({"type": "delta", **notification.as_dict()}))
                transport = writer.transport
                overflowed = subscription.overflowed or (
                    transport is not None
                    and transport.get_write_buffer_size() > MAX_SUBSCRIBER_BACKLOG_BYTES
                )
                if subscription.closed or overflowed:
                    writer.write(
                        dump_line(
                            {
                                "type": "subscription_closed",
                                "view": subscription.view,
                                "overflowed": overflowed,
                            }
                        )
                    )
                    dead.append(pair)
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                dead.append(pair)


class ServerHandle:
    """A running background server: address plus a way to stop it."""

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        server: ViewServer,
        holder: dict[str, Any] | None = None,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self._server = server
        self._holder = holder if holder is not None else {}
        self.host = server.host
        self.port = server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread; surfaces a mid-serve crash."""
        try:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        except RuntimeError:  # loop already closed
            pass
        self._thread.join(timeout)
        error = self._holder.get("error")
        if error is not None:
            raise ServiceError(f"server died while serving: {error}") from error


def start_in_thread(
    service: ViewService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Run a :class:`ViewServer` on a daemon thread; returns once it accepts."""
    started = threading.Event()
    holder: dict[str, Any] = {}

    async def main() -> None:
        server = ViewServer(service, host, port)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_stopped()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:
            holder["error"] = exc
            if not started.is_set():  # startup failure (e.g. port in use)
                started.set()
            else:  # mid-serve crash: let threading's excepthook log it too
                raise

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    started.wait()
    if "error" in holder:
        raise ServiceError(f"server failed to start: {holder['error']}")
    return ServerHandle(thread, holder["loop"], holder["server"], holder)
