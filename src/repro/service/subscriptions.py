"""Per-view delta subscriptions: ordered, exactly-once change notifications.

A consumer registers interest in one view and afterwards receives a
:class:`DeltaNotification` for every output-key change that view undergoes —
``old`` value before, ``new`` value after, tagged with the service version
(event offset) whose application produced the change and a per-subscription
sequence number.  Notifications are published once, in order, into a bounded
per-subscriber queue; a consumer that drains the queue therefore observes
every delta exactly once, regardless of the execution mode (per-event,
batched or partitioned) underneath.

Bounded queues make slow consumers safe: when a queue would overflow, the
default ``close`` policy *closes the subscription with an overflow mark*
instead of silently dropping notifications — the consumer can detect the gap
and resubscribe with a fresh snapshot, which is the standard
change-data-capture recovery contract.  The opt-in ``coalesce`` policy keeps
the subscription alive under backpressure instead: overflowing changes
collapse into one net ``old -> new`` delta per output key (``old`` from the
first absorbed change, ``new`` from the last), which the next drain emits
after the queued prefix — per-key ordering survives, only intermediate
values are elided, and a key whose net effect is a no-op is skipped.
Queue lag and delivery counters are reported through
:class:`repro.streams.stats.QueueStats`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import ServiceError
from repro.streams.stats import QueueStats

#: Default bound of a subscription queue.
DEFAULT_QUEUE_SIZE = 65536

#: Queue-overflow policies a subscription can be created with.
OVERFLOW_POLICIES = ("close", "coalesce")


@dataclass(frozen=True)
class DeltaNotification:
    """One output-key change of one view.

    ``old`` / ``new`` are the aggregate values before and after (``None``
    when the key was absent on that side); ``sequence`` is per-subscription,
    contiguous from 0; ``version`` is the service event offset after the
    ingest batch that produced the change.
    """

    sequence: int
    version: int
    view: str
    key: tuple
    old: Any
    new: Any

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serializable representation (the wire format).

        Values go through the wire encoding so rational aggregates
        (:class:`fractions.Fraction`) survive ``json.dumps``.
        """
        from repro.service.wire import encode_value

        return {
            "sequence": self.sequence,
            "version": self.version,
            "view": self.view,
            "key": [encode_value(part) for part in self.key],
            "old": encode_value(self.old),
            "new": encode_value(self.new),
        }


class Subscription:
    """A bounded, ordered queue of delta notifications for one view."""

    def __init__(
        self,
        view: str,
        subscription_id: int,
        maxlen: int = DEFAULT_QUEUE_SIZE,
        policy: str = "close",
    ):
        if maxlen < 1:
            raise ServiceError(f"subscription queue bound must be >= 1, got {maxlen}")
        if policy not in OVERFLOW_POLICIES:
            raise ServiceError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {', '.join(OVERFLOW_POLICIES)}"
            )
        self.view = view
        self.subscription_id = subscription_id
        self.maxlen = maxlen
        self.policy = policy
        self._queue: deque[DeltaNotification] = deque()
        # Net per-key deltas absorbed under backpressure (coalesce policy):
        # key -> [old-from-first, new-from-last, version-of-last], insertion
        # ordered.  Non-empty means everything publishes here until drained,
        # so per-key ordering relative to the queued prefix is preserved.
        self._coalesced: dict[tuple, list[Any]] = {}
        self._coalesced_absorbed = 0
        self._sequence = 0
        self._delivered = 0
        self._closed = False
        self._overflowed = False
        self._high_watermark = 0
        # Monotonic timestamp of the last successful drain (creation counts
        # as one): lets QueueStats report how long a backlog has sat idle.
        self._last_delivery = time.monotonic()

    # -- producer side (registry only) ----------------------------------------
    def _publish(self, version: int, key: tuple, old: Any, new: Any) -> bool:
        """Enqueue one notification; False when nothing was enqueued."""
        if self._closed:
            return False
        if self._coalesced or len(self._queue) >= self.maxlen:
            if self.policy == "coalesce":
                self._coalesce(version, key, old, new)
                return True
            # Never drop silently: mark the gap and stop the subscription.
            self._overflowed = True
            self._closed = True
            return False
        self._queue.append(
            DeltaNotification(self._sequence, version, self.view, key, old, new)
        )
        self._sequence += 1
        if len(self._queue) > self._high_watermark:
            self._high_watermark = len(self._queue)
        return True

    def _coalesce(self, version: int, key: tuple, old: Any, new: Any) -> None:
        """Fold one change into the net per-key delta map."""
        self._coalesced_absorbed += 1
        entry = self._coalesced.get(key)
        if entry is None:
            self._coalesced[key] = [old, new, version]
        else:
            entry[1] = new
            entry[2] = version

    # -- consumer side ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once the subscription stopped receiving new notifications."""
        return self._closed

    @property
    def overflowed(self) -> bool:
        """True when the queue hit its bound and notifications were lost."""
        return self._overflowed

    def __len__(self) -> int:
        return len(self._queue) + len(self._coalesced)

    def poll(self, max_items: int | None = None) -> list[DeltaNotification]:
        """Drain up to ``max_items`` pending notifications, oldest first.

        Under the ``coalesce`` policy, once the queued prefix is drained the
        net per-key deltas absorbed during backpressure are emitted (in
        first-touched order, with fresh contiguous sequence numbers); keys
        whose net effect is a no-op are skipped silently — the consumer never
        saw any of the elided intermediate values.
        """
        out: list[DeltaNotification] = []
        while self._queue and (max_items is None or len(out) < max_items):
            out.append(self._queue.popleft())
        while (
            not self._queue
            and self._coalesced
            and (max_items is None or len(out) < max_items)
        ):
            key, (old, new, version) = next(iter(self._coalesced.items()))
            del self._coalesced[key]
            if old == new and type(old) is type(new):
                continue  # net no-op: nothing the consumer can observe
            out.append(
                DeltaNotification(self._sequence, version, self.view, key, old, new)
            )
            self._sequence += 1
        if out:
            self._delivered += len(out)
            self._last_delivery = time.monotonic()
        return out

    def stats(self) -> QueueStats:
        """Delivery counters, lag, depth high-watermark and drain recency."""
        return QueueStats(
            published=self._sequence,
            delivered=self._delivered,
            pending=len(self),
            overflowed=self._overflowed,
            high_watermark=self._high_watermark,
            last_delivery_age_seconds=time.monotonic() - self._last_delivery,
            coalesced=self._coalesced_absorbed,
        )


class SubscriptionRegistry:
    """All live subscriptions of one service, grouped by view."""

    def __init__(self) -> None:
        self._by_view: dict[str, list[Subscription]] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: Subscriptions ever closed by queue overflow (survives removal).
        self.overflows = 0

    def subscribe(
        self, view: str, maxlen: int = DEFAULT_QUEUE_SIZE, policy: str = "close"
    ) -> Subscription:
        """Register a consumer for one view's deltas."""
        subscription = Subscription(view, next(self._ids), maxlen, policy)
        with self._lock:
            self._by_view.setdefault(view, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription; pending notifications are discarded."""
        subscription._closed = True
        with self._lock:
            bucket = self._by_view.get(subscription.view)
            if bucket and subscription in bucket:
                bucket.remove(subscription)
                if not bucket:
                    del self._by_view[subscription.view]

    def close_all(self) -> None:
        """Close every subscription (already-queued notifications stay drainable).

        Used when the service state jumps backwards (checkpoint restore):
        consumers must resubscribe with a fresh snapshot rather than receive
        deltas that rewind behind what they already observed — the same
        close-and-resubscribe contract as queue overflow.
        """
        with self._lock:
            for subscribers in self._by_view.values():
                for subscription in subscribers:
                    subscription._closed = True
            self._by_view.clear()

    def subscribed_views(self) -> tuple[str, ...]:
        """Views with at least one live subscriber (the diff set for ingest)."""
        with self._lock:
            return tuple(self._by_view)

    def publish(
        self, view: str, version: int, changes: Iterable[tuple[tuple, Any, Any]]
    ) -> int:
        """Fan one batch of ``(key, old, new)`` changes out to a view's subscribers.

        Every live subscriber receives the changes in the given order with
        its own contiguous sequence numbers; returns the number of
        notifications actually enqueued (a closed or overflowed subscription
        enqueues nothing, so the count is a delivery figure, not
        ``len(changes)``).
        """
        with self._lock:
            subscribers = list(self._by_view.get(view, ()))
        count = 0
        overflowed_now = 0
        for key, old, new in changes:
            for subscription in subscribers:
                was_overflowed = subscription._overflowed
                if subscription._publish(version, key, old, new):
                    count += 1
                elif subscription._overflowed and not was_overflowed:
                    overflowed_now += 1
        if overflowed_now:
            with self._lock:
                self.overflows += overflowed_now
        return count

    def stats(self) -> dict[str, list[dict[str, object]]]:
        """Per-view queue statistics (JSON-serializable)."""
        with self._lock:
            return {
                view: [
                    {"id": s.subscription_id, **s.stats().as_dict()}
                    for s in subscribers
                ]
                for view, subscribers in self._by_view.items()
            }
