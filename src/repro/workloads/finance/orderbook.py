"""Synthetic order-book stream (substitute for the paper's MSFT trace).

The paper replays one trading day of MSFT order-book activity: 2.63 million
updates to ``Bids`` and ``Asks`` tables with schema
``(t, id, broker_id, volume, price)``.  That trace is proprietary, so
:class:`OrderBookGenerator` synthesizes a stream with the same structure:

* prices follow a random walk around a mid price, bids below and asks above;
* orders are inserted with random volumes and broker ids;
* a configurable fraction of live orders is later deleted (executions and
  cancellations), so deletions are interleaved with insertions exactly as the
  engines must handle them.

The generator is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.delta.events import DELETE, INSERT, StreamEvent
from repro.errors import WorkloadError
from repro.sql.catalog import Catalog
from repro.streams.agenda import Agenda

#: Order-book schema used by every financial query (paper Section 8).
ORDER_BOOK_SCHEMA = {
    "Bids": ("t", "id", "broker_id", "volume", "price"),
    "Asks": ("t", "id", "broker_id", "volume", "price"),
}


def finance_catalog() -> Catalog:
    """Catalog with the Bids and Asks stream tables."""
    return Catalog.from_dict(ORDER_BOOK_SCHEMA)


class OrderBookGenerator:
    """Deterministic synthetic order-book update stream."""

    def __init__(
        self,
        seed: int = 42,
        brokers: int = 10,
        base_price: float = 10000.0,
        tick: float = 25.0,
        max_volume: int = 500,
        delete_fraction: float = 0.25,
    ) -> None:
        if not 0 <= delete_fraction < 1:
            raise WorkloadError("delete_fraction must be in [0, 1)")
        self.seed = seed
        self.brokers = brokers
        self.base_price = base_price
        self.tick = tick
        self.max_volume = max_volume
        self.delete_fraction = delete_fraction

    def events(self, count: int) -> Iterator[StreamEvent]:
        """Yield ``count`` events (inserts mixed with deletions of live orders)."""
        rng = random.Random(self.seed)
        mid = self.base_price
        live: list[StreamEvent] = []
        order_id = 0
        produced = 0
        timestamp = 0
        while produced < count:
            timestamp += 1
            mid = max(self.tick, mid + rng.choice((-1, 0, 1)) * self.tick)
            if live and rng.random() < self.delete_fraction:
                victim = live.pop(rng.randrange(len(live)))
                yield StreamEvent(victim.relation, victim.values, DELETE)
                produced += 1
                continue
            order_id += 1
            relation = "Bids" if rng.random() < 0.5 else "Asks"
            offset = rng.randint(1, 10) * self.tick
            price = round(mid - offset if relation == "Bids" else mid + offset, 2)
            volume = rng.randint(1, self.max_volume)
            broker = rng.randint(1, self.brokers)
            event = StreamEvent(
                relation, (timestamp, order_id, broker, volume, price), INSERT
            )
            live.append(event)
            yield event
            produced += 1

    def agenda(self, count: int) -> Agenda:
        """The same stream packaged as a replayable agenda."""
        return Agenda(self.events(count))


def order_book_stream(events: int = 2000, seed: int = 42, **kwargs) -> Agenda:
    """Convenience used by the workload registry and the benchmarks."""
    return OrderBookGenerator(seed=seed, **kwargs).agenda(events)
