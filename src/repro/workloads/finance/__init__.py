"""Financial (algorithmic order-book trading) workload."""

from repro.workloads.finance.orderbook import OrderBookGenerator, finance_catalog
from repro.workloads.finance.queries import (
    FINANCE_QUERIES,
    FINANCE_QUERY_FEATURES,
    finance_query,
    workload_specs,
)

__all__ = [
    "OrderBookGenerator",
    "finance_catalog",
    "FINANCE_QUERIES",
    "FINANCE_QUERY_FEATURES",
    "finance_query",
    "workload_specs",
]
