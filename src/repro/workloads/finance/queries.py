"""The six financial queries of the paper (Appendix A.2).

All six are defined in SQL and translated through the regular frontend; the
schemas follow the paper's condensed order-book schema
``(t, id, broker_id, volume, price)``.
"""

from __future__ import annotations

from repro.sql import parse_sql_query
from repro.sql.translate import TranslatedQuery
from repro.workloads.finance.orderbook import finance_catalog, order_book_stream

#: SQL text of every financial query, keyed by the paper's query name.
FINANCE_QUERIES: dict[str, str] = {
    # Axis-crossing finder: bid/ask pairs of the same broker far apart in price.
    "AXF": """
        SELECT b.broker_id, SUM(a.volume - b.volume) AS axfinder
        FROM Bids b, Asks a
        WHERE b.broker_id = a.broker_id
          AND (a.price - b.price > 1000 OR b.price - a.price > 1000)
        GROUP BY b.broker_id
    """,
    # Bids self-join on time: later orders against earlier orders per broker.
    "BSP": """
        SELECT x.broker_id, SUM(x.volume * x.price - y.volume * y.price) AS bsp
        FROM Bids x, Bids y
        WHERE x.broker_id = y.broker_id AND x.t > y.t
        GROUP BY x.broker_id
    """,
    # Bids self-join variance-style product aggregate.
    "BSV": """
        SELECT x.broker_id, SUM(x.volume * x.price * y.volume * y.price * 0.5) AS bsv
        FROM Bids x, Bids y
        WHERE x.broker_id = y.broker_id
        GROUP BY x.broker_id
    """,
    # Monitor spread between the deep ends of both books (two inequality-correlated
    # nested aggregates per side).
    "MST": """
        SELECT b.broker_id, SUM(a.price * a.volume - b.price * b.volume) AS mst
        FROM Bids b, Asks a
        WHERE 0.25 * (SELECT SUM(a1.volume) FROM Asks a1) >
              (SELECT SUM(a2.volume) FROM Asks a2 WHERE a2.price > a.price)
          AND 0.25 * (SELECT SUM(b1.volume) FROM Bids b1) >
              (SELECT SUM(b2.volume) FROM Bids b2 WHERE b2.price > b.price)
        GROUP BY b.broker_id
    """,
    # Price spread between high-volume bids and asks (two uncorrelated nested
    # aggregates).
    "PSP": """
        SELECT SUM(a.price - b.price) AS psp
        FROM Bids b, Asks a
        WHERE b.volume > 0.0001 * (SELECT SUM(b1.volume) FROM Bids b1)
          AND a.volume > 0.0001 * (SELECT SUM(a1.volume) FROM Asks a1)
    """,
    # Volume-weighted average price over the top quartile of the bid book
    # (inequality-correlated nested aggregate).
    "VWAP": """
        SELECT SUM(b1.price * b1.volume) AS vwap
        FROM Bids b1
        WHERE 0.25 * (SELECT SUM(b3.volume) FROM Bids b3) >
              (SELECT SUM(b2.volume) FROM Bids b2 WHERE b2.price > b1.price)
    """,
}

#: Figure-2 style feature annotations (tables/joins, where-clause, group-by, nesting).
FINANCE_QUERY_FEATURES: dict[str, dict[str, object]] = {
    "AXF": {"tables": 2, "join": "equi", "where": "or/range", "group_by": True, "nesting": 0},
    "BSP": {"tables": 2, "join": "self", "where": "range", "group_by": True, "nesting": 0},
    "BSV": {"tables": 2, "join": "self", "where": "equality", "group_by": True, "nesting": 0},
    "MST": {"tables": 2, "join": "cross", "where": "range", "group_by": True, "nesting": 1},
    "PSP": {"tables": 2, "join": "cross", "where": "range", "group_by": False, "nesting": 1},
    "VWAP": {"tables": 1, "join": "none", "where": "range", "group_by": False, "nesting": 1},
}


def finance_query(name: str) -> TranslatedQuery:
    """Parse and translate one financial query by name."""
    sql = FINANCE_QUERIES[name]
    return parse_sql_query(sql, finance_catalog(), name=name)


def workload_specs():
    """Workload registry entries for the financial family."""
    from repro.workloads import WorkloadSpec

    specs = []
    for name, sql in FINANCE_QUERIES.items():
        specs.append(
            WorkloadSpec(
                name=name,
                family="finance",
                sql=sql,
                catalog_factory=finance_catalog,
                query_factory=(lambda n=name: finance_query(n)),
                stream_factory=order_book_stream,
                description=f"Financial order-book query {name} (paper Appendix A.2)",
                features=FINANCE_QUERY_FEATURES.get(name),
            )
        )
    return specs
