"""Synthesizing the TPC-H update stream (Section 8 of the paper).

The paper simulates a system monitoring a set of "active" orders: insertions
on all relations are randomly interleaved (respecting foreign keys), and once
the Orders/Lineitem tables reach a target size, random deletions of old
orders and their line items keep the working set roughly constant.  Customer,
Part, Supplier and Partsupp are insert-only; Nation and Region are static and
never appear on the stream.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterator

from repro.delta.events import StreamEvent, delete, insert
from repro.streams.agenda import Agenda
from repro.workloads.tpch.generator import TPCHData, TPCHGenerator


def synthesize_tpch_stream(
    data: TPCHData,
    seed: int = 11,
    max_live_orders: int = 300,
    max_events: int | None = None,
) -> Agenda:
    """Build the insert/delete agenda for a generated TPC-H dataset."""
    rng = random.Random(seed)
    agenda = Agenda()

    customers = {row[0]: row for row in data.customers}
    parts = {row[0]: row for row in data.parts}
    suppliers = {row[0]: row for row in data.suppliers}
    partsupps = {(row[0], row[1]): row for row in data.partsupps}
    lineitems_by_order: dict[int, list[tuple]] = {}
    for row in data.lineitems:
        lineitems_by_order.setdefault(row[0], []).append(row)

    emitted_customers: set[int] = set()
    emitted_parts: set[int] = set()
    emitted_suppliers: set[int] = set()
    emitted_partsupps: set[tuple[int, int]] = set()
    live_orders: deque[tuple[tuple, list[tuple]]] = deque()

    def emit(event: StreamEvent) -> bool:
        if max_events is not None and len(agenda) >= max_events:
            return False
        agenda.append(event)
        return True

    order_sequence = list(data.orders)
    rng.shuffle(order_sequence)

    for order in order_sequence:
        orderkey, custkey = order[0], order[1]
        items = lineitems_by_order.get(orderkey, [])

        if custkey not in emitted_customers:
            emitted_customers.add(custkey)
            if not emit(insert("Customer", *customers[custkey])):
                return agenda
        for item in items:
            partkey, suppkey = item[1], item[2]
            if partkey not in emitted_parts:
                emitted_parts.add(partkey)
                if not emit(insert("Part", *parts[partkey])):
                    return agenda
            if suppkey not in emitted_suppliers:
                emitted_suppliers.add(suppkey)
                if not emit(insert("Supplier", *suppliers[suppkey])):
                    return agenda
            if (partkey, suppkey) in partsupps and (partkey, suppkey) not in emitted_partsupps:
                emitted_partsupps.add((partkey, suppkey))
                if not emit(insert("Partsupp", *partsupps[(partkey, suppkey)])):
                    return agenda

        if not emit(insert("Orders", *order)):
            return agenda
        for item in items:
            if not emit(insert("Lineitem", *item)):
                return agenda
        live_orders.append((order, items))

        while len(live_orders) > max_live_orders:
            victim_index = rng.randrange(len(live_orders) // 2 or 1)
            live_orders.rotate(-victim_index)
            victim_order, victim_items = live_orders.popleft()
            live_orders.rotate(victim_index)
            for item in victim_items:
                if not emit(delete("Lineitem", *item)):
                    return agenda
            if not emit(delete("Orders", *victim_order)):
                return agenda

    return agenda


def tpch_stream(
    events: int = 4000,
    scale: float = 1.0,
    seed: int = 7,
    max_live_orders: int = 300,
) -> Agenda:
    """Convenience: generate data and synthesize a stream of at most ``events`` updates."""
    generator = TPCHGenerator(scale=scale, seed=seed)
    data = generator.generate()
    return synthesize_tpch_stream(
        data, seed=seed + 1, max_live_orders=max_live_orders, max_events=events
    )


def static_tables(scale: float = 1.0, seed: int = 7) -> dict[str, list[tuple]]:
    """The static Nation/Region contents matching :func:`tpch_stream`."""
    data = TPCHGenerator(scale=scale, seed=seed).generate()
    return {"Nation": data.nations, "Region": data.regions}


def iter_scaled_streams(
    scales: tuple[float, ...], events: int, seed: int = 7
) -> Iterator[tuple[float, Agenda]]:
    """Streams for the scaling experiment (Figure 11), one per scale factor."""
    for scale in scales:
        yield scale, tpch_stream(events=events, scale=scale, seed=seed)
