"""TPC-H-like decision-support workload (generator, stream synthesizer, queries)."""

from repro.workloads.tpch.schema import TPCH_SCHEMA, TPCH_STATIC, tpch_catalog
from repro.workloads.tpch.generator import TPCHGenerator
from repro.workloads.tpch.stream import synthesize_tpch_stream, tpch_stream
from repro.workloads.tpch.queries import (
    TPCH_QUERIES,
    TPCH_QUERY_FEATURES,
    tpch_query,
    workload_specs,
)

__all__ = [
    "TPCH_SCHEMA",
    "TPCH_STATIC",
    "tpch_catalog",
    "TPCHGenerator",
    "synthesize_tpch_stream",
    "tpch_stream",
    "TPCH_QUERIES",
    "TPCH_QUERY_FEATURES",
    "tpch_query",
    "workload_specs",
]
