"""TPC-H-like schema (condensed to the columns the workload queries use).

The paper runs against streams synthesized from DBGEN databases; here the
schema keeps the original table and column names (so the queries read like
TPC-H) but drops columns none of the supported queries touch, keeping events
compact.  ``Nation`` and ``Region`` are static tables, exactly as DBToaster
treats them.
"""

from __future__ import annotations

from repro.sql.catalog import Catalog

#: Relation name -> ordered column names.
TPCH_SCHEMA: dict[str, tuple[str, ...]] = {
    "Customer": ("custkey", "name", "nationkey", "acctbal", "mktsegment", "phone"),
    "Orders": (
        "orderkey",
        "custkey",
        "orderstatus",
        "totalprice",
        "orderdate",
        "orderpriority",
        "shippriority",
    ),
    "Lineitem": (
        "orderkey",
        "partkey",
        "suppkey",
        "linenumber",
        "quantity",
        "extendedprice",
        "discount",
        "tax",
        "returnflag",
        "linestatus",
        "shipdate",
        "commitdate",
        "receiptdate",
        "shipmode",
        "shipinstruct",
    ),
    "Part": ("partkey", "name", "mfgr", "brand", "type", "size", "container"),
    "Supplier": ("suppkey", "name", "nationkey", "acctbal"),
    "Partsupp": ("partkey", "suppkey", "availqty", "supplycost"),
    "Nation": ("nationkey", "name", "regionkey"),
    "Region": ("regionkey", "name"),
}

#: Tables treated as static (loaded before stream processing, never updated).
TPCH_STATIC: tuple[str, ...] = ("Nation", "Region")

#: Stream tables, i.e. everything that receives inserts/deletes.
TPCH_STREAMS: tuple[str, ...] = tuple(r for r in TPCH_SCHEMA if r not in TPCH_STATIC)


def tpch_catalog() -> Catalog:
    """Catalog with all eight TPC-H tables (Nation/Region marked static)."""
    return Catalog.from_dict(TPCH_SCHEMA, static=TPCH_STATIC)
