"""TPC-H-like workload queries (Appendix B of the paper, with its rewrites).

The paper already modifies the official TPC-H queries (no ORDER BY/LIMIT,
MIN/MAX rewritten, HAVING folded into subqueries, intervals inlined); this
module applies the same spirit and additionally restricts itself to the SQL
fragment the frontend supports (no FROM-clause subqueries), which is why the
"a" variants from the paper's appendix (Q11a, Q17a, Q18a, Q22a) are used
where the original query needs a derived table.  Queries outside the
supported fragment (Q2, Q7, Q8, Q9, Q13, Q15, Q16, Q20, Q21, Q22) are not
shipped; EXPERIMENTS.md records this coverage decision.
"""

from __future__ import annotations

from repro.sql import parse_sql_query
from repro.sql.translate import TranslatedQuery
from repro.workloads.tpch.schema import tpch_catalog
from repro.workloads.tpch.stream import static_tables, tpch_stream

#: SQL text of every TPC-H-like query, keyed by the paper's query name.
TPCH_QUERIES: dict[str, str] = {
    "Q1": """
        SELECT l.returnflag, l.linestatus,
               SUM(l.quantity) AS sum_qty,
               SUM(l.extendedprice) AS sum_base_price,
               SUM(l.extendedprice * (1 - l.discount)) AS sum_disc_price,
               SUM(l.extendedprice * (1 - l.discount) * (1 + l.tax)) AS sum_charge,
               AVG(l.quantity) AS avg_qty,
               AVG(l.extendedprice) AS avg_price,
               AVG(l.discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM Lineitem l
        WHERE l.shipdate <= '1997-09-01'
        GROUP BY l.returnflag, l.linestatus
    """,
    "Q3": """
        SELECT o.orderkey, o.orderdate, o.shippriority,
               SUM(l.extendedprice * (1 - l.discount)) AS revenue
        FROM Customer c, Orders o, Lineitem l
        WHERE c.mktsegment = 'BUILDING'
          AND o.custkey = c.custkey
          AND l.orderkey = o.orderkey
          AND o.orderdate < '1995-03-15'
          AND l.shipdate > '1995-03-15'
        GROUP BY o.orderkey, o.orderdate, o.shippriority
    """,
    "Q4": """
        SELECT o.orderpriority, COUNT(*) AS order_count
        FROM Orders o
        WHERE o.orderdate >= '1993-07-01'
          AND o.orderdate < '1993-10-01'
          AND EXISTS (SELECT l.orderkey FROM Lineitem l
                      WHERE l.orderkey = o.orderkey
                        AND l.commitdate < l.receiptdate)
        GROUP BY o.orderpriority
    """,
    "Q5": """
        SELECT n.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue
        FROM Customer c, Orders o, Lineitem l, Supplier s, Nation n, Region r
        WHERE c.custkey = o.custkey
          AND l.orderkey = o.orderkey
          AND l.suppkey = s.suppkey
          AND c.nationkey = s.nationkey
          AND s.nationkey = n.nationkey
          AND n.regionkey = r.regionkey
          AND r.name = 'ASIA'
          AND o.orderdate >= '1994-01-01'
          AND o.orderdate < '1995-01-01'
        GROUP BY n.name
    """,
    "Q6": """
        SELECT SUM(l.extendedprice * l.discount) AS revenue
        FROM Lineitem l
        WHERE l.shipdate >= '1994-01-01'
          AND l.shipdate < '1995-01-01'
          AND l.discount BETWEEN 0.05 AND 0.07
          AND l.quantity < 24
    """,
    "Q10": """
        SELECT c.custkey, c.name, c.acctbal, n.name, c.phone,
               SUM(l.extendedprice * (1 - l.discount)) AS revenue
        FROM Customer c, Orders o, Lineitem l, Nation n
        WHERE c.custkey = o.custkey
          AND l.orderkey = o.orderkey
          AND o.orderdate >= '1993-10-01'
          AND o.orderdate < '1994-01-01'
          AND l.returnflag = 'R'
          AND c.nationkey = n.nationkey
        GROUP BY c.custkey, c.name, c.acctbal, c.phone, n.name
    """,
    "Q11a": """
        SELECT ps.partkey, SUM(ps.supplycost * ps.availqty) AS query11a
        FROM Partsupp ps, Supplier s
        WHERE ps.suppkey = s.suppkey
        GROUP BY ps.partkey
    """,
    "Q12": """
        SELECT l.shipmode,
               SUM(CASE WHEN o.orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o.orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 0 ELSE 1 END) AS low_line_count
        FROM Orders o, Lineitem l
        WHERE o.orderkey = l.orderkey
          AND l.shipmode IN ('MAIL', 'SHIP')
          AND l.commitdate < l.receiptdate
          AND l.shipdate < l.commitdate
          AND l.receiptdate >= '1994-01-01'
          AND l.receiptdate < '1995-01-01'
        GROUP BY l.shipmode
    """,
    "Q14": """
        SELECT 100.00 *
               SUM(CASE WHEN p.type LIKE 'PROMO%'
                        THEN l.extendedprice * (1 - l.discount)
                        ELSE 0 END) /
               LISTMAX(1, SUM(l.extendedprice * (1 - l.discount))) AS promo_revenue
        FROM Lineitem l, Part p
        WHERE l.partkey = p.partkey
          AND l.shipdate >= '1995-09-01'
          AND l.shipdate < '1995-10-01'
    """,
    "Q17a": """
        SELECT SUM(l.extendedprice) AS query17a
        FROM Lineitem l, Part p
        WHERE p.partkey = l.partkey
          AND l.quantity < 0.005 *
              (SELECT SUM(l2.quantity) FROM Lineitem l2 WHERE l2.partkey = p.partkey)
    """,
    "Q18a": """
        SELECT c.custkey, SUM(l1.quantity) AS query18a
        FROM Customer c, Orders o, Lineitem l1
        WHERE 100 < (SELECT SUM(l3.quantity) FROM Lineitem l3
                     WHERE l1.orderkey = l3.orderkey)
          AND c.custkey = o.custkey
          AND o.orderkey = l1.orderkey
        GROUP BY c.custkey
    """,
    "Q19": """
        SELECT SUM(l.extendedprice * (1 - l.discount)) AS revenue
        FROM Lineitem l, Part p
        WHERE
          (
            p.partkey = l.partkey
            AND p.brand = 'Brand#12'
            AND p.container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
            AND l.quantity >= 1 AND l.quantity <= 11
            AND p.size BETWEEN 1 AND 5
            AND l.shipmode IN ('AIR', 'AIR REG')
            AND l.shipinstruct = 'DELIVER IN PERSON'
          )
          OR
          (
            p.partkey = l.partkey
            AND p.brand = 'Brand#23'
            AND p.container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
            AND l.quantity >= 10 AND l.quantity <= 20
            AND p.size BETWEEN 1 AND 10
            AND l.shipmode IN ('AIR', 'AIR REG')
            AND l.shipinstruct = 'DELIVER IN PERSON'
          )
          OR
          (
            p.partkey = l.partkey
            AND p.brand = 'Brand#34'
            AND p.container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
            AND l.quantity >= 20 AND l.quantity <= 30
            AND p.size BETWEEN 1 AND 15
            AND l.shipmode IN ('AIR', 'AIR REG')
            AND l.shipinstruct = 'DELIVER IN PERSON'
          )
    """,
    "Q22a": """
        SELECT c1.nationkey, SUM(c1.acctbal) AS query22a
        FROM Customer c1
        WHERE c1.acctbal < (SELECT SUM(c2.acctbal) FROM Customer c2
                            WHERE c2.acctbal > 0)
          AND 0 = (SELECT COUNT(*) FROM Orders o WHERE o.custkey = c1.custkey)
        GROUP BY c1.nationkey
    """,
    "SSB4": """
        SELECT sn.regionkey, cn.regionkey, p.type, SUM(l.quantity) AS total_quantity
        FROM Customer c, Orders o, Lineitem l, Part p, Supplier s, Nation cn, Nation sn
        WHERE c.custkey = o.custkey
          AND o.orderkey = l.orderkey
          AND p.partkey = l.partkey
          AND s.suppkey = l.suppkey
          AND o.orderdate >= '1997-01-01'
          AND o.orderdate < '1998-01-01'
          AND cn.nationkey = c.nationkey
          AND sn.nationkey = s.nationkey
        GROUP BY sn.regionkey, cn.regionkey, p.type
    """,
}

#: Figure-2 style feature annotations for the TPC-H queries we ship.
TPCH_QUERY_FEATURES: dict[str, dict[str, object]] = {
    "Q1": {"tables": 1, "join": "none", "where": "range", "group_by": True, "nesting": 0},
    "Q3": {"tables": 3, "join": "equi", "where": "range", "group_by": True, "nesting": 0},
    "Q4": {"tables": 1, "join": "none", "where": "exists", "group_by": True, "nesting": 1},
    "Q5": {"tables": 6, "join": "equi", "where": "range", "group_by": True, "nesting": 0},
    "Q6": {"tables": 1, "join": "none", "where": "range", "group_by": False, "nesting": 0},
    "Q10": {"tables": 4, "join": "equi", "where": "range", "group_by": True, "nesting": 0},
    "Q11a": {"tables": 2, "join": "equi", "where": "none", "group_by": True, "nesting": 0},
    "Q12": {"tables": 2, "join": "equi", "where": "range/in", "group_by": True, "nesting": 0},
    "Q14": {"tables": 2, "join": "equi", "where": "range", "group_by": False, "nesting": 0},
    "Q17a": {"tables": 2, "join": "equi", "where": "range", "group_by": False, "nesting": 1},
    "Q18a": {"tables": 3, "join": "equi", "where": "range", "group_by": True, "nesting": 1},
    "Q19": {"tables": 2, "join": "equi", "where": "or/range/in", "group_by": False, "nesting": 0},
    "Q22a": {"tables": 1, "join": "none", "where": "range", "group_by": True, "nesting": 1},
    "SSB4": {"tables": 7, "join": "equi", "where": "range", "group_by": True, "nesting": 0},
}


def tpch_query(name: str) -> TranslatedQuery:
    """Parse and translate one TPC-H workload query by name."""
    return parse_sql_query(TPCH_QUERIES[name], tpch_catalog(), name=name)


def workload_specs():
    """Workload registry entries for the TPC-H family."""
    from repro.workloads import WorkloadSpec

    specs = []
    for name, sql in TPCH_QUERIES.items():
        specs.append(
            WorkloadSpec(
                name=name,
                family="tpch",
                sql=sql,
                catalog_factory=tpch_catalog,
                query_factory=(lambda n=name: tpch_query(n)),
                stream_factory=tpch_stream,
                static_factory=static_tables,
                description=f"TPC-H workload query {name} (paper Appendix A/B, adapted)",
                features=TPCH_QUERY_FEATURES.get(name),
            )
        )
    return specs
