"""Synthetic TPC-H-like data generator (DBGEN substitute).

The generator produces rows with the same schema shape, foreign-key structure
and value distributions that the workload queries are sensitive to (market
segments, brands, containers, ship modes, date ranges, 'green' part names,
'BRASS' types, ...), at laptop scale.  ``scale=1.0`` corresponds to roughly
200 customers / 1 000 orders / 3 000 line items; the paper's scaling
experiment is reproduced by increasing ``scale``, not by matching DBGEN's
absolute row counts.

Everything is deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkloadError

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_RETURN_FLAGS = ("R", "A", "N")
_LINE_STATUS = ("O", "F")
_SHIP_MODES = ("MAIL", "SHIP", "AIR", "AIR REG", "TRUCK", "RAIL", "FOB")
_SHIP_INSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
_BRANDS = ("Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55")
_TYPES = (
    "ECONOMY ANODIZED STEEL",
    "STANDARD POLISHED BRASS",
    "PROMO BURNISHED COPPER",
    "MEDIUM POLISHED TIN",
    "SMALL PLATED BRASS",
    "PROMO ANODIZED NICKEL",
    "LARGE BRUSHED STEEL",
)
_CONTAINERS = (
    "SM CASE", "SM BOX", "SM PACK", "SM PKG",
    "MED BAG", "MED BOX", "MED PKG", "MED PACK",
    "LG CASE", "LG BOX", "LG PACK", "LG PKG",
)
_PART_ADJECTIVES = ("green", "blue", "red", "ivory", "antique", "metallic", "misty")
_PART_NOUNS = ("almond", "linen", "steel", "copper", "thistle", "powder", "chiffon")
_NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _shift_date(date: str, rng: random.Random, max_days: int = 60) -> str:
    """A later date within ~``max_days`` of ``date`` (coarse, month-level shift)."""
    year, month, day = (int(part) for part in date.split("-"))
    day += rng.randint(1, max_days)
    while day > 28:
        day -= 28
        month += 1
        if month > 12:
            month = 1
            year += 1
    return f"{year:04d}-{month:02d}-{day:02d}"


@dataclass
class TPCHData:
    """All generated rows, keyed by relation name (column order per TPCH_SCHEMA)."""

    customers: list[tuple[Any, ...]] = field(default_factory=list)
    orders: list[tuple[Any, ...]] = field(default_factory=list)
    lineitems: list[tuple[Any, ...]] = field(default_factory=list)
    parts: list[tuple[Any, ...]] = field(default_factory=list)
    suppliers: list[tuple[Any, ...]] = field(default_factory=list)
    partsupps: list[tuple[Any, ...]] = field(default_factory=list)
    nations: list[tuple[Any, ...]] = field(default_factory=list)
    regions: list[tuple[Any, ...]] = field(default_factory=list)

    def as_dict(self) -> dict[str, list[tuple[Any, ...]]]:
        """Relation name -> rows."""
        return {
            "Customer": self.customers,
            "Orders": self.orders,
            "Lineitem": self.lineitems,
            "Part": self.parts,
            "Supplier": self.suppliers,
            "Partsupp": self.partsupps,
            "Nation": self.nations,
            "Region": self.regions,
        }


class TPCHGenerator:
    """Deterministic TPC-H-like row generator."""

    def __init__(self, scale: float = 1.0, seed: int = 7) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.customer_count = max(5, int(200 * scale))
        self.part_count = max(5, int(100 * scale))
        self.supplier_count = max(3, int(20 * scale))
        self.order_count = max(10, int(1000 * scale))
        self.max_lineitems_per_order = 5

    def generate(self) -> TPCHData:
        """Generate the full dataset with consistent foreign keys."""
        rng = random.Random(self.seed)
        data = TPCHData()

        data.regions = [(i, name) for i, name in enumerate(_REGIONS)]
        data.nations = [
            (i, name, region) for i, (name, region) in enumerate(_NATIONS)
        ]

        for custkey in range(1, self.customer_count + 1):
            nation = rng.randrange(len(_NATIONS))
            data.customers.append(
                (
                    custkey,
                    f"Customer#{custkey:06d}",
                    nation,
                    round(rng.uniform(-999.0, 9999.0), 2),
                    rng.choice(_SEGMENTS),
                    f"{10 + nation}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                )
            )

        for partkey in range(1, self.part_count + 1):
            name = f"{rng.choice(_PART_ADJECTIVES)} {rng.choice(_PART_NOUNS)}"
            data.parts.append(
                (
                    partkey,
                    name,
                    f"Manufacturer#{rng.randint(1, 5)}",
                    rng.choice(_BRANDS),
                    rng.choice(_TYPES),
                    rng.randint(1, 50),
                    rng.choice(_CONTAINERS),
                )
            )

        for suppkey in range(1, self.supplier_count + 1):
            data.suppliers.append(
                (
                    suppkey,
                    f"Supplier#{suppkey:06d}",
                    rng.randrange(len(_NATIONS)),
                    round(rng.uniform(-999.0, 9999.0), 2),
                )
            )

        seen_pairs: set[tuple[int, int]] = set()
        for partkey in range(1, self.part_count + 1):
            for _ in range(2):
                suppkey = rng.randint(1, self.supplier_count)
                if (partkey, suppkey) in seen_pairs:
                    continue
                seen_pairs.add((partkey, suppkey))
                data.partsupps.append(
                    (partkey, suppkey, rng.randint(1, 1000), round(rng.uniform(1.0, 1000.0), 2))
                )

        partsupp_pairs = [(ps[0], ps[1]) for ps in data.partsupps]
        for orderkey in range(1, self.order_count + 1):
            orderdate = _date(rng, 1992, 1998)
            data.orders.append(
                (
                    orderkey,
                    rng.randint(1, self.customer_count),
                    rng.choice(("F", "O", "P")),
                    round(rng.uniform(1000.0, 300000.0), 2),
                    orderdate,
                    rng.choice(_PRIORITIES),
                    rng.randint(0, 2),
                )
            )
            for linenumber in range(1, rng.randint(1, self.max_lineitems_per_order) + 1):
                partkey, suppkey = rng.choice(partsupp_pairs)
                quantity = rng.randint(1, 50)
                extendedprice = round(quantity * rng.uniform(900.0, 1100.0), 2)
                shipdate = _shift_date(orderdate, rng, 90)
                commitdate = _shift_date(orderdate, rng, 60)
                receiptdate = _shift_date(shipdate, rng, 30)
                data.lineitems.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        linenumber,
                        quantity,
                        extendedprice,
                        round(rng.uniform(0.0, 0.1), 2),
                        round(rng.uniform(0.0, 0.08), 2),
                        rng.choice(_RETURN_FLAGS),
                        rng.choice(_LINE_STATUS),
                        shipdate,
                        commitdate,
                        receiptdate,
                        rng.choice(_SHIP_MODES),
                        rng.choice(_SHIP_INSTRUCT),
                    )
                )
        return data
