"""Synthetic molecular-dynamics trajectory (MDDB trace substitute).

The paper's scientific workload replays a 3.6 million tuple trace of atom
positions from a molecular dynamics simulation, with static metadata tables
describing the atoms and the dihedral quadruples of interest.  The trace is
not redistributable, so :class:`MDDBGenerator` produces a synthetic
trajectory with the same structure: a stream of ``AtomPositions`` insertions
(one row per atom per time step, following a random walk) plus static
``AtomMeta`` and ``Dihedrals`` tables that include the residue/atom names the
queries filter on (``LYS``/``NZ`` and ``TIP3``/``OH2``).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.delta.events import StreamEvent, insert
from repro.sql.catalog import Catalog
from repro.streams.agenda import Agenda

#: MDDB schema: positions stream plus static metadata.
MDDB_SCHEMA = {
    "AtomPositions": ("trj_id", "t", "atom_id", "x", "y", "z"),
    "AtomMeta": ("atom_id", "residue_name", "atom_name"),
    "Dihedrals": ("atom_id1", "atom_id2", "atom_id3", "atom_id4"),
}

MDDB_STATIC = ("AtomMeta", "Dihedrals")

_RESIDUES = (("LYS", "NZ"), ("TIP3", "OH2"), ("ALA", "CA"), ("GLY", "N"), ("VAL", "C"))


def mddb_catalog() -> Catalog:
    """Catalog with the atom-positions stream and the static metadata tables."""
    return Catalog.from_dict(MDDB_SCHEMA, static=MDDB_STATIC)


class MDDBGenerator:
    """Deterministic synthetic molecular-dynamics trajectory."""

    def __init__(
        self,
        atoms: int = 24,
        trajectories: int = 2,
        seed: int = 5,
        box_size: float = 50.0,
    ) -> None:
        self.atoms = atoms
        self.trajectories = trajectories
        self.seed = seed
        self.box_size = box_size

    # -- static tables ---------------------------------------------------------
    def atom_meta(self) -> list[tuple]:
        """The static AtomMeta rows (atom_id, residue_name, atom_name)."""
        rng = random.Random(self.seed)
        rows = []
        for atom_id in range(1, self.atoms + 1):
            residue, name = _RESIDUES[rng.randrange(len(_RESIDUES))]
            rows.append((atom_id, residue, name))
        return rows

    def dihedrals(self) -> list[tuple]:
        """The static Dihedrals rows (quadruples of consecutive atom ids)."""
        rows = []
        for start in range(1, self.atoms - 3, 4):
            rows.append((start, start + 1, start + 2, start + 3))
        return rows

    def static_tables(self) -> dict[str, list[tuple]]:
        """Both static tables keyed by relation name."""
        return {"AtomMeta": self.atom_meta(), "Dihedrals": self.dihedrals()}

    # -- the position stream -----------------------------------------------------
    def events(self, count: int) -> Iterator[StreamEvent]:
        """Yield up to ``count`` AtomPositions insertions (random-walk trajectory)."""
        rng = random.Random(self.seed + 1)
        positions = {
            (trj, atom): [rng.uniform(0, self.box_size) for _ in range(3)]
            for trj in range(1, self.trajectories + 1)
            for atom in range(1, self.atoms + 1)
        }
        produced = 0
        timestep = 0
        while produced < count:
            timestep += 1
            for trj in range(1, self.trajectories + 1):
                for atom in range(1, self.atoms + 1):
                    if produced >= count:
                        return
                    coords = positions[(trj, atom)]
                    for axis in range(3):
                        coords[axis] = min(
                            self.box_size, max(0.0, coords[axis] + rng.uniform(-0.5, 0.5))
                        )
                    yield insert(
                        "AtomPositions",
                        trj,
                        timestep,
                        atom,
                        round(coords[0], 3),
                        round(coords[1], 3),
                        round(coords[2], 3),
                    )
                    produced += 1

    def agenda(self, count: int) -> Agenda:
        """The position stream packaged as a replayable agenda."""
        return Agenda(self.events(count))


def mddb_stream(events: int = 2000, seed: int = 5, atoms: int = 24, **kwargs) -> Agenda:
    """Convenience used by the workload registry and the benchmarks."""
    return MDDBGenerator(atoms=atoms, seed=seed, **kwargs).agenda(events)


def mddb_static_tables(seed: int = 5, atoms: int = 24, **kwargs) -> dict[str, list[tuple]]:
    """Static tables matching :func:`mddb_stream` for the same parameters."""
    return MDDBGenerator(atoms=atoms, seed=seed, **kwargs).static_tables()
