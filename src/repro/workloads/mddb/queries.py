"""The scientific (MDDB) workload queries (Appendix A.3 of the paper).

MDDB1 is the radial-distribution query verbatim (modulo schema condensation).
MDDB2 in the paper selects a per-row dihedral angle from a 10-way join; that
shape (computed non-aggregate output columns, disjunctive atom-name
selection) is outside the supported SQL fragment, so the variant shipped here
aggregates the dihedral angles per trajectory and time step over the static
``Dihedrals`` quadruple table — it exercises the same join width and the same
external geometry function.  DESIGN.md and EXPERIMENTS.md record the
substitution.
"""

from __future__ import annotations

from repro.sql import parse_sql_query
from repro.sql.translate import TranslatedQuery
from repro.workloads.mddb.generator import mddb_catalog, mddb_static_tables, mddb_stream

#: SQL text of the scientific queries.
MDDB_QUERIES: dict[str, str] = {
    "MDDB1": """
        SELECT p.trj_id, p.t,
               AVG(vec_length(p.x - p2.x, p.y - p2.y, p.z - p2.z)) AS rdf
        FROM AtomPositions p, AtomMeta m, AtomPositions p2, AtomMeta m2
        WHERE p.trj_id = p2.trj_id
          AND p.t = p2.t
          AND p.atom_id = m.atom_id
          AND p2.atom_id = m2.atom_id
          AND m.residue_name = 'LYS'
          AND m.atom_name = 'NZ'
          AND m2.residue_name = 'TIP3'
          AND m2.atom_name = 'OH2'
        GROUP BY p.trj_id, p.t
    """,
    "MDDB2": """
        SELECT p1.trj_id, p1.t,
               SUM(dihedral_angle(p1.x, p1.y, p1.z,
                                  p2.x, p2.y, p2.z,
                                  p3.x, p3.y, p3.z,
                                  p4.x, p4.y, p4.z)) AS phi_psi
        FROM Dihedrals d, AtomPositions p1, AtomPositions p2,
             AtomPositions p3, AtomPositions p4
        WHERE d.atom_id1 = p1.atom_id
          AND d.atom_id2 = p2.atom_id
          AND d.atom_id3 = p3.atom_id
          AND d.atom_id4 = p4.atom_id
          AND p1.t = p2.t AND p1.t = p3.t AND p1.t = p4.t
          AND p1.trj_id = p2.trj_id AND p1.trj_id = p3.trj_id AND p1.trj_id = p4.trj_id
        GROUP BY p1.trj_id, p1.t
    """,
}

#: Figure-2 style feature annotations.
MDDB_QUERY_FEATURES: dict[str, dict[str, object]] = {
    "MDDB1": {"tables": 4, "join": "equi", "where": "equality", "group_by": True, "nesting": 0},
    "MDDB2": {"tables": 5, "join": "equi", "where": "equality", "group_by": True, "nesting": 0},
}


def mddb_query(name: str) -> TranslatedQuery:
    """Parse and translate one scientific query by name."""
    return parse_sql_query(MDDB_QUERIES[name], mddb_catalog(), name=name)


def workload_specs():
    """Workload registry entries for the scientific family."""
    from repro.workloads import WorkloadSpec

    specs = []
    for name, sql in MDDB_QUERIES.items():
        specs.append(
            WorkloadSpec(
                name=name,
                family="mddb",
                sql=sql,
                catalog_factory=mddb_catalog,
                query_factory=(lambda n=name: mddb_query(n)),
                stream_factory=mddb_stream,
                static_factory=mddb_static_tables,
                description=f"Molecular-dynamics query {name} (paper Appendix A.3)",
                features=MDDB_QUERY_FEATURES.get(name),
            )
        )
    return specs
