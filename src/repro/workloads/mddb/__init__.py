"""Scientific (molecular dynamics, MDDB) workload."""

from repro.workloads.mddb.generator import MDDBGenerator, mddb_catalog, mddb_static_tables, mddb_stream
from repro.workloads.mddb.queries import (
    MDDB_QUERIES,
    MDDB_QUERY_FEATURES,
    mddb_query,
    workload_specs,
)

__all__ = [
    "MDDBGenerator",
    "mddb_catalog",
    "mddb_static_tables",
    "mddb_stream",
    "MDDB_QUERIES",
    "MDDB_QUERY_FEATURES",
    "mddb_query",
    "workload_specs",
]
