"""Workloads: the paper's three query/data families plus a unified registry.

* :mod:`repro.workloads.finance` — algorithmic-trading order-book queries
  (AXF, BSP, BSV, MST, PSP, VWAP) over a synthetic Bids/Asks stream;
* :mod:`repro.workloads.tpch` — TPC-H-like decision-support queries over a
  synthetic insert/delete stream with a bounded Orders/Lineitem working set;
* :mod:`repro.workloads.mddb` — molecular-dynamics (MDDB) queries over a
  stream of atom positions with static atom metadata.

:data:`WORKLOADS` maps every query name used in the paper's figures to a
:class:`WorkloadSpec` that knows how to build its catalog, its AGCA roots and
its update stream; the benchmark harness is driven entirely from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.sql.catalog import Catalog
from repro.sql.translate import TranslatedQuery
from repro.streams.agenda import Agenda


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to run one benchmark query.

    ``family`` is ``"finance"``, ``"tpch"`` or ``"mddb"``; ``features``
    carries the Figure-2 style metadata (join count, nesting depth, ...).
    """

    name: str
    family: str
    sql: str
    catalog_factory: Callable[[], Catalog]
    query_factory: Callable[[], TranslatedQuery]
    stream_factory: Callable[..., Agenda]
    static_factory: Callable[..., Mapping[str, list]] | None = None
    description: str = ""
    features: Mapping[str, object] | None = None

    def static_tables(self, **kwargs) -> Mapping[str, list]:
        """Static table contents to load before stream processing (may be empty)."""
        if self.static_factory is None:
            return {}
        return self.static_factory(**kwargs)


def _registry() -> dict[str, WorkloadSpec]:
    from repro.workloads import finance, mddb, tpch

    specs: dict[str, WorkloadSpec] = {}
    for module in (finance, tpch, mddb):
        for spec in module.workload_specs():
            if spec.name in specs:
                raise ValueError(f"duplicate workload query name {spec.name!r}")
            specs[spec.name] = spec
    return specs


_CACHE: dict[str, WorkloadSpec] | None = None


def all_workloads() -> dict[str, WorkloadSpec]:
    """The full query registry (lazily built and cached)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = _registry()
    return _CACHE


def workload(name: str) -> WorkloadSpec:
    """Look up one workload query by name (e.g. ``"VWAP"`` or ``"Q3"``)."""
    registry = all_workloads()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown workload query {name!r}; available: {sorted(registry)}"
        ) from None


__all__ = ["WorkloadSpec", "all_workloads", "workload"]
