"""Translation of parsed SQL into AGCA (Section 3.2, Examples 5 and on).

The translation follows the paper's recipe:

* every table in the FROM clause becomes a relation atom whose columns are
  renamed to per-alias variables (``lineitem l`` -> ``Lineitem(l_orderkey,
  ...)``), so self-joins and correlated subqueries just work;
* the WHERE clause becomes a list of multiplicative factors: comparisons turn
  into condition atoms, scalar subqueries into lifts of fresh variables
  (``x := Sum[](...)``) followed by a comparison on the lifted variable,
  EXISTS / IN subqueries into count aggregates compared against zero;
* each aggregate of the select list becomes its own AGCA root
  (``Sum_groupvars(atoms * conditions * value)``); select expressions that
  combine several aggregates (AVG, ratios, CASE arithmetic) become *derived
  outputs* reconstructed from the aggregate maps at read time — the paper's
  generalized Higher-Order IVM treatment of algebraic aggregates.

The result is a :class:`TranslatedQuery` bundling the AGCA roots, the group
columns and the derived-output recipes; :class:`repro.sql.views.QueryView`
knows how to assemble final result rows from a running engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.agca.ast import (
    Cmp,
    Expr,
    Lift,
    Relation,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
    ValueExpr,
)
from repro.agca.builders import agg, plus, prod
from repro.errors import SQLTranslationError
from repro.sql.ast import (
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    ExistsExpr,
    FuncCall,
    InExpr,
    LikeExpr,
    Literal,
    SelectItem,
    SelectQuery,
    SqlExpr,
    SubqueryExpr,
    TableRef,
    UnaryOp,
    collect_aggregates,
)
from repro.sql.catalog import Catalog

_ARITHMETIC = {"+", "-", "*", "/"}
_COMPARISON_FUNCS = {"=": "eq", "<>": "ne", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


@dataclass(frozen=True)
class OutputColumn:
    """One column of the query result.

    ``kind`` is ``"group"`` (a GROUP BY column), ``"aggregate"`` (the value of
    one aggregate map) or ``"derived"`` (an arithmetic expression combining
    aggregate maps and group columns, evaluated at read time).
    """

    name: str
    kind: str
    source: Optional[str] = None
    expression: Optional[ValueExpr] = None


@dataclass
class TranslatedQuery:
    """The AGCA translation of one SQL query."""

    name: str
    catalog: Catalog
    group_columns: tuple[str, ...]
    group_vars: tuple[str, ...]
    aggregates: dict[str, Expr]
    outputs: tuple[OutputColumn, ...]
    sql: Optional[SelectQuery] = None

    def roots(self) -> dict[str, Expr]:
        """The AGCA expressions to hand to the compiler (one per aggregate)."""
        return dict(self.aggregates)

    def schemas(self) -> dict[str, tuple[str, ...]]:
        """Relation schemas, as the compiler expects them."""
        return self.catalog.schemas()

    def static_relations(self) -> tuple[str, ...]:
        """Static relations declared by the catalog."""
        return self.catalog.static_relations()

    def primary_root(self) -> str:
        """The first aggregate root name (convenient for single-aggregate queries)."""
        return next(iter(self.aggregates))


class _Scope:
    """Alias resolution with correlation to enclosing query scopes."""

    def __init__(self, tables: list[TableRef], catalog: Catalog, parent: Optional["_Scope"]) -> None:
        self.catalog = catalog
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.aliases: dict[str, TableRef] = {}
        self.prefixes: dict[str, str] = {}
        for ref in tables:
            alias = ref.alias.lower()
            if alias in self.aliases:
                raise SQLTranslationError(f"duplicate table alias {ref.alias!r}")
            self.aliases[alias] = ref
            prefix = alias
            if parent is not None and parent.knows_prefix(prefix):
                prefix = f"{alias}_s{self.depth}"
            self.prefixes[alias] = prefix

    def knows_prefix(self, prefix: str) -> bool:
        if prefix in self.prefixes.values():
            return True
        return self.parent.knows_prefix(prefix) if self.parent else False

    def variable(self, alias: str, column: str) -> str:
        return f"{self.prefixes[alias.lower()]}_{column.lower()}"

    def atoms(self) -> list[Expr]:
        out: list[Expr] = []
        for alias, ref in self.aliases.items():
            schema = self.catalog.table(ref.table)
            columns = tuple(self.variable(alias, column) for column in schema.columns)
            out.append(Relation(schema.name, columns))
        return out

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            alias = ref.table.lower()
            scope: Optional[_Scope] = self
            while scope is not None:
                if alias in scope.aliases:
                    table = scope.catalog.table(scope.aliases[alias].table)
                    if not table.has_column(ref.column):
                        raise SQLTranslationError(
                            f"table {table.name!r} (alias {ref.table!r}) has no column "
                            f"{ref.column!r}"
                        )
                    return scope.variable(alias, ref.column)
                scope = scope.parent
            raise SQLTranslationError(f"unknown table alias {ref.table!r}")
        # Unqualified column: search this scope, then enclosing scopes.
        scope = self
        while scope is not None:
            matches = [
                alias
                for alias, table_ref in scope.aliases.items()
                if scope.catalog.table(table_ref.table).has_column(ref.column)
            ]
            if len(matches) > 1:
                raise SQLTranslationError(f"ambiguous column reference {ref.column!r}")
            if matches:
                return scope.variable(matches[0], ref.column)
            scope = scope.parent
        raise SQLTranslationError(f"cannot resolve column reference {ref.column!r}")


class _Translator:
    def __init__(self, catalog: Catalog, name: str) -> None:
        self.catalog = catalog
        self.name = name
        self._fresh = itertools.count(1)

    def fresh_var(self, hint: str = "v") -> str:
        return f"__{hint}{next(self._fresh)}"

    # -- whole queries --------------------------------------------------------
    def translate(self, query: SelectQuery) -> TranslatedQuery:
        if query.select_star:
            raise SQLTranslationError(
                "SELECT * is not supported for maintained views; list the columns"
            )
        scope = _Scope(query.tables, self.catalog, None)
        atoms = scope.atoms()
        where_factors = self.condition_factors(query.where, scope)

        group_vars = tuple(scope.resolve(col) for col in query.group_by)
        group_columns = tuple(str(col) for col in query.group_by)

        aggregates: dict[str, Expr] = {}
        outputs: list[OutputColumn] = []

        has_aggregates = any(collect_aggregates(item.expr) for item in query.select)

        if not has_aggregates:
            # A non-aggregate query: the result is the bag of selected rows;
            # we maintain it as one count map keyed by the selected columns.
            select_vars = []
            for item in query.select:
                if not isinstance(item.expr, ColumnRef):
                    raise SQLTranslationError(
                        "non-aggregate select items must be plain columns"
                    )
                var = scope.resolve(item.expr)
                select_vars.append(var)
                outputs.append(OutputColumn(item.alias or str(item.expr), "group", source=var))
            keys = group_vars if group_vars else tuple(select_vars)
            aggregates[self.name] = agg(keys, prod(*atoms, *where_factors))
            return TranslatedQuery(
                self.name, self.catalog, group_columns or tuple(str(i.expr) for i in query.select),
                keys, aggregates, tuple(outputs), sql=query,
            )

        for column in group_columns:
            base = column.split(".")[-1]
            outputs.append(
                OutputColumn(base, "group", source=group_vars[group_columns.index(column)])
            )

        for index, item in enumerate(query.select, start=1):
            if isinstance(item.expr, ColumnRef):
                var = scope.resolve(item.expr)
                if var not in group_vars:
                    raise SQLTranslationError(
                        f"select column {item.expr} must appear in GROUP BY"
                    )
                continue  # group columns are already part of `outputs`
            self._translate_select_item(
                item, index, scope, atoms, where_factors, group_vars, aggregates, outputs
            )

        return TranslatedQuery(
            self.name,
            self.catalog,
            group_columns,
            group_vars,
            aggregates,
            tuple(outputs),
            sql=query,
        )

    def _translate_select_item(
        self,
        item: SelectItem,
        index: int,
        scope: _Scope,
        atoms: list[Expr],
        where_factors: list[Expr],
        group_vars: tuple[str, ...],
        aggregates: dict[str, Expr],
        outputs: list[OutputColumn],
    ) -> None:
        calls = collect_aggregates(item.expr)
        if not calls:
            raise SQLTranslationError(
                f"select item {item.expr!r} mixes no aggregate with non-group columns"
            )
        label = item.alias or f"agg{index}"
        replacements: dict[int, ValueExpr] = {}
        for position, call in enumerate(calls, start=1):
            call_label = label if len(calls) == 1 else f"{label}_{position}"
            for map_name, root in self.aggregate_roots(
                call, call_label, scope, atoms, where_factors, group_vars, aggregates
            ).items():
                aggregates.setdefault(map_name, root)
            replacements[id(call)] = self.aggregate_value(call, call_label)

        if len(calls) == 1 and item.expr is calls[0] and calls[0].name != "avg":
            outputs.append(OutputColumn(label, "aggregate", source=f"{self.name}_{label}"))
            return
        derived = self.value_expr(item.expr, scope, aggregate_replacements=replacements)
        outputs.append(OutputColumn(label, "derived", expression=derived))

    def aggregate_roots(
        self,
        call: FuncCall,
        label: str,
        scope: _Scope,
        atoms: list[Expr],
        where_factors: list[Expr],
        group_vars: tuple[str, ...],
        aggregates: dict[str, Expr],
    ) -> dict[str, Expr]:
        """AGCA root expressions for one aggregate call (AVG expands to two)."""
        base = prod(*atoms, *where_factors)
        name = f"{self.name}_{label}"
        if call.distinct:
            raise SQLTranslationError("DISTINCT aggregates are not supported")
        if call.name in ("min", "max"):
            raise SQLTranslationError(
                "MIN/MAX must be rewritten as nested subqueries (as the paper does)"
            )
        if call.name == "count" or call.star:
            return {name: agg(group_vars, base)}
        value = self.value_expr(call.args[0], scope)
        if call.name == "sum":
            return {name: agg(group_vars, prod(base, Value(value)))}
        if call.name == "avg":
            return {
                f"{name}_sum": agg(group_vars, prod(base, Value(value))),
                f"{name}_cnt": agg(group_vars, base),
            }
        raise SQLTranslationError(f"unsupported aggregate {call.name!r}")

    def aggregate_value(self, call: FuncCall, label: str) -> ValueExpr:
        """The value expression standing for one aggregate in a derived output."""
        name = f"{self.name}_{label}"
        if call.name == "avg":
            return VArith("/", VVar(f"{name}_sum"), VVar(f"{name}_cnt"))
        return VVar(name)

    # -- conditions ----------------------------------------------------------------
    def condition_factors(self, expr: Optional[SqlExpr], scope: _Scope) -> list[Expr]:
        """Translate a WHERE expression into a list of multiplicative factors."""
        if expr is None:
            return []
        if isinstance(expr, BinaryOp) and expr.op == "and":
            return self.condition_factors(expr.left, scope) + self.condition_factors(
                expr.right, scope
            )
        if isinstance(expr, BinaryOp) and expr.op == "or":
            return [self._or_factor(expr, scope)]
        if isinstance(expr, UnaryOp) and expr.op == "not":
            return [self._negate(self.condition_factors(expr.operand, scope))]
        if isinstance(expr, BinaryOp) and expr.op in _COMPARISON_FUNCS:
            return self._comparison_factors(expr, scope)
        if isinstance(expr, BetweenExpr):
            low = BinaryOp(">=", expr.operand, expr.low)
            high = BinaryOp("<=", expr.operand, expr.high)
            return self.condition_factors(low, scope) + self.condition_factors(high, scope)
        if isinstance(expr, ExistsExpr):
            return self._exists_factors(expr, scope)
        if isinstance(expr, InExpr):
            return self._in_factors(expr, scope)
        if isinstance(expr, LikeExpr):
            value = VFunc("like", (self.value_expr(expr.operand, scope), VConst(expr.pattern)))
            if expr.negated:
                value = VFunc("not", (value,))
            return [Value(value)]
        # Anything else is a scalar 0/1 expression usable directly as a factor.
        return [Value(self.value_expr(expr, scope))]

    def _comparison_factors(self, expr: BinaryOp, scope: _Scope) -> list[Expr]:
        lifts: list[Expr] = []
        replacements: dict[int, ValueExpr] = {}
        for side in (expr.left, expr.right):
            for subquery in _find_subqueries(side):
                variable = self.fresh_var("sq")
                lifts.append(Lift(variable, self.scalar_subquery(subquery.subquery, scope)))
                replacements[id(subquery)] = VVar(variable)
        left = self.value_expr(expr.left, scope, subquery_replacements=replacements)
        right = self.value_expr(expr.right, scope, subquery_replacements=replacements)
        return lifts + [Cmp(left, "=" if expr.op == "=" else expr.op, right)]

    def _or_factor(self, expr: BinaryOp, scope: _Scope) -> Expr:
        left = self.condition_factors(expr.left, scope)
        right = self.condition_factors(expr.right, scope)
        for side in (left, right):
            for factor in side:
                from repro.agca.schema import degree

                if degree(factor) > 0:
                    raise SQLTranslationError(
                        "OR over subqueries is not supported; rewrite the query"
                    )
        left_expr = prod(*left) if left else Value(VConst(1))
        right_expr = prod(*right) if right else Value(VConst(1))
        # a OR b  ==  a + b - a*b  over 0/1 condition factors.
        return plus(left_expr, right_expr, prod(Value(VConst(-1)), left_expr, right_expr))

    def _negate(self, factors: list[Expr]) -> Expr:
        from repro.agca.schema import degree

        for factor in factors:
            if degree(factor) > 0:
                raise SQLTranslationError("NOT over subqueries is only supported via NOT EXISTS")
        inner = prod(*factors) if factors else Value(VConst(1))
        return plus(Value(VConst(1)), prod(Value(VConst(-1)), inner))

    def _exists_factors(self, expr: ExistsExpr, scope: _Scope) -> list[Expr]:
        count = self.count_subquery(expr.subquery, scope)
        variable = self.fresh_var("ex")
        comparison = Cmp(VVar(variable), "=" if expr.negated else ">", VConst(0))
        return [Lift(variable, count), comparison]

    def _in_factors(self, expr: InExpr, scope: _Scope) -> list[Expr]:
        operand = self.value_expr(expr.operand, scope)
        if expr.subquery is None:
            options = []
            for option in expr.options:
                if not isinstance(option, Literal):
                    raise SQLTranslationError("IN lists must contain literals")
                options.append(VConst(option.value))
            value: ValueExpr = VFunc("in_list", (operand, *options))
            if expr.negated:
                value = VFunc("not", (value,))
            return [Value(value)]
        count = self.count_subquery(expr.subquery, scope, equals=operand)
        variable = self.fresh_var("in")
        comparison = Cmp(VVar(variable), "=" if expr.negated else ">", VConst(0))
        return [Lift(variable, count), comparison]

    # -- subqueries --------------------------------------------------------------------
    def scalar_subquery(self, query: SelectQuery, outer: _Scope) -> Expr:
        """A correlated scalar subquery as a (nullary) AGCA aggregate."""
        if query.group_by or query.select_star or len(query.select) != 1:
            raise SQLTranslationError(
                "scalar subqueries must select exactly one expression and have no GROUP BY"
            )
        scope = _Scope(query.tables, self.catalog, outer)
        atoms = scope.atoms()
        factors = self.condition_factors(query.where, scope)
        item = query.select[0].expr
        calls = collect_aggregates(item)
        if not calls:
            raise SQLTranslationError("scalar subqueries must compute an aggregate")

        replacements: dict[int, ValueExpr] = {}
        lifts: list[Expr] = []
        simple: dict[int, Expr] = {}
        for call in calls:
            if call.name in ("min", "max"):
                raise SQLTranslationError("MIN/MAX subqueries must be rewritten (as in the paper)")
            if call.name == "count" or call.star:
                body = agg((), prod(*atoms, *factors))
            elif call.name == "sum":
                value = self.value_expr(call.args[0], scope)
                body = agg((), prod(*atoms, *factors, Value(value)))
            elif call.name == "avg":
                sum_body = agg(
                    (), prod(*atoms, *factors, Value(self.value_expr(call.args[0], scope)))
                )
                cnt_body = agg((), prod(*atoms, *factors))
                sum_var, cnt_var = self.fresh_var("avs"), self.fresh_var("avc")
                lifts.extend([Lift(sum_var, sum_body), Lift(cnt_var, cnt_body)])
                replacements[id(call)] = VArith("/", VVar(sum_var), VVar(cnt_var))
                continue
            else:
                raise SQLTranslationError(f"unsupported aggregate {call.name!r} in subquery")
            simple[id(call)] = body

        if len(calls) == 1 and item is calls[0] and id(calls[0]) in simple:
            return simple[id(calls[0])]

        for call_id, body in simple.items():
            variable = self.fresh_var("ag")
            lifts.append(Lift(variable, body))
            replacements[call_id] = VVar(variable)
        value = self.value_expr(item, scope, aggregate_replacements=replacements)
        return agg((), prod(*lifts, Value(value)))

    def count_subquery(
        self, query: SelectQuery, outer: _Scope, equals: ValueExpr | None = None
    ) -> Expr:
        """An EXISTS / IN subquery as a count aggregate (optionally value-matched)."""
        scope = _Scope(query.tables, self.catalog, outer)
        atoms = scope.atoms()
        factors = self.condition_factors(query.where, scope)
        extra: list[Expr] = []
        if equals is not None:
            if query.select_star or len(query.select) != 1:
                raise SQLTranslationError("IN subqueries must select exactly one column")
            item = query.select[0].expr
            if collect_aggregates(item):
                raise SQLTranslationError("IN over aggregate subqueries is not supported")
            extra.append(Cmp(self.value_expr(item, scope), "=", equals))
        return agg((), prod(*atoms, *factors, *extra))

    # -- scalar value expressions -----------------------------------------------------------
    def value_expr(
        self,
        expr: SqlExpr,
        scope: _Scope,
        aggregate_replacements: dict[int, ValueExpr] | None = None,
        subquery_replacements: dict[int, ValueExpr] | None = None,
    ) -> ValueExpr:
        """Translate a scalar SQL expression into an AGCA value expression."""
        aggregate_replacements = aggregate_replacements or {}
        subquery_replacements = subquery_replacements or {}

        def rec(node: SqlExpr) -> ValueExpr:
            if id(node) in aggregate_replacements:
                return aggregate_replacements[id(node)]
            if id(node) in subquery_replacements:
                return subquery_replacements[id(node)]
            if isinstance(node, Literal):
                return VConst(node.value)
            if isinstance(node, ColumnRef):
                return VVar(scope.resolve(node))
            if isinstance(node, BinaryOp):
                if node.op in _ARITHMETIC:
                    return VArith(node.op, rec(node.left), rec(node.right))
                if node.op in _COMPARISON_FUNCS:
                    return VFunc(_COMPARISON_FUNCS[node.op], (rec(node.left), rec(node.right)))
                if node.op in ("and", "or"):
                    return VFunc(node.op, (rec(node.left), rec(node.right)))
                raise SQLTranslationError(f"unsupported operator {node.op!r} in value position")
            if isinstance(node, UnaryOp):
                if node.op == "-":
                    return VArith("-", VConst(0), rec(node.operand))
                if node.op == "not":
                    return VFunc("not", (rec(node.operand),))
                raise SQLTranslationError(f"unsupported unary operator {node.op!r}")
            if isinstance(node, CaseExpr):
                result: ValueExpr = rec(node.default) if node.default is not None else VConst(0)
                for condition, value in reversed(node.branches):
                    result = VFunc("if_then_else", (rec(condition), rec(value), result))
                return result
            if isinstance(node, LikeExpr):
                value: ValueExpr = VFunc("like", (rec(node.operand), VConst(node.pattern)))
                if node.negated:
                    value = VFunc("not", (value,))
                return value
            if isinstance(node, BetweenExpr):
                return VFunc(
                    "and",
                    (
                        VFunc("ge", (rec(node.operand), rec(node.low))),
                        VFunc("le", (rec(node.operand), rec(node.high))),
                    ),
                )
            if isinstance(node, InExpr):
                if node.subquery is not None:
                    raise SQLTranslationError(
                        "IN subqueries are only supported as top-level WHERE conjuncts"
                    )
                options = tuple(
                    VConst(option.value) if isinstance(option, Literal) else rec(option)
                    for option in node.options
                )
                value = VFunc("in_list", (rec(node.operand), *options))
                if node.negated:
                    value = VFunc("not", (value,))
                return value
            if isinstance(node, FuncCall):
                if node.is_aggregate:
                    raise SQLTranslationError(
                        "aggregates are only allowed in the select list or scalar subqueries"
                    )
                return VFunc(node.name, tuple(rec(a) for a in node.args))
            if isinstance(node, SubqueryExpr):
                raise SQLTranslationError(
                    "scalar subqueries are only supported inside comparison predicates"
                )
            raise SQLTranslationError(f"unsupported SQL expression {node!r}")

        return rec(expr)


def _find_subqueries(expr: SqlExpr) -> list[SubqueryExpr]:
    out: list[SubqueryExpr] = []
    if isinstance(expr, SubqueryExpr):
        out.append(expr)
    elif isinstance(expr, BinaryOp):
        out.extend(_find_subqueries(expr.left))
        out.extend(_find_subqueries(expr.right))
    elif isinstance(expr, UnaryOp):
        out.extend(_find_subqueries(expr.operand))
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.branches:
            out.extend(_find_subqueries(condition))
            out.extend(_find_subqueries(value))
        if expr.default is not None:
            out.extend(_find_subqueries(expr.default))
    return out


def translate_query(query: SelectQuery, catalog: Catalog, name: str = "Q") -> TranslatedQuery:
    """Translate a parsed SELECT statement into AGCA roots against ``catalog``."""
    return _Translator(catalog, name).translate(query)
