"""Assembling SQL result rows from the materialized views of an engine.

A :class:`~repro.sql.translate.TranslatedQuery` maintains one map per
aggregate; :class:`QueryView` reconstitutes the SQL-level result rows (group
columns, aggregate values, derived expressions such as AVG or ratios) from a
running :class:`~repro.runtime.engine.IncrementalEngine`.  This is the
"generalized Higher-Order IVM" read path of the paper: cheap per-update
maintenance of simple aggregates, reconstruction of algebraic aggregates on
demand.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.agca.evaluator import eval_value
from repro.core.rows import Row
from repro.errors import RuntimeEngineError
from repro.sql.translate import OutputColumn, TranslatedQuery


class QueryView:
    """Read SQL-shaped result rows out of an engine running a translated query."""

    def __init__(self, query: TranslatedQuery, engine) -> None:
        self.query = query
        self.engine = engine

    # -- group keys ------------------------------------------------------------
    def _group_rows(self) -> list[Row]:
        keys: dict[Row, None] = {}
        for name in self.query.aggregates:
            for row, _ in self.engine.view(name).items():
                keys.setdefault(row.project(self.query.group_vars), None)
        return list(keys)

    def _aggregate_values(self, group_row: Row) -> dict[str, Any]:
        values: dict[str, Any] = {}
        for name in self.query.aggregates:
            view = self.engine.view(name)
            total = 0
            for row, value in view.items():
                if row.consistent_with(group_row) and group_row.consistent_with(row):
                    if row.project(self.query.group_vars) == group_row:
                        total += value
            values[name] = total
        return values

    # -- results ----------------------------------------------------------------------
    def rows(self) -> list[dict[str, Any]]:
        """The current result as a list of dictionaries (one per group)."""
        if not self.query.group_vars:
            return [self._assemble(Row(), self._aggregate_values(Row()))]
        out = []
        for group_row in self._group_rows():
            out.append(self._assemble(group_row, self._aggregate_values(group_row)))
        return out

    def scalar(self, column: str | None = None) -> Any:
        """The single value of a scalar (no GROUP BY) single-output query."""
        rows = self.rows()
        if not rows:
            return 0
        row = rows[0]
        if column is not None:
            return row[column]
        non_group = [c.name for c in self.query.outputs if c.kind != "group"]
        if len(non_group) != 1:
            raise RuntimeEngineError(
                f"query has {len(non_group)} value columns; name one of {non_group}"
            )
        return row[non_group[0]]

    def as_dict(self, value_column: str | None = None) -> dict[tuple, Any]:
        """Result keyed by the tuple of group-column values."""
        group_names = [c.name for c in self.query.outputs if c.kind == "group"]
        out: dict[tuple, Any] = {}
        for row in self.rows():
            key = tuple(row[name] for name in group_names)
            if value_column is None:
                value_names = [c.name for c in self.query.outputs if c.kind != "group"]
                out[key] = row[value_names[0]] if len(value_names) == 1 else {
                    name: row[name] for name in value_names
                }
            else:
                out[key] = row[value_column]
        return out

    # -- helpers ------------------------------------------------------------------------
    def _assemble(self, group_row: Row, aggregate_values: Mapping[str, Any]) -> dict[str, Any]:
        environment: dict[str, Any] = dict(aggregate_values)
        environment.update(dict(group_row))
        result: dict[str, Any] = {}
        for output in self.query.outputs:
            result[output.name] = self._output_value(output, group_row, environment)
        return result

    def _output_value(
        self, output: OutputColumn, group_row: Row, environment: Mapping[str, Any]
    ) -> Any:
        if output.kind == "group":
            return group_row.get(output.source, None)
        if output.kind == "aggregate":
            return environment.get(output.source, 0)
        if output.kind == "derived":
            assert output.expression is not None
            return eval_value(output.expression, environment)
        raise RuntimeEngineError(f"unknown output kind {output.kind!r}")
