"""Recursive-descent parser for the supported SQL fragment.

The grammar (roughly):

.. code-block:: text

    query      := SELECT select_list FROM table_list [WHERE expr] [GROUP BY columns]
    select_list:= '*' | item (',' item)*          item := expr [AS name]
    table_list := table [AS? alias] (',' table [AS? alias])*
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive [cmp additive | BETWEEN .. AND .. | [NOT] IN (...) |
                  [NOT] LIKE string]
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary      := '-' unary | primary
    primary    := literal | DATE('...') | CASE ... END | EXISTS (query) |
                  aggregate '(' [DISTINCT] (expr|'*') ')' | func '(' args ')' |
                  column | '(' query ')' | '(' expr ')'

Unsupported syntax (outer joins, ORDER BY, HAVING, UNION, IS NULL) raises
:class:`repro.errors.SQLSyntaxError` with the offending position.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    ExistsExpr,
    FuncCall,
    InExpr,
    LikeExpr,
    Literal,
    SelectItem,
    SelectQuery,
    SqlExpr,
    SubqueryExpr,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize

_COMPARISONS = ("=", "<", "<=", ">", ">=", "<>", "!=")
_AGGREGATES = ("sum", "count", "avg", "min", "max")


def parse_sql(sql: str) -> SelectQuery:
    """Parse a single SELECT statement."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_select()
    parser.skip_semicolons()
    parser.expect_eof()
    return query


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise SQLSyntaxError(
                f"expected {'/'.join(n.upper() for n in names)}, found {token.text!r}",
                token.position,
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            found = self.peek()
            raise SQLSyntaxError(
                f"expected {text or kind}, found {found.text!r}", found.position
            )
        return token

    def skip_semicolons(self) -> None:
        while self.accept("SEMI"):
            pass

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "EOF":
            raise SQLSyntaxError(f"unexpected trailing input {token.text!r}", token.position)

    # -- grammar --------------------------------------------------------------
    def parse_select(self) -> SelectQuery:
        self.expect_keyword("select")
        query = SelectQuery()
        query.select, query.select_star = self._parse_select_list()
        self.expect_keyword("from")
        query.tables = self._parse_table_list()
        if self.accept_keyword("where"):
            query.where = self.parse_expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            query.group_by = self._parse_column_list()
        for unsupported in ("having", "order", "union", "limit"):
            if self.peek().is_keyword(unsupported):
                raise SQLSyntaxError(
                    f"{unsupported.upper()} is not supported by this SQL fragment",
                    self.peek().position,
                )
        return query

    def _parse_select_list(self) -> tuple[list[SelectItem], bool]:
        if self.peek().kind == "OP" and self.peek().text == "*":
            self.advance()
            return [], True
        items = [self._parse_select_item()]
        while self.accept("COMMA"):
            items.append(self._parse_select_item())
        return items, False

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect("IDENT").text
        elif self.peek().kind == "IDENT":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _parse_table_list(self) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while self.accept("COMMA"):
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        token = self.peek()
        if token.kind == "LPAREN":
            raise SQLSyntaxError(
                "subqueries in the FROM clause are not supported; materialize them "
                "as separate queries instead",
                token.position,
            )
        name = self.expect("IDENT").text
        alias = name
        if self.accept_keyword("as"):
            alias = self.expect("IDENT").text
        elif self.peek().kind == "IDENT":
            alias = self.advance().text
        return TableRef(name, alias)

    def _parse_column_list(self) -> list[ColumnRef]:
        columns = [self._parse_column_ref()]
        while self.accept("COMMA"):
            columns.append(self._parse_column_ref())
        return columns

    def _parse_column_ref(self) -> ColumnRef:
        first = self.expect("IDENT").text
        if self.accept("DOT"):
            second = self.expect("IDENT").text
            return ColumnRef(second, first)
        return ColumnRef(first)

    # -- expressions ----------------------------------------------------------------
    def parse_expr(self) -> SqlExpr:
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> SqlExpr:
        if self.peek().is_keyword("not"):
            if self.peek(1).is_keyword("exists"):
                self.advance()
                exists = self._parse_exists()
                return ExistsExpr(exists.subquery, negated=True)
            self.advance()
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        if self.peek().is_keyword("exists"):
            return self._parse_exists()
        left = self._parse_additive()

        negated = False
        if self.peek().is_keyword("not") and self.peek(1).is_keyword("in", "like", "between"):
            self.advance()
            negated = True

        token = self.peek()
        if token.kind == "OP" and token.text in _COMPARISONS:
            self.advance()
            right = self._parse_additive()
            return BinaryOp(token.text, left, right)
        if token.is_keyword("between"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            if negated:
                return UnaryOp("not", BetweenExpr(left, low, high))
            return BetweenExpr(left, low, high)
        if token.is_keyword("in"):
            self.advance()
            return self._parse_in(left, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.expect("STRING").text
            return LikeExpr(left, _unquote(pattern), negated=negated)
        if token.is_keyword("is"):
            raise SQLSyntaxError("IS [NOT] NULL is not supported (NULLs are out of scope)",
                                 token.position)
        return left

    def _parse_exists(self) -> ExistsExpr:
        self.expect_keyword("exists")
        self.expect("LPAREN")
        subquery = self.parse_select()
        self.expect("RPAREN")
        return ExistsExpr(subquery)

    def _parse_in(self, operand: SqlExpr, negated: bool) -> InExpr:
        self.expect("LPAREN")
        if self.peek().is_keyword("select"):
            subquery = self.parse_select()
            self.expect("RPAREN")
            return InExpr(operand, subquery=subquery, negated=negated)
        options = [self.parse_expr()]
        while self.accept("COMMA"):
            options.append(self.parse_expr())
        self.expect("RPAREN")
        return InExpr(operand, options=tuple(options), negated=negated)

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("+", "-"):
                self.advance()
                right = self._parse_multiplicative()
                left = BinaryOp(token.text, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("*", "/"):
                self.advance()
                right = self._parse_unary()
                left = BinaryOp(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> SqlExpr:
        token = self.peek()
        if token.kind == "OP" and token.text == "-":
            self.advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpr:
        token = self.peek()

        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)

        if token.kind == "STRING":
            self.advance()
            return Literal(_unquote(token.text))

        if token.is_keyword("date"):
            self.advance()
            self.expect("LPAREN")
            literal = self.expect("STRING")
            self.expect("RPAREN")
            return Literal(_unquote(literal.text))

        if token.is_keyword("case"):
            return self._parse_case()

        if token.is_keyword("exists"):
            return self._parse_exists()

        if token.is_keyword(*_AGGREGATES):
            return self._parse_aggregate()

        if token.kind == "LPAREN":
            self.advance()
            if self.peek().is_keyword("select"):
                subquery = self.parse_select()
                self.expect("RPAREN")
                return SubqueryExpr(subquery)
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner

        if token.kind == "IDENT":
            return self._parse_identifier()

        raise SQLSyntaxError(f"unexpected token {token.text!r}", token.position)

    def _parse_aggregate(self) -> FuncCall:
        name = self.advance().text.lower()
        self.expect("LPAREN")
        distinct = bool(self.accept_keyword("distinct"))
        if self.peek().kind == "OP" and self.peek().text == "*":
            self.advance()
            self.expect("RPAREN")
            return FuncCall(name, (), star=True, distinct=distinct)
        arg = self.parse_expr()
        self.expect("RPAREN")
        return FuncCall(name, (arg,), distinct=distinct)

    def _parse_case(self) -> CaseExpr:
        self.expect_keyword("case")
        operand: SqlExpr | None = None
        if not self.peek().is_keyword("when"):
            operand = self.parse_expr()
        branches: list[tuple[SqlExpr, SqlExpr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            if operand is not None:
                condition = BinaryOp("=", operand, condition)
            self.expect_keyword("then")
            value = self.parse_expr()
            branches.append((condition, value))
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        if not branches:
            raise SQLSyntaxError("CASE expression without WHEN branches", self.peek().position)
        return CaseExpr(tuple(branches), default)

    def _parse_identifier(self) -> SqlExpr:
        first = self.expect("IDENT").text
        if self.peek().kind == "LPAREN":
            self.advance()
            args: list[SqlExpr] = []
            if self.peek().kind != "RPAREN":
                args.append(self.parse_expr())
                while self.accept("COMMA"):
                    args.append(self.parse_expr())
            self.expect("RPAREN")
            return FuncCall(first.lower(), tuple(args))
        if self.accept("DOT"):
            column = self.expect("IDENT").text
            return ColumnRef(column, first)
        return ColumnRef(first)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")
