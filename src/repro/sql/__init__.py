"""SQL frontend: parse a practical SQL subset and translate it to AGCA.

The supported fragment covers what the paper's workload needs (and what the
released DBToaster parser accepted after the paper's own query rewrites):
select-project-join-aggregate queries with GROUP BY, arithmetic, AND/OR/NOT,
BETWEEN, IN, LIKE, CASE, EXISTS / NOT EXISTS and (correlated) scalar
subqueries.  Unsupported features (outer joins, NULLs, ORDER BY/LIMIT,
FROM-clause subqueries) raise :class:`repro.errors.SQLTranslationError`.
"""

from repro.sql.ast import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    ExistsExpr,
    FuncCall,
    InExpr,
    Literal,
    SelectItem,
    SelectQuery,
    SubqueryExpr,
    TableRef,
    UnaryOp,
)
from repro.sql.catalog import Catalog, TableSchema
from repro.sql.parser import parse_sql
from repro.sql.translate import TranslatedQuery, translate_query
from repro.sql.views import QueryView


def parse_sql_query(sql: str, catalog: "Catalog", name: str = "Q") -> "TranslatedQuery":
    """Parse ``sql`` and translate it to AGCA against ``catalog``."""
    return translate_query(parse_sql(sql), catalog, name=name)


__all__ = [
    "BinaryOp",
    "CaseExpr",
    "ColumnRef",
    "ExistsExpr",
    "FuncCall",
    "InExpr",
    "Literal",
    "SelectItem",
    "SelectQuery",
    "SubqueryExpr",
    "TableRef",
    "UnaryOp",
    "Catalog",
    "TableSchema",
    "parse_sql",
    "parse_sql_query",
    "TranslatedQuery",
    "translate_query",
    "QueryView",
]
