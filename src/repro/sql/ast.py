"""SQL abstract syntax tree.

The node set mirrors the supported fragment: a :class:`SelectQuery` with a
select list, FROM tables, an optional WHERE expression and an optional GROUP
BY list.  Scalar expressions cover literals, column references, arithmetic,
boolean connectives, comparisons, BETWEEN/IN/LIKE predicates, CASE, function
calls, EXISTS and scalar subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


class SqlExpr:
    """Base class for scalar / boolean SQL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(SqlExpr):
    """A number, string or date literal."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A (possibly qualified) column reference ``alias.column`` or ``column``."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(SqlExpr):
    """Arithmetic, comparison or boolean binary operator."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class UnaryOp(SqlExpr):
    """Unary minus or NOT."""

    op: str
    operand: SqlExpr


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    """A function call; aggregates (SUM/COUNT/AVG/MIN/MAX) use this node too."""

    name: str
    args: tuple[SqlExpr, ...]
    star: bool = False
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        """True for SQL aggregate functions."""
        return self.name.lower() in ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class CaseExpr(SqlExpr):
    """``CASE WHEN cond THEN value [WHEN ...] [ELSE value] END``."""

    branches: tuple[tuple[SqlExpr, SqlExpr], ...]
    default: Optional[SqlExpr] = None


@dataclass(frozen=True)
class InExpr(SqlExpr):
    """``expr [NOT] IN (values...)`` or ``expr [NOT] IN (subquery)``."""

    operand: SqlExpr
    options: tuple[SqlExpr, ...] = ()
    subquery: Optional["SelectQuery"] = None
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr(SqlExpr):
    """``expr [NOT] LIKE pattern``."""

    operand: SqlExpr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    """``expr BETWEEN low AND high``."""

    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr


@dataclass(frozen=True)
class ExistsExpr(SqlExpr):
    """``[NOT] EXISTS (subquery)``."""

    subquery: "SelectQuery"
    negated: bool = False


@dataclass(frozen=True)
class SubqueryExpr(SqlExpr):
    """A scalar subquery used as a value inside an expression."""

    subquery: "SelectQuery"


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with its alias (defaults to the table name)."""

    table: str
    alias: str


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list: an expression and an optional output name."""

    expr: SqlExpr
    alias: Optional[str] = None


@dataclass
class SelectQuery:
    """A parsed SELECT statement."""

    select: list[SelectItem] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: list[ColumnRef] = field(default_factory=list)
    select_star: bool = False

    def aggregates(self) -> list[FuncCall]:
        """All aggregate calls appearing in the select list."""
        found: list[FuncCall] = []
        for item in self.select:
            found.extend(collect_aggregates(item.expr))
        return found


def collect_aggregates(expr: SqlExpr) -> list[FuncCall]:
    """Aggregate function calls inside ``expr`` (not descending into subqueries)."""
    out: list[FuncCall] = []
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            out.append(expr)
            return out
        for arg in expr.args:
            out.extend(collect_aggregates(arg))
    elif isinstance(expr, BinaryOp):
        out.extend(collect_aggregates(expr.left))
        out.extend(collect_aggregates(expr.right))
    elif isinstance(expr, UnaryOp):
        out.extend(collect_aggregates(expr.operand))
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.branches:
            out.extend(collect_aggregates(condition))
            out.extend(collect_aggregates(value))
        if expr.default is not None:
            out.extend(collect_aggregates(expr.default))
    return out


SqlNode = Union[SqlExpr, SelectQuery, TableRef, SelectItem]
