"""SQL tokenizer.

A small regular-expression based scanner producing the token stream consumed
by :mod:`repro.sql.parser`.  Keywords are case-insensitive; identifiers keep
their original case but compare case-insensitively.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "as", "and", "or",
    "not", "in", "like", "between", "exists", "case", "when", "then", "else", "end",
    "sum", "count", "avg", "min", "max", "distinct", "date", "null", "is", "limit",
    "asc", "desc", "union", "all",
}

_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("COMMENT", r"--[^\n]*"),
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("STRING", r"'(?:[^']|'')*'"),
    ("OP", r"<=|>=|<>|!=|=|<|>|\+|-|\*|/"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("SEMI", r";"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        """Uppercased token text (keyword/identifier comparisons)."""
        return self.text.upper()

    def is_keyword(self, *names: str) -> bool:
        """True when the token is one of the given keywords (case-insensitive)."""
        return self.kind == "KEYWORD" and self.text.lower() in names


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``, raising :class:`SQLSyntaxError` on illegal characters."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {sql[position]!r}", position)
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            if kind == "IDENT" and text.lower() in KEYWORDS:
                kind = "KEYWORD"
            tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens


def iter_statements(sql: str) -> Iterator[str]:
    """Split a script on semicolons (naive; good enough for workload files)."""
    for piece in sql.split(";"):
        piece = piece.strip()
        if piece:
            yield piece
