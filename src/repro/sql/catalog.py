"""Schema catalog for the SQL frontend.

A :class:`Catalog` knows every table's ordered column list and which tables
are static (loaded once, never updated) versus streams.  Both the SQL
translation (to resolve column references) and the compiler (to build trigger
events) read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SQLTranslationError


@dataclass(frozen=True)
class TableSchema:
    """One table: its name, ordered columns, and whether it is static."""

    name: str
    columns: tuple[str, ...]
    static: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(c.lower() for c in self.columns))

    def has_column(self, column: str) -> bool:
        """True when ``column`` (case-insensitive) belongs to this table."""
        return column.lower() in self.columns


class Catalog:
    """A set of table schemas addressable case-insensitively."""

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    @classmethod
    def from_dict(
        cls, schemas: Mapping[str, Sequence[str]], static: Iterable[str] = ()
    ) -> "Catalog":
        """Build a catalog from ``{table: [columns]}`` plus a set of static tables."""
        static_set = {name.lower() for name in static}
        return cls(
            TableSchema(name, tuple(columns), static=name.lower() in static_set)
            for name, columns in schemas.items()
        )

    def add(self, table: TableSchema) -> None:
        """Register a table schema."""
        self._tables[table.name.lower()] = table

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def table(self, name: str) -> TableSchema:
        """Look up a table schema; raises when unknown."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SQLTranslationError(f"unknown table {name!r}") from None

    def schemas(self) -> dict[str, tuple[str, ...]]:
        """Relation -> ordered columns, in the form the compiler expects."""
        return {table.name: table.columns for table in self._tables.values()}

    def static_relations(self) -> tuple[str, ...]:
        """Names of the static tables."""
        return tuple(table.name for table in self._tables.values() if table.static)

    def stream_relations(self) -> tuple[str, ...]:
        """Names of the stream (updatable) tables."""
        return tuple(table.name for table in self._tables.values() if not table.static)
