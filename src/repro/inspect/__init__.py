"""Correctness observability: row provenance, view audit, physical explain.

PR 6's :mod:`repro.telemetry` answers "how fast is the system"; this package
answers "is it *right*, and why does a row have its value":

* :mod:`repro.inspect.provenance` — an opt-in, bounded per-view delta-history
  ring recording ``(version, key, old, new, cause)`` for every view mutation,
  so ``explain-row`` can replay the recent history of one key together with
  the stream events that caused each transition;
* :mod:`repro.inspect.auditor` — an online sampled checker that re-derives
  view rows from a from-scratch reference evaluation and compares them against
  the live incremental state, publishing drift counters into the metric
  registry (with an optional fail-fast mode);
* :mod:`repro.inspect.explain` — the physical-design explain report joining
  planned kernel IR (probe shapes per map, fusion structure, fallbacks) with
  observed telemetry (probe/scan counters, map sizes, trigger latency) — the
  input the ROADMAP's adaptive index/strategy selector consumes.

``python -m repro.inspect`` exposes ``explain`` and ``explain-row`` both
offline (replaying a synthetic stream) and against a running view server.
"""

from repro.inspect.auditor import AuditReport, ViewAuditor
from repro.inspect.explain import build_explain_report, render_explain_text
from repro.inspect.provenance import ProvenanceRecorder, cause_to_dict

__all__ = [
    "AuditReport",
    "ProvenanceRecorder",
    "ViewAuditor",
    "build_explain_report",
    "cause_to_dict",
    "render_explain_text",
]
