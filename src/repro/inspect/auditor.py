"""Online view auditing: sampled re-derivation against the reference oracle.

Incremental view maintenance is only worth trusting if its answers can be
checked *while it runs*.  :class:`ViewAuditor` mirrors the base relations it
observes (statics at load time, stream events at ingest time) into plain
multiset tables, and every ``check_every`` events re-derives a sample of view
rows from scratch with :func:`repro.runtime.reference.evaluate_reference` —
the same deliberately independent evaluator the test suite uses as its
correctness oracle — comparing them against the live incremental state.

The comparison contract matches the repository's exactness claims: values in
the exact regime (ints, Fractions, strings, booleans) must compare equal,
while floats are compared with a relative tolerance — incremental float sums
reassociate, so bit-identity is not a meaningful target there.

Small views (at most ``sample_rows`` live rows) are checked in full, both
directions, so dropped rows are caught too; larger views spot-check a
deterministic random sample of live keys with a key-bound reference
evaluation (cheap: the binding prunes the nested-loop join).  Drift is
counted, bounded divergence details are kept for reports, counters are
published into a :class:`~repro.telemetry.core.MetricRegistry`, and an
optional fail-fast mode raises :class:`~repro.errors.AuditError` on the
first divergence.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping, Sequence

from repro.compiler.program import MapDeclaration, TriggerProgram
from repro.core.values import is_zero
from repro.delta.events import StreamEvent
from repro.errors import AuditError
from repro.runtime.reference import evaluate_reference

#: Check cadence: audit once per this many ingested events.
DEFAULT_CHECK_EVERY = 256

#: Rows sampled per view per check (small views are checked in full).
DEFAULT_SAMPLE_ROWS = 8

#: Relative tolerance for float comparisons (exact types compare with ``==``).
FLOAT_RTOL = 1e-9

#: Divergence details retained for reports (counters are never truncated).
MAX_DIVERGENCES = 32


def values_match(expected: Any, actual: Any, rtol: float = FLOAT_RTOL) -> bool:
    """The audit comparison: exact for exact types, ``rtol`` for floats."""
    if isinstance(expected, float) or isinstance(actual, float):
        try:
            expected_f = float(expected)
            actual_f = float(actual)
        except (TypeError, ValueError):
            return False
        scale = max(abs(expected_f), abs(actual_f))
        return abs(expected_f - actual_f) <= rtol * max(scale, 1.0)
    return expected == actual


class AuditReport:
    """Outcome of one audit pass (and the shape of cumulative summaries)."""

    __slots__ = ("version", "views", "rows_checked", "divergences", "full")

    def __init__(self, version: int) -> None:
        self.version = version
        self.views: list[str] = []
        self.rows_checked = 0
        self.divergences: list[dict[str, Any]] = []
        self.full: list[str] = []

    @property
    def clean(self) -> bool:
        return not self.divergences

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "views": list(self.views),
            "rows_checked": self.rows_checked,
            "full": list(self.full),
            "clean": self.clean,
            "divergences": list(self.divergences),
        }


class ViewAuditor:
    """Re-derives sampled view rows from mirrored base tables and compares.

    The auditor must observe the *entire* data the engine has seen: call
    :meth:`observe_static` alongside every static load and :meth:`record`
    with every successfully applied event batch (the service does both under
    its ingest lock).  ``views`` defaults to every root query.
    """

    def __init__(
        self,
        program: TriggerProgram,
        views: Sequence[str] | None = None,
        check_every: int = DEFAULT_CHECK_EVERY,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        seed: int = 0,
        fail_fast: bool = False,
        float_rtol: float = FLOAT_RTOL,
        registry=None,
    ) -> None:
        if check_every < 1:
            raise AuditError(f"check_every must be >= 1, got {check_every}")
        if sample_rows < 1:
            raise AuditError(f"sample_rows must be >= 1, got {sample_rows}")
        self.program = program
        self.check_every = check_every
        self.sample_rows = sample_rows
        self.fail_fast = fail_fast
        self.float_rtol = float_rtol
        self.seed = seed
        self._rng = random.Random(seed)
        names = list(views) if views is not None else sorted(program.roots)
        self._decls: dict[str, MapDeclaration] = {}
        for name in names:
            if name in program.roots:
                self._decls[name] = program.root_map(name)
            elif name in program.maps:
                self._decls[name] = program.maps[name]
            else:
                raise AuditError(
                    f"unknown view {name!r}; available: {sorted(program.roots)}"
                )
        # Base-relation mirror: relation -> {values tuple -> multiplicity}.
        self._tables: dict[str, dict[tuple, Any]] = {
            relation: {} for relation in program.schemas
        }
        self.active = True
        self.inactive_reason: str | None = None
        self._events_since_check = 0
        # Cumulative counters (what the metric collector publishes).
        self.checks = 0
        self.rows_checked = 0
        self.drift_total = 0
        self.last_divergence_version: int | None = None
        self.divergences: list[dict[str, Any]] = []
        if registry is not None:
            registry.add_collector(self._collect)

    # -- telemetry ---------------------------------------------------------------
    def _collect(self, registry) -> None:
        registry.counter(
            "repro_audit_checks_total", help="Audit passes executed"
        ).value = self.checks
        registry.counter(
            "repro_audit_rows_checked_total",
            help="View rows re-derived from the reference oracle",
        ).value = self.rows_checked
        registry.counter(
            "repro_audit_drift_total",
            help="Audited rows whose live value diverged from the reference",
        ).value = self.drift_total
        registry.gauge(
            "repro_audit_active", help="1 while the auditor's mirror is trustworthy"
        ).set(1 if self.active else 0)
        if self.last_divergence_version is not None:
            registry.gauge(
                "repro_audit_last_divergence_version",
                help="Service version of the most recent divergence",
            ).set(self.last_divergence_version)

    # -- observing the data ------------------------------------------------------
    def _store(self, relation: str, values: tuple, delta: Any) -> None:
        table = self._tables[relation]
        total = table.get(values, 0) + delta
        if is_zero(total):
            table.pop(values, None)
        else:
            table[values] = total

    def observe_static(
        self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> None:
        """Mirror a static bulk load (call alongside ``engine.load_static``)."""
        columns = self.program.schemas[relation]
        for row in rows:
            if isinstance(row, Mapping):
                values = tuple(row[c] for c in columns)
            else:
                values = tuple(row)
            self._store(relation, values, 1)

    def record(self, events: Iterable[StreamEvent]) -> None:
        """Mirror one successfully applied event batch."""
        for event in events:
            self._store(event.relation, tuple(event.values), event.sign)
            self._events_since_check += 1

    # -- checking ----------------------------------------------------------------
    def due(self) -> bool:
        return self.active and self._events_since_check >= self.check_every

    def maybe_check(self, engine, version: int) -> AuditReport | None:
        """Run a check when one is due; returns its report (or ``None``)."""
        if not self.due():
            return None
        return self.check(engine, version)

    def _reference_tables(self) -> dict[str, list[tuple[dict, Any]]]:
        return {
            relation: [
                ({f"_{i}": v for i, v in enumerate(values)}, mult)
                for values, mult in table.items()
            ]
            for relation, table in self._tables.items()
        }

    def _reference_value(
        self, decl: MapDeclaration, key: tuple, tables
    ) -> Any:
        """Re-derive one view row: key-bound reference evaluation."""
        context = dict(zip(decl.keys, key))
        total: Any = 0
        for _, mult in evaluate_reference(decl.definition, tables, context):
            total = total + mult
        return total

    def check(self, engine, version: int | None = None) -> AuditReport:
        """Audit now: sampled (or full, for small views) re-derivation.

        ``engine`` is anything with ``result_dict``; call with the engine
        flushed and quiescent (the service holds its lock).  Raises
        :class:`AuditError` on divergence when ``fail_fast`` is set.
        """
        if not self.active:
            raise AuditError(
                f"auditor is inactive ({self.inactive_reason}); its mirror no "
                f"longer matches the engine"
            )
        if version is None:
            version = getattr(engine, "events_processed", 0)
        self._events_since_check = 0
        self.checks += 1
        report = AuditReport(version)
        tables = self._reference_tables()
        for view, decl in self._decls.items():
            report.views.append(view)
            live = engine.result_dict(view)
            if len(live) <= self.sample_rows:
                # Full bidirectional comparison: also catches dropped rows.
                report.full.append(view)
                expected_rows = evaluate_reference(decl.definition, tables)
                expected = {
                    tuple(row[k] for k in decl.keys): mult
                    for row, mult in expected_rows
                }
                keys = set(live) | set(expected)
                for key in sorted(keys, key=repr):
                    self._compare(
                        report, view, key,
                        expected.get(key, 0), live.get(key, 0), version,
                    )
            else:
                sampled = self._rng.sample(sorted(live, key=repr), self.sample_rows)
                for key in sampled:
                    self._compare(
                        report, view, key,
                        self._reference_value(decl, key, tables),
                        live[key], version,
                    )
        self.rows_checked += report.rows_checked
        if report.divergences and self.fail_fast:
            first = report.divergences[0]
            raise AuditError(
                f"view {first['view']!r} diverged at version {version}: "
                f"key {first['key']} is {first['actual']!r} live but "
                f"{first['expected']!r} by reference re-derivation"
            )
        return report

    def _compare(
        self, report: AuditReport, view: str, key: tuple,
        expected: Any, actual: Any, version: int,
    ) -> None:
        report.rows_checked += 1
        if values_match(expected, actual, self.float_rtol):
            return
        divergence = {
            "view": view,
            "key": list(key),
            "expected": expected,
            "actual": actual,
            "version": version,
        }
        report.divergences.append(divergence)
        self.drift_total += 1
        self.last_divergence_version = version
        if len(self.divergences) < MAX_DIVERGENCES:
            self.divergences.append(divergence)

    # -- summaries / durable state ----------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Cumulative audit counters (the service exposes this in ``stats``)."""
        return {
            "active": self.active,
            "inactive_reason": self.inactive_reason,
            "views": sorted(self._decls),
            "check_every": self.check_every,
            "sample_rows": self.sample_rows,
            "fail_fast": self.fail_fast,
            "checks": self.checks,
            "rows_checked": self.rows_checked,
            "drift_total": self.drift_total,
            "last_divergence_version": self.last_divergence_version,
            "divergences": list(self.divergences),
        }

    def state(self) -> dict[str, Any]:
        """Mirror plus counters, for the service checkpoint."""
        return {
            "tables": {
                relation: list(table.items())
                for relation, table in self._tables.items()
            },
            "checks": self.checks,
            "rows_checked": self.rows_checked,
            "drift_total": self.drift_total,
            "last_divergence_version": self.last_divergence_version,
            "seed": self.seed,
        }

    def restore(self, state: Mapping[str, Any] | None) -> None:
        """Reload a checkpointed mirror; ``None`` deactivates the auditor.

        A checkpoint without audit state cannot rebuild the base-relation
        mirror, so the auditor stops checking rather than comparing against
        a wrong reference.
        """
        if state is None:
            self.active = False
            self.inactive_reason = "restored a checkpoint without audit state"
            for table in self._tables.values():
                table.clear()
            return
        for table in self._tables.values():
            table.clear()
        for relation, items in state.get("tables", {}).items():
            if relation not in self._tables:
                continue
            self._tables[relation] = {
                tuple(values): mult for values, mult in items
            }
        self.checks = int(state.get("checks", 0))
        self.rows_checked = int(state.get("rows_checked", 0))
        self.drift_total = int(state.get("drift_total", 0))
        self.last_divergence_version = state.get("last_divergence_version")
        self._rng = random.Random(state.get("seed", self.seed))
        self._events_since_check = 0
        self.active = True
        self.inactive_reason = None
