"""Physical-design explain: planned kernels joined with observed behaviour.

``build_explain_report`` produces one ``repro.explain/1`` document for a
trigger program: the planned side comes from
:func:`repro.codegen.describe.describe_program` (probe shapes per map, fused
kernel structure, interpreter fallbacks with their reasons), and the observed
side from an engine's ``statistics()`` dictionary (map sizes, probe/scan
counters, codegen fallback hits, batching/partitioning counters) when one is
supplied.  The per-map ``maps`` section joins both: for every materialized
view, the access shapes the planner chose next to the probe/scan traffic the
live engine actually executed — the document the ROADMAP's adaptive
index/strategy selection consumes, and what ``python -m repro.inspect
explain`` prints.

Statistics from every engine mode normalize into the same observed shape:
single engines report their map table stats directly, batched engines add
fold counters, partitioned engines sum their per-partition map counters.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.codegen.describe import KERNELS_SCHEMA, describe_program
from repro.compiler.program import TriggerProgram

#: Schema tag of the explain document.
EXPLAIN_SCHEMA = "repro.explain/1"

#: Per-map observed counters carried into the joined section.
_MAP_COUNTERS = ("entries", "memory_bytes", "probes", "scans", "range_probes")


def _merge_map_stats(per_engine: list[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
    """Sum per-map counters across engines (the partitioned merge)."""
    merged: dict[str, dict[str, Any]] = {}
    for maps in per_engine:
        for name, stats in maps.items():
            agg = merged.setdefault(name, {key: 0 for key in _MAP_COUNTERS})
            for key in _MAP_COUNTERS:
                agg[key] += stats.get(key, 0)
    return merged


def _observed(statistics: Mapping[str, Any] | None) -> dict[str, Any] | None:
    """Normalize any engine mode's ``statistics()`` into one observed shape."""
    if statistics is None:
        return None
    observed: dict[str, Any] = {
        "events_processed": statistics.get("events_processed", 0),
        "memory_bytes": statistics.get("memory_bytes", 0),
    }
    if "maps" in statistics:
        observed["maps"] = {
            name: {key: stats.get(key, 0) for key in _MAP_COUNTERS}
            for name, stats in statistics["maps"].items()
        }
    elif "partitions" in statistics:
        partitions = statistics["partitions"]
        observed["maps"] = _merge_map_stats([p.get("maps", {}) for p in partitions])
        observed["partitioning"] = statistics.get("spec")
        observed["events_routed"] = statistics.get("events_routed")
        observed["events_broadcast"] = statistics.get("events_broadcast")
        for partition in partitions:
            if "codegen" in partition:
                observed["codegen"] = dict(partition["codegen"])
                break
            if "batching" in partition:
                observed["batching"] = dict(partition["batching"])
    if "codegen" in statistics:
        observed["codegen"] = dict(statistics["codegen"])
    if "batching" in statistics:
        observed["batching"] = dict(statistics["batching"])
    return observed


def build_explain_report(
    program: TriggerProgram,
    query: str | None = None,
    statistics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``repro.explain/1`` document: plan plus (optional) observation."""
    plan = describe_program(program)
    observed = _observed(statistics)
    observed_maps = (observed or {}).get("maps", {})
    joined: dict[str, dict[str, Any]] = {}
    for name, planned in plan["maps"].items():
        entry: dict[str, Any] = {
            "keys": planned["keys"],
            "level": planned["level"],
            "degree": planned["degree"],
            "access_shapes": planned["access_shapes"],
        }
        if name in observed_maps:
            entry["observed"] = observed_maps[name]
        joined[name] = entry
    return {
        "schema": EXPLAIN_SCHEMA,
        "query": query,
        "views": sorted(program.roots),
        "plan_schema": KERNELS_SCHEMA,
        "plan": plan,
        "maps": joined,
        "observed": observed,
    }


def _format_shapes(shapes: Mapping[str, int]) -> str:
    return (
        ", ".join(f"{shape}x{count}" for shape, count in sorted(shapes.items()))
        or "-"
    )


def render_explain_text(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of one explain report."""
    lines: list[str] = []
    plan = report["plan"]
    summary = plan["summary"]
    header = report.get("query") or "/".join(report["views"]) or "program"
    lines.append(
        f"explain {header} (views: {', '.join(report['views']) or '-'})"
    )
    lines.append(
        f"plan: {summary['compiled_statements']} statements compiled, "
        f"{summary['fallback_statements']} interpreter fallbacks; "
        f"{summary['fused_kernels']}/{summary['triggers']} triggers fused "
        f"({summary['deduped_probes']} probes, "
        f"{summary['deduped_scalars']} scalars deduped); "
        f"{summary.get('vectorized_statements', 0)} statements vectorizable"
    )
    lines.append("maps:")
    for name, entry in sorted(report["maps"].items()):
        keys = ", ".join(entry["keys"]) or "-"
        line = (
            f"  {name}[{keys}] level={entry['level']} degree={entry['degree']} "
            f"shapes: {_format_shapes(entry['access_shapes'])}"
        )
        observed = entry.get("observed")
        if observed is not None:
            line += (
                f" | observed entries={observed['entries']} "
                f"probes={observed['probes']} scans={observed['scans']} "
                f"range_probes={observed['range_probes']}"
            )
        lines.append(line)
    lines.append("triggers:")
    for trigger in plan["triggers"]:
        name = f"{trigger['relation']}:{'+' if trigger['op'] == 'insert' else '-'}"
        if trigger["fused"]:
            fusion = trigger["fusion"]
            lines.append(
                f"  {name} fused ({fusion['fused_statements']} statements, "
                f"{fusion['deduped_probes']} probes + "
                f"{fusion['deduped_scalars']} scalars deduped)"
            )
        else:
            lines.append(f"  {name} per-statement dispatch")
        for statement in trigger["statements"]:
            if not statement["compiled"]:
                lines.append(
                    f"    fallback {statement['target']}: "
                    f"{statement['fallback_reason']}"
                )
    observed = report.get("observed")
    if observed is not None:
        line = f"observed: events={observed['events_processed']}"
        codegen = observed.get("codegen")
        if codegen:
            line += (
                f" fallback_hits={codegen.get('fallback_hits', 0)}"
                f" fused_kernels={codegen.get('fused_kernels', 0)}"
            )
        batching = observed.get("batching")
        if batching:
            line += (
                f" bulk_events={batching.get('bulk_events', 0)}"
                f" fallback_events={batching.get('fallback_events', 0)}"
            )
            if batching.get("backend", "scalar") != "scalar" or batching.get(
                "vector_reason"
            ):
                line += (
                    f" backend={batching.get('backend_active', batching['backend'])}"
                    f" vector_events={batching.get('vector_events', 0)}"
                )
                fallbacks = batching.get("vector_fallbacks") or {}
                if fallbacks:
                    detail = ",".join(
                        f"{reason}x{count}"
                        for reason, count in sorted(fallbacks.items())
                    )
                    line += f" vector_fallbacks={detail}"
                if batching.get("vector_reason"):
                    line += f" vector_disabled={batching['vector_reason']!r}"
        if "partitioning" in observed and observed["partitioning"]:
            line += f" partitions={observed['partitioning'].get('partitions')}"
        lines.append(line)
    else:
        lines.append("observed: (no runtime statistics; plan only)")
    return "\n".join(lines)
