"""Row provenance: bounded per-view mutation-history rings.

A :class:`ProvenanceRecorder` hangs one watcher off every tracked view's
:class:`~repro.runtime.maps.IndexedTable`.  All table mutations — including
those issued by fused/compiled kernels, which bind the table's ``add`` method
directly — funnel through ``add``/``set``/``replace``/``clear``, so the
watcher sees every actual value transition exactly once.  Each transition is
appended to a per-view ``deque(maxlen=depth)`` as a compact tuple::

    (version, key, old, new, cause)

On the hot path ``key`` is the table's immutable ``Row`` itself; the read
paths (:meth:`ProvenanceRecorder.history` / :meth:`ProvenanceRecorder.state`)
convert it to a value tuple in table-column order, so recording costs one
tuple pack plus one deque append per transition.

``version`` is the engine's event count *after* the causing event (the same
version the service stamps on snapshots); ``cause`` identifies what drove the
mutation:

* ``("event", relation, op, values)`` — one stream event (per-event engines);
* ``("fold", relation, op, events, tuples)`` — a batched delta group: the
  bulk path applies a fold of ``events`` events collapsed into ``tuples``
  distinct delta tuples, so individual transitions attribute to the fold, not
  to a single event (the documented batching attribution rule);
* ``("restore", version)`` — state swapped in by a checkpoint restore.

The ring is bounded and opt-in: a disabled engine pays nothing, an enabled
one pays one ``None`` check per table write plus one deque append per actual
transition.  Ring contents checkpoint and restore with the engine
(:meth:`state` / :meth:`restore`), so ``explain-row`` keeps working across a
service restart.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Mapping

from repro.errors import RuntimeEngineError

#: Default ring depth: recent-history replay, not an unbounded audit log.
DEFAULT_DEPTH = 64

Cause = tuple
Entry = tuple  # (version, key, old, new, cause)


def cause_to_dict(cause: Cause | None) -> dict[str, Any] | None:
    """Expand a compact cause tuple into the wire/CLI representation."""
    if cause is None:
        return None
    kind = cause[0]
    if kind == "event":
        return {
            "kind": "event",
            "relation": cause[1],
            "op": cause[2],
            "values": list(cause[3]),
        }
    if kind == "fold":
        return {
            "kind": "fold",
            "relation": cause[1],
            "op": cause[2],
            "events": cause[3],
            "tuples": cause[4],
        }
    if kind == "restore":
        return {"kind": "restore", "version": cause[1]}
    return {"kind": str(kind)}


def entry_to_dict(entry: Entry) -> dict[str, Any]:
    """One ring entry in the wire/CLI representation."""
    version, key, old, new, cause = entry
    return {
        "version": version,
        "key": list(key),
        "old": old,
        "new": new,
        "cause": cause_to_dict(cause),
    }


class ProvenanceRecorder:
    """Per-view mutation-history rings for one engine.

    The engine sets :attr:`cause` and :attr:`version` before executing each
    event (or each batched fold) and the table watchers stamp them onto every
    transition they observe.  ``views`` maps view names to their backing
    table columns; entries key by the value tuple in table-column order (the
    same order ``result_dict`` and checkpoints use).
    """

    __slots__ = ("depth", "columns", "rings", "cause", "version", "_positions")

    def __init__(self, views: Mapping[str, tuple[str, ...]], depth: int = DEFAULT_DEPTH) -> None:
        if depth <= 0:
            raise RuntimeEngineError(f"provenance depth must be positive, got {depth}")
        self.depth = int(depth)
        self.columns = {name: tuple(cols) for name, cols in views.items()}
        self.rings: dict[str, deque] = {
            name: deque(maxlen=self.depth) for name in self.columns
        }
        # Rows store values name-sorted; ring keys are in table-column order.
        # The permutation is applied lazily at read time (the hot path stores
        # the immutable Row itself), so it is resolved once here.
        self._positions: dict[str, tuple[int, ...] | None] = {}
        for name, cols in self.columns.items():
            sorted_cols = tuple(sorted(cols))
            self._positions[name] = (
                None
                if sorted_cols == cols
                else tuple(sorted_cols.index(column) for column in cols)
            )
        self.cause: Cause | None = None
        self.version = 0

    # -- recording --------------------------------------------------------------
    def watcher_for(self, view: str) -> Callable[[Any, Any, Any], None]:
        """The table watcher feeding one view's ring.

        This closure runs once per view mutation on the engine's hot path,
        so it does the minimum: pack and append.  The key stays the table's
        immutable :class:`~repro.core.rows.Row`; converting it to a value
        tuple in table-column order is deferred to :meth:`history` /
        :meth:`state` (the cold read paths).
        """
        append = self.rings[view].append

        def watch(row, old, new) -> None:
            append((self.version, row, old, new, self.cause))

        return watch

    def _key_tuple(self, view: str, key: Any) -> tuple:
        """One ring entry's key as a value tuple in table-column order.

        Restored entries already carry plain tuples; live entries carry the
        Row the table keyed by (exactly the view's columns, name-sorted).
        """
        if isinstance(key, tuple):
            return key
        values = key.values_sorted()
        positions = self._positions[view]
        if positions is None:
            return values
        return tuple(values[p] for p in positions)

    def set_cause(self, cause: Cause | None, version: int) -> None:
        self.cause = cause
        self.version = version

    # -- reading ----------------------------------------------------------------
    def views(self) -> tuple[str, ...]:
        return tuple(self.rings)

    def history(self, view: str, key: Iterable[Any] | None = None) -> list[Entry]:
        """Ring entries for one view, oldest first; optionally one key only."""
        ring = self.rings.get(view)
        if ring is None:
            raise RuntimeEngineError(
                f"provenance is not tracking view {view!r}; tracked: {sorted(self.rings)}"
            )
        entries = [
            (version, self._key_tuple(view, key_), old, new, cause)
            for version, key_, old, new, cause in ring
        ]
        if key is None:
            return entries
        wanted = tuple(key)
        return [entry for entry in entries if entry[1] == wanted]

    # -- durable state ----------------------------------------------------------
    def state(self) -> dict[str, Any]:
        """Ring contents plus configuration, for the engine checkpoint."""
        return {
            "depth": self.depth,
            "views": {name: list(cols) for name, cols in self.columns.items()},
            "rings": {name: self.history(name) for name in self.rings},
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Reload ring contents saved by :meth:`state` (views must match)."""
        for name, entries in state.get("rings", {}).items():
            ring = self.rings.get(name)
            if ring is None:
                continue  # the restored program stopped tracking this view
            ring.clear()
            ring.extend(tuple(entry) for entry in entries)
