"""Command-line entry point for correctness observability.

Explain the physical design of a workload query offline (optionally replaying
a synthetic stream first, so observed probe/scan counters appear)::

    python -m repro.inspect explain Q3 --events 2000
    python -m repro.inspect explain Q3 --json

Ask a running view server instead (its live statistics are joined in)::

    python -m repro.inspect explain --host 127.0.0.1 --port 7641

Replay the recent provenance history of one view row against a server that
runs with ``--provenance-depth``::

    python -m repro.inspect explain-row Q3_revenue --key '"1995-03-05",42,0' \\
        --host 127.0.0.1 --port 7641

Key parts are JSON values separated by commas (bare words pass through as
strings, so ``--key BUILDING,42`` works too).
"""

from __future__ import annotations

import argparse
import json
from typing import Any

from repro.errors import ReproError


def _parse_key(text: str | None) -> list[Any] | None:
    """``--key`` value: comma-separated JSON scalars (bare words = strings)."""
    if text is None:
        return None
    parts: list[Any] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        try:
            parts.append(json.loads(chunk))
        except json.JSONDecodeError:
            parts.append(chunk)
    return parts


def _offline_report(args: argparse.Namespace) -> dict[str, Any]:
    """Compile one workload query and (optionally) replay events through it."""
    from repro.bench.scenarios import _prepare
    from repro.codegen.engine import CompiledEngine
    from repro.compiler.hoivm import compile_query
    from repro.inspect.explain import build_explain_report
    from repro.workloads import workload

    spec = workload(args.query)
    translated = spec.query_factory()
    program = compile_query(
        translated.roots(),
        translated.schemas(),
        static_relations=translated.static_relations(),
    )
    statistics = None
    if args.events > 0:
        agenda, static = _prepare(
            spec, events=args.events, scale=args.scale, seed=args.seed
        )
        engine = CompiledEngine(program)
        for relation, rows in (static or {}).items():
            engine.load_static(relation, rows)
        for event in agenda:
            engine.apply(event)
        statistics = engine.statistics()
    return build_explain_report(program, query=spec.name, statistics=statistics)


def _remote_report(args: argparse.Namespace) -> dict[str, Any]:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        return client.explain(getattr(args, "query", None))


def _run_explain(args: argparse.Namespace) -> int:
    from repro.inspect.explain import render_explain_text

    if args.host is not None:
        report = _remote_report(args)
    else:
        if args.query is None:
            raise SystemExit("explain: name a query, or point at a server with --host")
        report = _offline_report(args)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_explain_text(report))
    return 0


def _format_history(report: dict[str, Any]) -> str:
    lines = [
        f"view {report['view']} (map {report['map']}, "
        f"columns [{', '.join(report['columns'])}], depth {report['depth']})"
    ]
    if report.get("key") is not None:
        current = report.get("current")
        lines.append(f"key {report['key']!r}: current value {current!r}")
    history = report["history"]
    if not history:
        lines.append("  (no recorded mutations in the ring)")
    for entry in history:
        cause = entry["cause"] or {}
        kind = cause.get("kind", "?")
        if kind == "event":
            origin = f"{cause['op']} {cause['relation']}{tuple(cause['values'])!r}"
        elif kind == "fold":
            origin = (
                f"fold {cause['op']} {cause['relation']} "
                f"({cause['events']} events / {cause['tuples']} tuples)"
            )
        elif kind == "restore":
            origin = f"checkpoint restore (version {cause.get('version')})"
        else:
            origin = kind
        where = f" [p{entry['partition']}]" if "partition" in entry else ""
        lines.append(
            f"  v{entry['version']}{where} {tuple(entry['key'])!r}: "
            f"{entry['old']!r} -> {entry['new']!r}  <- {origin}"
        )
    return "\n".join(lines)


def _run_explain_row(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        report = client.explain_row(args.view, _parse_key(args.key))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(_format_history(report))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.inspect",
        description="Row provenance and physical-design explain.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explain = sub.add_parser(
        "explain", help="physical-design report: planned kernels + observed stats"
    )
    explain.add_argument("query", nargs="?", default=None,
                         help="workload query (see: python -m repro.bench list)")
    explain.add_argument("--events", type=int, default=0,
                         help="replay this many synthetic events first, so the "
                              "report includes observed probe/scan counters")
    explain.add_argument("--scale", type=float, default=0.05,
                         help="synthetic data scale factor for --events")
    explain.add_argument("--seed", type=int, default=7,
                         help="stream generator seed for --events")
    explain.add_argument("--host", default=None,
                         help="explain a running view server instead")
    explain.add_argument("--port", type=int, default=7641)
    explain.add_argument("--json", action="store_true",
                         help="emit the repro.explain/1 document as JSON")

    row = sub.add_parser(
        "explain-row", help="recent provenance history of one view row (remote)"
    )
    row.add_argument("view", nargs="?", default=None,
                     help="view name (defaults to the single served view)")
    row.add_argument("--key", default=None,
                     help="comma-separated key values (JSON scalars)")
    row.add_argument("--host", default="127.0.0.1")
    row.add_argument("--port", type=int, default=7641)
    row.add_argument("--json", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "explain":
            return _run_explain(args)
        if args.command == "explain-row":
            return _run_explain_row(args)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
