"""Map data structures for materialized views (Sections 5.2 and 7.1).

The generated C++/Scala runtimes of the paper store views in multi-indexed
map containers (Boost Multi-Index): a primary index over the full key plus
secondary hash indexes for every binding pattern occurring in the trigger
program.  :class:`IndexedTable` reproduces that design in Python: a primary
``dict`` keyed by the full key row plus lazily created, incrementally
maintained secondary indexes keyed by column subsets, and — for the
comparison-guarded nested aggregates of the financial workload — ordered
range indexes (:mod:`repro.runtime.ordered`) answering
``sum(value) where column op cutoff`` probes through :meth:`IndexedTable.range_sum`.

:class:`MapStore` is the collection of all materialized views of one engine,
and :class:`ViewCache` implements the paper's view-cache data structure for
expressions with input variables (multiple full view copies, one per input
valuation, updated rather than invalidated on change).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.core.values import comparison_holds, is_zero, normalize_number
from repro.errors import RuntimeEngineError
from repro.runtime.ordered import OrderedRangeIndex


class IndexedTable:
    """A mutable map from key rows to numeric values with secondary indexes."""

    __slots__ = (
        "columns", "_data", "_indexes", "_ordered", "probes", "scans",
        "range_probes", "_watcher", "write_epoch", "_dirty", "_dirty_full",
        "_vector_cache",
    )

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._data: dict[Row, Any] = {}
        self._indexes: dict[frozenset[str], dict[Row, dict[Row, Any]]] = {}
        self._ordered: dict[str, OrderedRangeIndex] = {}
        # Always-on access counters (plain int increments); the telemetry
        # registry pulls them in at scrape time via a collector.  Generated
        # kernels probe ``primary`` directly and are accounted at the kernel
        # level instead.
        self.probes = 0
        self.scans = 0
        self.range_probes = 0
        # Optional mutation hook ``watcher(row, old, new)``, called once per
        # actual value transition (never on no-ops).  All writes — including
        # those issued by generated kernels, which bind ``add`` as a method —
        # funnel through add/set/replace/clear, so this one slot observes
        # every mutation at the cost of a single None check.
        self._watcher: Callable[[Row, Any, Any], None] | None = None
        # Monotone write epoch: bumped once per actual value transition
        # (wholesale swaps count as one).  Incremental checkpoints compare
        # epochs across cuts to skip maps that have not changed at all.
        self.write_epoch = 0
        # Dirty-key tracking for incremental checkpoints: None when off;
        # while on, every transitioned key row is recorded.  Wholesale swaps
        # (clear/replace) set _dirty_full instead of enumerating rows.
        self._dirty: set[Row] | None = None
        self._dirty_full = False
        # Columnar-view cache for the vector backend: ``(write_epoch, payload)``
        # pairs owned by repro.codegen.vector, invalidated by epoch comparison
        # (the epoch bumps on every actual value transition).
        self._vector_cache: tuple | None = None

    # -- basic access -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def items(self) -> Iterator[tuple[Row, Any]]:
        """Iterate over ``(key row, value)`` pairs."""
        return iter(self._data.items())

    def get(self, key: Row | Mapping[str, Any] | Sequence[Any], default: Any = 0) -> Any:
        """Value stored under ``key`` (0 when absent)."""
        self.probes += 1
        return self._data.get(self._normalize(key), default)

    def to_gmr(self) -> GMR:
        """A snapshot of the table contents as a GMR."""
        return GMR(self._data)

    @property
    def primary(self) -> Mapping[Row, Any]:
        """The primary ``full key row -> value`` dictionary.

        Exposed (read-only by convention) for generated trigger code, which
        probes bound keys directly instead of going through :meth:`scan`.
        The dictionary object is replaced wholesale by :meth:`clear` /
        :meth:`replace`, so callers must re-read this property per use rather
        than caching it across mutations.
        """
        return self._data

    def index_for(self, columns: frozenset[str]) -> Mapping[Row, Mapping[Row, Any]]:
        """The secondary index over ``columns`` (built on first use).

        Buckets map the projected key row to the full ``key row -> value``
        entries sharing that projection; empty buckets are pruned eagerly.
        This is the partially-bound probe used by generated trigger code.
        """
        return self._ensure_index(columns)

    # -- normalization --------------------------------------------------------
    def _normalize(self, key: Row | Mapping[str, Any] | Sequence[Any]) -> Row:
        if isinstance(key, Row):
            return key
        if isinstance(key, Mapping):
            return Row(key)
        values = tuple(key)
        if len(values) != len(self.columns):
            raise RuntimeEngineError(
                f"key of arity {len(values)} for table with columns {self.columns}"
            )
        return Row(zip(self.columns, values))

    # -- mutation ---------------------------------------------------------------
    def set_watcher(self, watcher: Callable[[Row, Any, Any], None] | None) -> None:
        """Install (or remove, with None) the mutation watcher."""
        self._watcher = watcher

    # -- dirty-key tracking (incremental checkpoints) -------------------------
    @property
    def dirty_tracking(self) -> bool:
        """True while dirty keys are being recorded."""
        return self._dirty is not None

    def begin_dirty_tracking(self) -> None:
        """Start (or restart) recording keys whose values transition."""
        self._dirty = set()
        self._dirty_full = False

    def collect_dirty(self) -> tuple[str, list[Row]]:
        """Drain the dirty set and keep tracking from a fresh cut.

        Returns ``(mode, rows)``:

        * ``("clean", [])`` — no transition since the last cut;
        * ``("changed", rows)`` — exactly these keys transitioned (their
          current values — or absence — fully describe the change);
        * ``("full", [])`` — a wholesale swap (:meth:`replace` /
          :meth:`clear`) happened, or tracking was never begun: the caller
          must treat the whole table as changed.
        """
        if self._dirty is None:
            return ("full", [])
        if self._dirty_full:
            self._dirty = set()
            self._dirty_full = False
            return ("full", [])
        rows = list(self._dirty)
        self._dirty = set()
        return ("changed", rows) if rows else ("clean", [])

    def end_dirty_tracking(self) -> None:
        """Stop recording dirty keys."""
        self._dirty = None
        self._dirty_full = False

    def add(self, key: Row | Mapping[str, Any] | Sequence[Any], delta: Any) -> None:
        """Add ``delta`` to the value stored under ``key`` (removing zeros)."""
        if is_zero(delta):
            return
        row = self._normalize(key)
        old = self._data.get(row)
        new = normalize_number((old or 0) + delta)
        if is_zero(new):
            if old is not None:
                del self._data[row]
                self._index_remove(row)
                if self._ordered:
                    self._ordered_change(row, old, None)
                self.write_epoch += 1
                if self._dirty is not None:
                    self._dirty.add(row)
                if self._watcher is not None:
                    self._watcher(row, old, 0)
        else:
            self._data[row] = new
            if old is None:
                self._index_add(row)
            else:
                self._index_update(row, new)
            if self._ordered:
                self._ordered_change(row, old, new)
            self.write_epoch += 1
            if self._dirty is not None:
                self._dirty.add(row)
            if self._watcher is not None:
                self._watcher(row, 0 if old is None else old, new)

    def set(self, key: Row | Mapping[str, Any] | Sequence[Any], value: Any) -> None:
        """Overwrite the value stored under ``key`` (removing it when zero)."""
        row = self._normalize(key)
        old = self._data.pop(row, None)
        if old is not None:
            self._index_remove(row)
        if is_zero(value):
            if old is not None:
                if self._ordered:
                    self._ordered_change(row, old, None)
                self.write_epoch += 1
                if self._dirty is not None:
                    self._dirty.add(row)
                if self._watcher is not None:
                    self._watcher(row, old, 0)
            return
        new = normalize_number(value)
        self._data[row] = new
        self._index_add(row)
        if self._ordered:
            self._ordered_change(row, old, new)
        if old is None or old != new or type(old) is not type(new):
            self.write_epoch += 1
            if self._dirty is not None:
                self._dirty.add(row)
            if self._watcher is not None:
                self._watcher(row, 0 if old is None else old, new)

    def set_total(self, key: Row | Mapping[str, Any] | Sequence[Any], value: Any) -> None:
        """Overwrite one key's total with *add-shaped* index maintenance.

        The vector backend commits per-key chain totals through this method:
        semantically :meth:`set` (store the normalized value, delete on
        zero), but an existing entry is updated in place in its secondary
        index buckets — like a chain of :meth:`add` calls would — instead of
        being removed and re-appended, so bucket iteration order stays
        bit-identical to the scalar path.
        """
        row = self._normalize(key)
        old = self._data.get(row)
        if is_zero(value):
            if old is not None:
                del self._data[row]
                self._index_remove(row)
                if self._ordered:
                    self._ordered_change(row, old, None)
                self.write_epoch += 1
                if self._dirty is not None:
                    self._dirty.add(row)
                if self._watcher is not None:
                    self._watcher(row, old, 0)
            return
        new = normalize_number(value)
        self._data[row] = new
        if old is None:
            self._index_add(row)
        else:
            self._index_update(row, new)
        if self._ordered:
            self._ordered_change(row, old, new)
        if old is None or old != new or type(old) is not type(new):
            self.write_epoch += 1
            if self._dirty is not None:
                self._dirty.add(row)
            if self._watcher is not None:
                self._watcher(row, 0 if old is None else old, new)

    def replace(self, entries: Iterable[tuple[Row | Sequence[Any], Any]]) -> None:
        """Replace the entire contents (used by ``:=`` re-evaluation statements)."""
        watcher = self._watcher
        old_data = self._data if watcher is not None else None
        had_entries = bool(self._data)
        self._data = {}
        self._indexes = {}
        self._ordered = {}
        for key, value in entries:
            if is_zero(value):
                continue
            row = self._normalize(key)
            self._data[row] = normalize_number(self._data.get(row, 0) + value)
            if is_zero(self._data[row]):
                del self._data[row]
        # Secondary and ordered indexes are rebuilt lazily on the next probe.
        if had_entries or self._data:
            self.write_epoch += 1
            if self._dirty is not None:
                self._dirty_full = True
        if watcher is not None:
            self._diff_into_watcher(old_data, watcher)

    def clear(self) -> None:
        """Remove every entry."""
        watcher = self._watcher
        old_data = self._data if watcher is not None else None
        if self._data:
            self.write_epoch += 1
            if self._dirty is not None:
                self._dirty_full = True
        self._data = {}
        self._indexes = {}
        self._ordered = {}
        if watcher is not None:
            self._diff_into_watcher(old_data, watcher)

    def _diff_into_watcher(
        self, old_data: Mapping[Row, Any], watcher: Callable[[Row, Any, Any], None]
    ) -> None:
        """Report wholesale-swap transitions (:meth:`replace` / :meth:`clear`)."""
        new_data = self._data
        for row, old in old_data.items():
            new = new_data.get(row, 0)
            if old != new or type(old) is not type(new):
                watcher(row, old, new)
        for row, new in new_data.items():
            if row not in old_data:
                watcher(row, 0, new)

    # -- scans ---------------------------------------------------------------------
    def scan(self, bound: Mapping[str, Any]) -> Iterator[tuple[Row, Any]]:
        """Yield entries whose key agrees with ``bound`` (a column->value mapping)."""
        self.scans += 1
        if not bound:
            yield from self._data.items()
            return
        columns = frozenset(bound)
        if columns == frozenset(self.columns):
            row = Row(bound)
            value = self._data.get(row)
            if value is not None:
                yield row, value
            return
        unknown = columns - frozenset(self.columns)
        if unknown:
            raise RuntimeEngineError(
                f"scan on unknown columns {sorted(unknown)}; table has {self.columns}"
            )
        index = self._ensure_index(columns)
        bucket = index.get(Row(bound))
        if bucket:
            yield from bucket.items()

    # -- ordered range indexes ---------------------------------------------------
    def range_index(self, column: str) -> OrderedRangeIndex:
        """The ordered range index over ``column`` (created empty on first use).

        The index fills itself from the table lazily, on the first
        :meth:`range_sum` probe; after :meth:`clear` / :meth:`replace` (and
        therefore after an engine ``restore_state``) the dictionary is simply
        dropped and the next probe rebuilds — the same lazy contract as the
        hash secondary indexes.
        """
        index = self._ordered.get(column)
        if index is None:
            if column not in self.columns:
                raise RuntimeEngineError(
                    f"range index on unknown column {column!r}; table has {self.columns}"
                )
            index = OrderedRangeIndex(column, sorted(self.columns).index(column))
            self._ordered[column] = index
        return index

    def range_sum(self, column: str, op: str, cutoff: Any, chain: bool = True) -> Any:
        """Exact ``sum(value) where column op cutoff`` over this table.

        This is the probe behind comparison-guarded nested aggregates
        (``SUM(x) WHERE col > c`` and the ``>= / < / <=`` variants).  The
        answer is bit-identical — value *and* type — to what the AGCA
        evaluator computes by scanning: the ordered index serves it in
        O(log n) while every stored value is an int/Fraction, and an in-order
        scan takes over whenever floats (or unorderable keys) make reordered
        summation unsafe.

        ``chain=True`` reproduces the GMR aggregation chain used by
        ``AggSum`` (running zero-drop and normalization per step);
        ``chain=False`` reproduces the plain summation of
        ``total_multiplicity`` used by ``Exists``.  In the exact regime both
        agree, which is the only regime the index answers in.
        """
        self.range_probes += 1
        index = self.range_index(column)
        if index.wants_rebuild:
            index.rebuild(self._data.items())
        value = index.probe(op, cutoff)
        if value is not None:
            return value
        index.scan_fallbacks += 1
        position = index.key_pos
        total: Any = 0
        if chain:
            for row, stored in self._data.items():
                if comparison_holds(row._items[position][1], op, cutoff):
                    candidate = total + stored
                    total = 0 if is_zero(candidate) else normalize_number(candidate)
            return total
        for row, stored in self._data.items():
            if comparison_holds(row._items[position][1], op, cutoff):
                total = total + stored
        return normalize_number(total)

    def _ordered_change(self, row: Row, old: Any, new: Any) -> None:
        items = row._items
        for index in self._ordered.values():
            index.change(items[index.key_pos][1], old, new)

    # -- secondary indexes ------------------------------------------------------------
    def _ensure_index(self, columns: frozenset[str]) -> dict[Row, dict[Row, Any]]:
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row, value in self._data.items():
                index.setdefault(row.project(columns), {})[row] = value
            self._indexes[columns] = index
        return index

    def _index_add(self, row: Row) -> None:
        value = self._data[row]
        for columns, index in self._indexes.items():
            index.setdefault(row.project(columns), {})[row] = value

    def _index_update(self, row: Row, value: Any) -> None:
        for columns, index in self._indexes.items():
            index.setdefault(row.project(columns), {})[row] = value

    def _index_remove(self, row: Row) -> None:
        for columns, index in self._indexes.items():
            projected = row.project(columns)
            bucket = index.get(projected)
            if bucket is not None:
                bucket.pop(row, None)
                if not bucket:
                    del index[projected]

    # -- accounting ----------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Rough resident size of the primary data (keys + values), in bytes."""
        total = sys.getsizeof(self._data)
        for row, value in self._data.items():
            total += sys.getsizeof(value) + 64 * max(len(row), 1)
        return total

    def index_stats(self) -> dict[str, dict[str, int]]:
        """Entry/bucket/memory counts per secondary index, keyed by its columns."""
        out: dict[str, dict[str, int]] = {}
        for columns, index in self._indexes.items():
            entries = sum(len(bucket) for bucket in index.values())
            memory = sys.getsizeof(index) + sum(
                sys.getsizeof(bucket) for bucket in index.values()
            )
            out[",".join(sorted(columns))] = {
                "buckets": len(index),
                "entries": entries,
                "memory_bytes": memory,
            }
        return out

    def ordered_index_stats(self) -> dict[str, dict[str, object]]:
        """Probe/rebuild/regime statistics per ordered range index, by column."""
        return {column: index.stats() for column, index in self._ordered.items()}

    def stats(self) -> dict[str, object]:
        """Entry count, memory and secondary-index statistics for this table."""
        out: dict[str, object] = {
            "entries": len(self._data),
            "memory_bytes": self.memory_bytes(),
            "probes": self.probes,
            "scans": self.scans,
            "range_probes": self.range_probes,
            "indexes": self.index_stats(),
        }
        if self._ordered:
            out["ordered_indexes"] = self.ordered_index_stats()
        return out


class MapStore:
    """All materialized views of one engine, addressable by name."""

    __slots__ = ("_tables",)

    def __init__(self) -> None:
        self._tables: dict[str, IndexedTable] = {}

    def declare(self, name: str, columns: Sequence[str]) -> IndexedTable:
        """Create (or return) the table backing map ``name``."""
        table = self._tables.get(name)
        if table is None:
            table = IndexedTable(columns)
            self._tables[name] = table
        return table

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> IndexedTable:
        """The table backing map ``name`` (raises if undeclared)."""
        try:
            return self._tables[name]
        except KeyError:
            raise RuntimeEngineError(f"unknown map {name!r}") from None

    def names(self) -> tuple[str, ...]:
        """All declared map names."""
        return tuple(self._tables)

    # -- DataSource protocol (map side) --------------------------------------
    def map_columns(self, name: str) -> tuple[str, ...]:
        return self.table(name).columns

    def scan_map(self, name: str, bound: Mapping[str, Any]) -> Iterator[tuple[Row, Any]]:
        return self.table(name).scan(bound)

    # -- accounting -------------------------------------------------------------
    def sizes(self) -> dict[str, int]:
        """Entry counts per map."""
        return {name: len(table) for name, table in self._tables.items()}

    def memory_bytes(self) -> int:
        """Approximate total resident size of all maps."""
        return sum(table.memory_bytes() for table in self._tables.values())

    def stats(self) -> dict[str, dict[str, object]]:
        """Per-map entry/memory/secondary-index statistics."""
        return {name: table.stats() for name, table in self._tables.items()}


class ViewCache:
    """The paper's view cache: one materialized view copy per input valuation.

    A view cache materializes an expression with input variables.  Lookups
    bind the input variables; on a miss the supplied ``compute`` callback
    evaluates the defining expression for that valuation and the result is
    cached.  Unlike an ordinary cache, entries are never invalidated: when the
    underlying data changes the caller *updates* every cached copy through
    :meth:`update_all`.
    """

    def __init__(
        self,
        input_variables: Sequence[str],
        output_columns: Sequence[str],
        compute: Callable[[Mapping[str, Any]], Iterable[tuple[Row, Any]]],
    ) -> None:
        self.input_variables = tuple(input_variables)
        self.output_columns = tuple(output_columns)
        self._compute = compute
        self._entries: dict[Row, IndexedTable] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, bindings: Mapping[str, Any]) -> Row:
        try:
            return Row({v: bindings[v] for v in self.input_variables})
        except KeyError as exc:
            raise RuntimeEngineError(
                f"view-cache lookup missing input variable {exc.args[0]!r}"
            ) from None

    def lookup(self, bindings: Mapping[str, Any]) -> IndexedTable:
        """The materialized view for this input valuation (computing it on a miss)."""
        key = self._key(bindings)
        table = self._entries.get(key)
        if table is not None:
            self.hits += 1
            return table
        self.misses += 1
        table = IndexedTable(self.output_columns)
        for row, value in self._compute(dict(key)):
            table.add(row, value)
        self._entries[key] = table
        return table

    def update_all(self, updater: Callable[[Mapping[str, Any], IndexedTable], None]) -> None:
        """Apply ``updater`` to every cached copy (called when base data changes)."""
        for key, table in self._entries.items():
            updater(dict(key), table)

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Approximate resident size of every cached copy."""
        return sum(table.memory_bytes() for table in self._entries.values())
