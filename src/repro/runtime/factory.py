"""Convenience factories for the engines compared in the paper's experiments.

Every strategy runs on the same runtime (:class:`IncrementalEngine`); only
the compiled trigger program differs:

* ``dbtoaster_engine`` — full Higher-Order IVM (the paper's "DBToaster");
* ``ivm_engine`` — depth-1 compilation: classical first-order IVM with deltas
  evaluated over the base tables;
* ``rep_engine`` — depth-0 compilation: full re-evaluation on every update;
* ``naive_engine`` — the naive viewlet transform (no decomposition, no
  range-restriction extraction).

``engine_for_strategy`` maps the strategy names used throughout the benchmark
harness ("dbtoaster", "ivm", "rep", "naive") to these factories.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.agca.ast import Expr
from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions, options_for
from repro.errors import CompilationError
from repro.runtime.engine import IncrementalEngine


def _build(
    preset: str,
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
    options: CompilerOptions | None = None,
) -> IncrementalEngine:
    program = compile_query(
        queries,
        schemas,
        stream_relations=stream_relations,
        static_relations=static_relations,
        options=options if options is not None else options_for(preset),
    )
    return IncrementalEngine(program)


def dbtoaster_engine(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Engine running full Higher-Order IVM."""
    return _build("dbtoaster", queries, schemas, stream_relations, static_relations)


def ivm_engine(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Engine emulating classical first-order IVM (depth-1 compilation)."""
    return _build("ivm", queries, schemas, stream_relations, static_relations)


def rep_engine(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Engine emulating full re-evaluation on every update (depth-0 compilation)."""
    return _build("rep", queries, schemas, stream_relations, static_relations)


def naive_engine(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Engine running the naive viewlet transform."""
    return _build("naive", queries, schemas, stream_relations, static_relations)


def compiled_engine(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Full HO-IVM with triggers compiled to specialized Python (``repro.codegen``)."""
    from repro.codegen.engine import CompiledEngine

    program = compile_query(
        queries,
        schemas,
        stream_relations=stream_relations,
        static_relations=static_relations,
        options=options_for("dbtoaster"),
    )
    return CompiledEngine(program)


_FACTORIES = {
    "dbtoaster": dbtoaster_engine,
    "dbtoaster-comp": compiled_engine,
    "ivm": ivm_engine,
    "rep": rep_engine,
    "naive": naive_engine,
}


def engine_for_strategy(
    strategy: str,
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
) -> IncrementalEngine:
    """Build an engine for one of the named strategies used by the benchmarks."""
    try:
        factory = _FACTORIES[strategy]
    except KeyError:
        raise CompilationError(
            f"unknown strategy {strategy!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(queries, schemas, stream_relations, static_relations)
