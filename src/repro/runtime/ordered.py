"""Ordered range indexes over one column of an :class:`IndexedTable`.

The paper's generated runtimes store views in multi-indexed containers; for
the inequality-correlated nested aggregates of the financial workload
(``SUM(volume) WHERE price > p``, Appendix A.2) the probe that matters is an
*ordered* one: the sum of a map's values over every entry whose key column
falls on one side of a cutoff.  Evaluating that by scanning is O(n) per
candidate per event and is exactly what made VWAP/MST/PSP four orders of
magnitude slower than the compiled TPC-H views.

:class:`OrderedRangeIndex` maintains, per distinct value of one key column,
the exact sum of the table values sharing that column value, plus a sorted
key list with running prefix sums.  A probe is then a ``bisect`` and a
subtraction: O(log n) once the arrays are fresh, O(k) to refresh them after a
batch of updates (k = distinct column values).  Maintenance is driven by the
owning table's add/set hooks; ``clear``/``replace``/``restore_state`` simply
drop the index and it is rebuilt lazily on the next probe, mirroring the
lazy-rebuild contract of the hash secondary indexes.

Bit-identity contract
---------------------
The interpreter computes these sums by chaining GMR additions in primary-dict
order, so a reordered summation is only permissible when it provably yields
the same value *and type*.  The index therefore serves probes only in the
**exact regime**: while every indexed value is an ``int`` or
``fractions.Fraction`` (bools are normalized to ints before storage), where
addition is associative/commutative exactly and the final
``normalize_number`` makes the type canonical.  The moment an inexact value
(a ``float``, or anything outside the int/Fraction allowlist, e.g. a
``Decimal`` whose context rounding is order-sensitive) enters the table the
index stands down (``probe`` returns ``None``) and the caller falls back to
an exact in-order scan; when the last such value leaves, the index rebuilds
itself from the table on the next probe.  Unorderable key columns — mixed
types, or NaN, which ``sorted``/``bisect`` silently mis-position instead of
raising — permanently break the index, with the same scan fallback.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from fractions import Fraction
from typing import Any, Iterable, Tuple

from repro.core.values import is_zero, normalize_number

#: op -> (use bisect_right, sum the suffix).  ``key > c`` is the suffix after
#: bisect_right; ``key <= c`` the matching prefix; analogously for >= / <.
_PROBE_OPS = {
    ">": (True, True),
    ">=": (False, True),
    "<": (False, False),
    "<=": (True, False),
}

#: Value types whose addition is exact (reordering-safe).  ``bool`` never
#: reaches storage (``normalize_number`` collapses it to ``int``).
_EXACT_TYPES = (int, Fraction)


class OrderedRangeIndex:
    """Per-key-column aggregate sums in sorted key order, with lazy arrays.

    ``column`` is the indexed column name; ``key_pos`` its position inside
    the name-sorted items of the table's key rows (resolved once by the
    owning table).  The owner calls :meth:`change` from its mutation hooks
    and :meth:`rebuild` when :attr:`wants_rebuild` says the totals must be
    recomputed from the table contents.
    """

    __slots__ = (
        "column",
        "key_pos",
        "_totals",
        "_counts",
        "_inexact_rows",
        "_needs_rebuild",
        "_keys_stale",
        "_prefix_stale",
        "_keys",
        "_prefix",
        "_broken",
        "_array_view",
        "probes",
        "scan_fallbacks",
        "rebuilds",
        "refreshes",
    )

    def __init__(self, column: str, key_pos: int) -> None:
        self.column = column
        self.key_pos = key_pos
        self._totals: dict[Any, Any] = {}
        self._counts: dict[Any, int] = {}
        self._inexact_rows = 0
        self._needs_rebuild = True  # totals come from the table, lazily
        self._keys_stale = True
        self._prefix_stale = True
        self._keys: list[Any] = []
        self._prefix: list[Any] = [0]
        self._broken = False
        # ndarray view cache owned by repro.codegen.vector: a
        # ``((rebuilds, refreshes), payload)`` pair, keyed on the refresh
        # counters so any totals change invalidates it.
        self._array_view: tuple | None = None
        self.probes = 0
        self.scan_fallbacks = 0
        self.rebuilds = 0
        self.refreshes = 0

    # -- state queries -------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True when the key column proved unorderable (index disabled)."""
        return self._broken

    @property
    def exact(self) -> bool:
        """True while every indexed value supports exact (reorderable) sums."""
        return self._inexact_rows == 0 and not self._broken

    @property
    def wants_rebuild(self) -> bool:
        """True when the owner should feed the table back through :meth:`rebuild`."""
        return self._needs_rebuild and self._inexact_rows == 0 and not self._broken

    def _break(self) -> None:
        self._broken = True
        self._totals = {}
        self._counts = {}
        self._keys = []
        self._prefix = [0]

    # -- maintenance ---------------------------------------------------------
    def change(self, key: Any, old: Any, new: Any) -> None:
        """Record that the table value at ``key`` went from ``old`` to ``new``.

        ``old``/``new`` are the *stored* values (``None`` when the entry is
        absent on that side).  Exact-regime updates keep the per-key totals
        incremental; anything involving an inexact value defers to a full
        rebuild.
        """
        if self._broken:
            return
        old_inexact = old is not None and not isinstance(old, _EXACT_TYPES)
        new_inexact = new is not None and not isinstance(new, _EXACT_TYPES)
        if old_inexact or new_inexact:
            # The inexact-row counter stays accurate even while a rebuild is
            # pending, so the index knows when the exact regime returns.
            self._inexact_rows += new_inexact - old_inexact
            self._needs_rebuild = True
            return
        if self._needs_rebuild or self._inexact_rows:
            return
        count_delta = (new is not None) - (old is not None)
        if old is None:
            if new is None:
                return
            delta = new
        elif new is None:
            delta = -old
        else:
            delta = new - old
        count = self._counts.get(key)
        if count is None:
            if new is None:
                return
            if key != key:  # NaN orders silently wrong; disable the index
                self._break()
                return
            self._counts[key] = 1
            self._totals[key] = new
            self._keys_stale = True
            self._prefix_stale = True
            return
        count += count_delta
        if count <= 0:
            del self._counts[key]
            del self._totals[key]
            self._keys_stale = True
            self._prefix_stale = True
            return
        self._counts[key] = count
        self._totals[key] = self._totals[key] + delta
        self._prefix_stale = True

    def rebuild(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Recompute totals from the table's ``(key row, value)`` entries."""
        pos = self.key_pos
        totals: dict[Any, Any] = {}
        counts: dict[Any, int] = {}
        inexact = 0
        for row, value in items:
            key = row._items[pos][1]
            if not isinstance(value, _EXACT_TYPES):
                inexact += 1
            if key in counts:
                counts[key] += 1
                totals[key] = totals[key] + value
            else:
                if key != key:  # NaN key: bisect would mis-position it
                    self._break()
                    return
                counts[key] = 1
                totals[key] = value
        self._totals = totals
        self._counts = counts
        self._inexact_rows = inexact
        self._keys_stale = True
        self._prefix_stale = True
        self.rebuilds += 1
        # With inexact values present the totals are not probe-safe; leave
        # the rebuild flag up so the next all-exact transition rebuilds.
        self._needs_rebuild = inexact > 0

    # -- probing -------------------------------------------------------------
    def _refresh_arrays(self) -> bool:
        if self._keys_stale:
            try:
                self._keys = sorted(self._totals)
            except TypeError:
                self._break()
                return False
            self._keys_stale = False
            self._prefix_stale = True
        if self._prefix_stale:
            totals = self._totals
            prefix = [0] * (len(self._keys) + 1)
            running: Any = 0
            for index, key in enumerate(self._keys):
                running = running + totals[key]
                prefix[index + 1] = running
            self._prefix = prefix
            self._prefix_stale = False
            self.refreshes += 1
        return True

    def probe(self, op: str, cutoff: Any) -> Any:
        """``sum(value) where key op cutoff`` — or ``None`` to demand a scan.

        Only answers in the exact regime with fresh totals; the result is
        passed through the same final zero-drop / ``normalize_number`` as the
        interpreter's aggregation chain, so it is bit-identical (value *and*
        type).  Returns ``None`` when the index is broken, a rebuild is
        pending, inexact values are present, the operator is outside the
        range fragment, or the cutoff does not order against the keys (the
        caller's scan then raises exactly as the interpreter would).
        """
        if self._broken or self._inexact_rows or self._needs_rebuild:
            return None
        spec = _PROBE_OPS.get(op)
        if spec is None:
            return None
        if cutoff != cutoff:  # NaN compares False to everything: scan instead
            return None
        if not self._refresh_arrays():
            return None
        use_right, suffix = spec
        try:
            if use_right:
                index = bisect_right(self._keys, cutoff)
            else:
                index = bisect_left(self._keys, cutoff)
        except TypeError:
            return None
        prefix = self._prefix
        if suffix:
            total = prefix[-1] - prefix[index]
        else:
            total = prefix[index]
        self.probes += 1
        return 0 if is_zero(total) else normalize_number(total)

    # -- accounting ----------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Key/row counts, regime flags and probe/rebuild counters."""
        return {
            "column": self.column,
            "keys": len(self._totals),
            "rows": sum(self._counts.values()),
            "exact": self.exact,
            "broken": self._broken,
            "inexact_rows": self._inexact_rows,
            "probes": self.probes,
            "scan_fallbacks": self.scan_fallbacks,
            "rebuilds": self.rebuilds,
            "refreshes": self.refreshes,
        }
