"""Runtime: map storage, base-relation store, trigger interpreter and engines."""

from repro.runtime.maps import IndexedTable, MapStore, ViewCache
from repro.runtime.database import Database
from repro.runtime.engine import IncrementalEngine
from repro.runtime.protocol import EngineProtocol
from repro.runtime.reference import ReferenceEngine
from repro.runtime.factory import (
    compiled_engine,
    dbtoaster_engine,
    engine_for_strategy,
    ivm_engine,
    naive_engine,
    rep_engine,
)

__all__ = [
    "IndexedTable",
    "MapStore",
    "ViewCache",
    "Database",
    "EngineProtocol",
    "IncrementalEngine",
    "ReferenceEngine",
    "compiled_engine",
    "dbtoaster_engine",
    "engine_for_strategy",
    "ivm_engine",
    "naive_engine",
    "rep_engine",
]
