"""A naive reference engine (correctness oracle and DBX/SPY stand-in).

The paper compares DBToaster against a commercial DBMS ("DBX") and a stream
processor ("SPY"), both of which effectively recompute the query from their
stored base tables on every update, paying per-statement interpretation and
bookkeeping overhead.  Neither system is available here, so this module
provides the substitution described in DESIGN.md: a deliberately simple
row-at-a-time engine that

* stores base relations as plain lists of dictionaries,
* evaluates AGCA queries with unindexed nested loops and **no** sharing,
  memoization or sideways-binding shortcuts, and
* optionally charges a fixed per-event overhead to model the bookkeeping /
  statement-parsing cost the paper observed in DBX's IVM mode.

Because the evaluation code is written independently of
:mod:`repro.agca.evaluator`, it doubles as an oracle in the test suite: both
implementations must agree on every query and database the property tests
generate.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
)
from repro.agca.evaluator import eval_value
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.core.values import comparison_holds, is_zero
from repro.delta.events import StreamEvent
from repro.errors import EvaluationError, RuntimeEngineError

RefRow = dict[str, Any]
RefResult = list[tuple[RefRow, Any]]


def _combine(rows: RefResult) -> RefResult:
    merged: dict[tuple, tuple[RefRow, Any]] = {}
    for row, mult in rows:
        key = tuple(sorted(row.items()))
        if key in merged:
            merged[key] = (row, merged[key][1] + mult)
        else:
            merged[key] = (dict(row), mult)
    return [(row, mult) for row, mult in merged.values() if not is_zero(mult)]


def evaluate_reference(
    expr: Expr, tables: Mapping[str, Sequence[tuple[RefRow, Any]]], context: RefRow | None = None
) -> RefResult:
    """Evaluate ``expr`` with plain nested loops over list-of-dict tables."""
    ctx = dict(context or {})
    return _combine(_eval(expr, tables, ctx))


def _total(rows: RefResult) -> Any:
    """Sum of multiplicities without assuming a numeric type.

    Lifted values may be non-numeric (``(seg ^= 'BUILDING')`` lifts a string),
    so the fold starts from the first multiplicity instead of ``0``.
    """
    if not rows:
        return 0
    total = rows[0][1]
    for _, mult in rows[1:]:
        total = total + mult
    return total


def _eval(expr: Expr, tables: Mapping[str, Sequence[tuple[RefRow, Any]]], ctx: RefRow) -> RefResult:
    if isinstance(expr, Value):
        value = eval_value(expr.vexpr, ctx)
        return [] if is_zero(value) else [({}, value)]

    if isinstance(expr, Cmp):
        left = eval_value(expr.left, ctx)
        right = eval_value(expr.right, ctx)
        return [({}, 1)] if comparison_holds(left, expr.op, right) else []

    if isinstance(expr, Relation):
        out: RefResult = []
        for stored, mult in tables.get(expr.name, ()):  # stored keys are positional "_0", "_1", ...
            renamed: RefRow = {}
            ok = True
            for position, column in enumerate(expr.columns):
                value = stored[f"_{position}"]
                if column in renamed and renamed[column] != value:
                    ok = False
                    break
                renamed[column] = value
            if not ok:
                continue
            if any(column in ctx and ctx[column] != value for column, value in renamed.items()):
                continue
            out.append((renamed, mult))
        return out

    if isinstance(expr, MapRef):
        raise EvaluationError("the reference engine evaluates queries over base relations only")

    if isinstance(expr, Product):
        partial: RefResult = [({}, 1)]
        for term in expr.terms:
            grown: RefResult = []
            for row, mult in partial:
                local_ctx = dict(ctx)
                local_ctx.update(row)
                for rrow, rmult in _eval(term, tables, local_ctx):
                    if any(k in row and row[k] != v for k, v in rrow.items()):
                        continue
                    merged = dict(row)
                    merged.update(rrow)
                    grown.append((merged, mult * rmult))
            partial = grown
            if not partial:
                return []
        return partial

    if isinstance(expr, Sum):
        out = []
        for term in expr.terms:
            out.extend(_eval(term, tables, ctx))
        return out

    if isinstance(expr, AggSum):
        inner = _eval(expr.term, tables, ctx)
        grouped: dict[tuple, tuple[RefRow, Any]] = {}
        for row, mult in inner:
            key_row = {}
            for g in expr.group:
                if g in row:
                    key_row[g] = row[g]
                elif g in ctx:
                    key_row[g] = ctx[g]
                else:
                    raise EvaluationError(f"group variable {g!r} unbound in reference evaluation")
            key = tuple(sorted(key_row.items()))
            if key in grouped:
                grouped[key] = (key_row, grouped[key][1] + mult)
            else:
                grouped[key] = (key_row, mult)
        return [(row, mult) for row, mult in grouped.values()]

    if isinstance(expr, Lift):
        value = _total(_eval(expr.term, tables, ctx))
        if expr.var in ctx:
            return [({}, 1)] if ctx[expr.var] == value else []
        return [({expr.var: value}, 1)]

    if isinstance(expr, Exists):
        value = _total(_eval(expr.term, tables, ctx))
        return [({}, 1)] if not is_zero(value) else []

    raise TypeError(f"not an AGCA expression: {expr!r}")


class ReferenceEngine:
    """Recompute-per-update engine over list-of-dict base tables.

    ``per_event_overhead`` (seconds) models the fixed bookkeeping cost a
    generic engine pays per refresh; it is only charged when measuring
    throughput with the benchmark harness (as busy-waiting), never when the
    engine is used as a correctness oracle.
    """

    def __init__(
        self,
        queries: Expr | Mapping[str, Expr],
        schemas: Mapping[str, Sequence[str]],
        per_event_overhead: float = 0.0,
        name: str = "Q",
    ) -> None:
        if not isinstance(queries, Mapping):
            queries = {name: queries}
        self.queries = dict(queries)
        self.schemas = {rel: tuple(cols) for rel, cols in schemas.items()}
        self.per_event_overhead = per_event_overhead
        self._tables: dict[str, list[tuple[RefRow, Any]]] = {rel: [] for rel in self.schemas}
        self._results: dict[str, RefResult] = {qname: [] for qname in self.queries}
        self.events_processed = 0

    # -- data loading ----------------------------------------------------------
    def load_static(self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Bulk-load a static relation (no view refresh)."""
        count = 0
        for row in rows:
            self._store(relation, row, 1)
            count += 1
        return count

    def _store(self, relation: str, row: Sequence[Any] | Mapping[str, Any], sign: int) -> None:
        columns = self.schemas[relation]
        if isinstance(row, Mapping):
            values = tuple(row[c] for c in columns)
        else:
            values = tuple(row)
        if len(values) != len(columns):
            raise RuntimeEngineError(
                f"arity mismatch loading {relation!r}: got {len(values)} values"
            )
        stored = {f"_{i}": v for i, v in enumerate(values)}
        table = self._tables[relation]
        for i, (existing, mult) in enumerate(table):
            if existing == stored:
                new_mult = mult + sign
                if is_zero(new_mult):
                    table.pop(i)
                else:
                    table[i] = (existing, new_mult)
                return
        if sign > 0:
            table.append((stored, sign))
        else:
            table.append((stored, sign))

    # -- stream processing ----------------------------------------------------------
    def apply(self, event: StreamEvent) -> None:
        """Apply one event: update the base table, then recompute every query."""
        if event.relation not in self.schemas:
            raise RuntimeEngineError(f"unknown relation {event.relation!r}")
        self._store(event.relation, event.values, event.sign)
        if self.per_event_overhead > 0:
            deadline = time.perf_counter() + self.per_event_overhead
            while time.perf_counter() < deadline:
                pass
        for qname, expr in self.queries.items():
            self._results[qname] = evaluate_reference(expr, self._tables)
        self.events_processed += 1

    def apply_many(self, events: Iterable[StreamEvent]) -> int:
        """Apply a sequence of events; returns how many were processed."""
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    # -- reading results --------------------------------------------------------------
    def view(self, name: str | None = None) -> GMR:
        """Current result of a query as a GMR."""
        if name is None:
            if len(self.queries) != 1:
                raise RuntimeEngineError("several queries registered; name one explicitly")
            name = next(iter(self.queries))
        return GMR((Row(row), mult) for row, mult in self._results[name])

    def scalar_result(self, name: str | None = None) -> Any:
        """The value of a scalar (non-grouping) query."""
        return self.view(name).total_multiplicity()

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]:
        """Query result keyed by the tuple of group values (sorted column order)."""
        view = self.view(name)
        out: dict[tuple, Any] = {}
        for row, value in view.items():
            out[tuple(row[c] for c in sorted(row.columns))] = value
        return out

    def memory_bytes(self) -> int:
        """Approximate resident size of the stored base tables."""
        total = 0
        for table in self._tables.values():
            total += sum(64 * (len(row) + 1) for row, _ in table)
        return total
