"""Trigger-program interpreter.

Executes the update statements of a compiled
:class:`~repro.compiler.program.TriggerProgram` against a
:class:`~repro.runtime.maps.MapStore` (and, where needed, a
:class:`~repro.runtime.database.Database` of base relations).

Statement semantics:

* ``target[keys] += expr`` — evaluate ``expr`` under the trigger bindings and
  add every result row's multiplicity to the map entry obtained by projecting
  the row (plus the bindings) onto the target keys;
* ``target[keys] := expr`` — evaluate ``expr`` and *replace* the map contents
  with the result grouped by the target keys.

Within one event, ``+=`` statements run against the pre-update state of the
maps and base relations (they implement ``Q(D + ∆D) - Q(D)``), the base
relations are then brought up to date, and ``:=`` statements run last against
the post-update state; the compiler orders statements accordingly.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.agca.evaluator import Evaluator
from repro.compiler.program import ASSIGN, INCREMENT, Statement, TriggerProgram
from repro.core.rows import Row
from repro.delta.events import StreamEvent
from repro.errors import RuntimeEngineError
from repro.runtime.database import Database
from repro.runtime.maps import MapStore


class RuntimeSource:
    """DataSource combining base relations and materialized maps.

    Column tuples are immutable once a relation/map is declared, so both
    lookups are cached here: the evaluator asks for them on every atom of
    every statement of every event, and the dict probe beats the two
    attribute hops plus table lookup they would otherwise cost.
    """

    __slots__ = ("_database", "_maps", "_relation_columns", "_map_columns")

    def __init__(self, database: Database, maps: MapStore) -> None:
        self._database = database
        self._maps = maps
        self._relation_columns: dict[str, tuple[str, ...]] = {}
        self._map_columns: dict[str, tuple[str, ...]] = {}

    def relation_columns(self, name: str) -> tuple[str, ...]:
        columns = self._relation_columns.get(name)
        if columns is None:
            columns = self._database.relation_columns(name)
            self._relation_columns[name] = columns
        return columns

    def scan_relation(self, name: str, bound: Mapping[str, Any]) -> Iterator:
        return self._database.scan_relation(name, bound)

    def map_columns(self, name: str) -> tuple[str, ...]:
        columns = self._map_columns.get(name)
        if columns is None:
            columns = self._maps.map_columns(name)
            self._map_columns[name] = columns
        return columns

    def scan_map(self, name: str, bound: Mapping[str, Any]) -> Iterator:
        return self._maps.scan_map(name, bound)

    def range_sum(self, name: str, column: str, op: str, cutoff: Any, chain: bool = True):
        """Ordered-index probe for comparison-guarded nested aggregates.

        Exposing this marks the source as range-probe capable: the evaluator
        routes ``AggSum([], M[k] * {k op c})`` / ``Exists`` shapes here
        instead of scanning.  Results are bit-identical to the scan (see
        :meth:`repro.runtime.maps.IndexedTable.range_sum`).
        """
        return self._maps.table(name).range_sum(column, op, cutoff, chain)


class TriggerExecutor:
    """Applies stream events to the materialized views of one program."""

    def __init__(
        self,
        program: TriggerProgram,
        database: Database,
        maps: MapStore,
        maintained_relations: frozenset[str] = frozenset(),
    ) -> None:
        self._program = program
        self._database = database
        self._maps = maps
        self._maintained = maintained_relations
        self._evaluator = Evaluator(RuntimeSource(database, maps))

    @property
    def evaluator(self) -> Evaluator:
        """The evaluator bound to this executor's maps and base relations."""
        return self._evaluator

    @property
    def maintained_relations(self) -> frozenset[str]:
        """Stream relations maintained as base tables by this executor."""
        return self._maintained

    # -- event application -----------------------------------------------------
    def apply(self, event: StreamEvent) -> None:
        """Apply one insert/delete event: run its trigger and update base tables."""
        trigger = self._program.trigger_for(event.sign, event.relation)
        statements = trigger.statements if trigger is not None else []

        increments = [s for s in statements if s.operation == INCREMENT]
        assigns = [s for s in statements if s.operation == ASSIGN]

        for statement in increments:
            self._execute_increment(statement, event)

        if event.relation in self._maintained:
            self._database.apply(event)

        for statement in assigns:
            self._execute_assign(statement, event)

    # -- statement execution -------------------------------------------------------
    def _bindings(self, statement: Statement, event: StreamEvent) -> dict[str, Any]:
        return statement.event.bindings_for(
            event if event.sign == statement.event.sign else event
        )

    def _execute_increment(self, statement: Statement, event: StreamEvent) -> None:
        self.execute_increment(statement, self._bindings(statement, event))

    def _execute_assign(self, statement: Statement, event: StreamEvent) -> None:
        self.execute_assign(statement, self._bindings(statement, event))

    def execute_increment(
        self,
        statement: Statement,
        bindings: Mapping[str, Any],
        scale: Any = 1,
        memo: dict | None = None,
    ) -> None:
        """Run one ``+=`` statement under explicit trigger-variable bindings.

        ``scale`` multiplies every produced delta (used by batched execution to
        fold repeated identical events); ``memo`` optionally shares evaluation
        results of context-independent subexpressions across calls.
        """
        result = self._evaluator.evaluate(statement.expr, bindings, memo=memo)
        if not result:
            return
        table = self._maps.table(statement.target)
        keys = statement.target_keys
        for row, multiplicity in result.items():
            table.add(
                self._key_values(keys, row, bindings, statement),
                multiplicity if scale == 1 else multiplicity * scale,
            )

    def execute_assign(self, statement: Statement, bindings: Mapping[str, Any]) -> None:
        """Run one ``:=`` statement under explicit trigger-variable bindings."""
        result = self._evaluator.evaluate(statement.expr, bindings)
        table = self._maps.table(statement.target)
        keys = statement.target_keys
        grouped: dict[Row, Any] = {}
        for row, multiplicity in result.items():
            key_row = Row(zip(table.columns, self._key_values(keys, row, bindings, statement)))
            grouped[key_row] = grouped.get(key_row, 0) + multiplicity
        table.replace(grouped.items())

    @staticmethod
    def _key_values(
        keys: tuple[str, ...],
        row: Row,
        bindings: Mapping[str, Any],
        statement: Statement,
    ) -> tuple[Any, ...]:
        values = []
        for key in keys:
            if key in row:
                values.append(row[key])
            elif key in bindings:
                values.append(bindings[key])
            else:
                raise RuntimeEngineError(
                    f"statement for {statement.target!r} produced no value for key "
                    f"{key!r}: {statement.pretty()}"
                )
        return tuple(values)
