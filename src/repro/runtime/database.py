"""Base-relation storage.

The incremental engines mostly do *not* need the base relations (that is one
of DBToaster's memory advantages), but three situations do:

* static relations (Nation, Region, the MDDB metadata tables) are loaded once
  before stream processing and read directly by statements;
* depth-limited compilations (classical IVM, full re-evaluation) evaluate
  delta/definition queries over the base tables;
* materialization fallbacks may leave a base relation reference inside a
  statement.

:class:`Database` stores relations in the same indexed tables used for maps
and exposes the relation side of the evaluator's ``DataSource`` protocol.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.delta.events import StreamEvent
from repro.errors import RuntimeEngineError
from repro.runtime.maps import IndexedTable


class Database:
    """A collection of base relations stored as indexed tables."""

    def __init__(self, schemas: Mapping[str, Sequence[str]] | None = None) -> None:
        self._schemas: dict[str, tuple[str, ...]] = {}
        self._tables: dict[str, IndexedTable] = {}
        for name, columns in (schemas or {}).items():
            self.declare(name, columns)

    # -- schema management -----------------------------------------------------
    def declare(self, name: str, columns: Sequence[str]) -> None:
        """Declare a relation with its ordered column names."""
        if name in self._schemas:
            if self._schemas[name] != tuple(columns):
                raise RuntimeEngineError(
                    f"relation {name!r} already declared with different columns"
                )
            return
        self._schemas[name] = tuple(columns)
        self._tables[name] = IndexedTable(columns)

    def relations(self) -> tuple[str, ...]:
        """All declared relation names."""
        return tuple(self._schemas)

    def schema(self, name: str) -> tuple[str, ...]:
        """Ordered column names of ``name``."""
        try:
            return self._schemas[name]
        except KeyError:
            raise RuntimeEngineError(f"unknown relation {name!r}") from None

    def table(self, name: str) -> IndexedTable:
        """The indexed table storing ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise RuntimeEngineError(f"unknown relation {name!r}") from None

    # -- updates ------------------------------------------------------------------
    def apply(self, event: StreamEvent) -> None:
        """Apply a single-tuple insert/delete to the stored relation."""
        table = self.table(event.relation)
        if len(event.values) != len(table.columns):
            raise RuntimeEngineError(
                f"event arity {len(event.values)} does not match schema of "
                f"{event.relation!r} ({len(table.columns)} columns)"
            )
        table.add(event.values, event.sign)

    def load(self, name: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Bulk-load rows into a relation (used for static tables); returns the count."""
        table = self.table(name)
        count = 0
        for row in rows:
            if isinstance(row, Mapping):
                values = tuple(row[c] for c in table.columns)
            else:
                values = tuple(row)
            table.add(values, 1)
            count += 1
        return count

    # -- DataSource protocol (relation side) ------------------------------------------
    def relation_columns(self, name: str) -> tuple[str, ...]:
        return self.schema(name)

    def scan_relation(self, name: str, bound: Mapping[str, Any]) -> Iterator[tuple[Row, Any]]:
        return self.table(name).scan(bound)

    # -- conveniences -----------------------------------------------------------------------
    def contents(self, name: str) -> GMR:
        """Snapshot of a relation as a GMR."""
        return self.table(name).to_gmr()

    def sizes(self) -> dict[str, int]:
        """Tuple counts per relation."""
        return {name: len(table) for name, table in self._tables.items()}

    def memory_bytes(self) -> int:
        """Approximate resident size of all stored relations."""
        return sum(table.memory_bytes() for table in self._tables.values())

    def stats(self) -> dict[str, dict[str, object]]:
        """Per-relation entry/memory/secondary-index statistics."""
        return {name: table.stats() for name, table in self._tables.items()}
