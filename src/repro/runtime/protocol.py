"""The engine contract every execution mode implements.

Three engines execute trigger programs — the per-event
:class:`~repro.runtime.engine.IncrementalEngine`, the delta-batched
:class:`~repro.exec.batching.BatchedEngine` and the hash-partitioned
:class:`~repro.exec.partitioning.PartitionedEngine` — and everything built on
top of them (the benchmark harness, the serving layer in
:mod:`repro.service`) treats them interchangeably.  :class:`EngineProtocol`
pins that surface down so conformance is checkable (``isinstance`` against
the runtime-checkable protocol, plus the behavioural contract test in
``tests/runtime/test_engine_contract.py``).

Beyond stream processing and view reads, the contract includes *durable
state*: :meth:`EngineProtocol.checkpoint_state` captures everything needed to
rebuild the engine's observable views (map contents, stored base relations,
the event count), and :meth:`EngineProtocol.restore_state` loads such a state
into a freshly built engine for the same program.  Single-engine states
(``kind: "single"``) are interchangeable between the incremental and batched
engines; partitioned states (``kind: "partitioned"``) additionally carry one
single-engine state per partition and require an identical partition layout
on restore.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.compiler.program import TriggerProgram
from repro.core.gmr import GMR
from repro.delta.events import StreamEvent

#: Version tag of the engine-state dictionaries produced by ``checkpoint_state``.
STATE_FORMAT = 1

#: ``kind`` of a state produced by a single (incremental / batched) engine.
STATE_SINGLE = "single"

#: ``kind`` of a state produced by a partitioned engine.
STATE_PARTITIONED = "partitioned"

#: ``kind`` of an *incremental* state: only the entries that changed since
#: the previous cut (per-map dirty keys; absent value = key removed).
STATE_DELTA = "single-delta"


@runtime_checkable
class EngineProtocol(Protocol):
    """What every execution mode exposes to embedders and to the service layer."""

    program: TriggerProgram
    events_processed: int

    # -- data loading / stream processing ------------------------------------
    def load_static(
        self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int: ...

    def apply(self, event: StreamEvent) -> None: ...

    def apply_many(self, events: Iterable[StreamEvent]) -> int: ...

    def flush(self) -> None: ...

    # -- reading views --------------------------------------------------------
    def view(self, name: str | None = None) -> GMR: ...

    def scalar_result(self, name: str | None = None) -> Any: ...

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]: ...

    # -- accounting -----------------------------------------------------------
    def memory_bytes(self) -> int: ...

    def map_sizes(self) -> dict[str, int]: ...

    def statistics(self) -> dict[str, object]: ...

    def describe(self) -> str: ...

    # -- durable state / lifecycle -------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]: ...

    def restore_state(self, state: Mapping[str, Any]) -> None: ...

    # -- incremental state (delta checkpoints) --------------------------------
    # ``supports_delta_state`` advertises whether the three methods below do
    # real work: engines exploiting IndexedTable dirty tracking return True;
    # others (currently the partitioned engine) return False and raise from
    # delta_state/apply_delta_state, and callers fall back to full states.
    def supports_delta_state(self) -> bool: ...

    def begin_delta_tracking(self) -> None: ...

    def delta_state(self) -> dict[str, Any]: ...

    def apply_delta_state(self, state: Mapping[str, Any]) -> None: ...

    def close(self) -> None: ...
