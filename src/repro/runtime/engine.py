"""The incremental view-maintenance engine.

:class:`IncrementalEngine` wraps a compiled trigger program with the runtime
state it needs (map store, base-relation store for static/required tables)
and exposes the operations an embedding application uses: feed events, read
views, inspect memory.  The same engine executes every compilation strategy
(full HO-IVM, classical IVM, re-evaluation, naive viewlet) — only the trigger
program differs — which is what makes the paper's shared-infrastructure
comparison meaningful.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.compiler.program import TriggerProgram
from repro.core.gmr import GMR
from repro.delta.events import StreamEvent
from repro.errors import RuntimeEngineError
from repro.runtime.database import Database
from repro.runtime.interpreter import TriggerExecutor
from repro.runtime.maps import MapStore
from repro.runtime.protocol import STATE_DELTA, STATE_FORMAT, STATE_SINGLE


class IncrementalEngine:
    """Keeps the materialized views of one trigger program continuously fresh."""

    def __init__(self, program: TriggerProgram, telemetry=None) -> None:
        self.program = program
        self.maps = MapStore()
        for decl in program.maps.values():
            self.maps.declare(decl.name, decl.keys)

        self.database = Database()
        for relation in program.static_relations:
            self.database.declare(relation, program.schemas[relation])
        self._maintained = program.requires_base_relations()
        for relation in self._maintained:
            self.database.declare(relation, program.schemas[relation])

        self._executor = TriggerExecutor(
            program, self.database, self.maps, maintained_relations=self._maintained
        )
        self.events_processed = 0
        # Opt-in row provenance (repro.inspect): None keeps the hot path at a
        # single comparison per event.
        self._provenance = None

        if telemetry is None:
            from repro.telemetry import current

            telemetry = current()
        self.telemetry = telemetry
        # (sign, relation) -> observe(dt) when enabled, else None: the apply
        # hot path pays one None check in disabled mode.
        self._trigger_observers: dict[tuple[int, str], Callable[[float], None]] | None = None
        # Sampling countdown: only every stride-th event is timed; between
        # samples the enabled hot path pays one attribute decrement.
        self._telemetry_stride = 1
        self._telemetry_tick = 1
        # Burst profiling (profile_interval > 0): the profiler thread re-arms
        # _trigger_observers, and after _profile_left timed events the
        # sampled path disarms it again — zero added cost between bursts.
        self._armed_observers: dict[tuple[int, str], Callable[[float], None]] | None = None
        self._profile_burst = 0
        self._profile_left = 0
        # Events accounted in bulk (batched folds bypass per-event apply);
        # plain int bumps, merged into the events_total counters at scrape.
        self._bulk_events: dict[tuple[int, str], int] = {}
        self._telemetry_collector_installed = False
        self._init_telemetry()

    @property
    def executor(self) -> TriggerExecutor:
        """The trigger executor (used by the batched execution subsystem)."""
        return self._executor

    # -- telemetry --------------------------------------------------------------
    def _init_telemetry(self) -> None:
        """(Re)build per-trigger instrument handles.

        Idempotent and re-runnable: :class:`~repro.codegen.engine.CompiledEngine`
        calls it again after swapping in its executor so fused-kernel series
        and the codegen collector attach to the same histograms (the registry
        dedups instruments by name+labels).
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            self._trigger_observers = None
            return
        self._telemetry_stride = max(1, int(getattr(telemetry, "sample_stride", 1)))
        self._telemetry_tick = self._telemetry_stride
        registry = telemetry.registry
        tracer = telemetry.tracer
        observers: dict[tuple[int, str], Callable[[float], None]] = {}
        self._trigger_hists: dict[tuple[int, str], Any] = {}
        for trigger in self.program.triggers.values():
            key = (trigger.sign, trigger.relation)
            op = "insert" if trigger.sign > 0 else "delete"
            hist = registry.histogram(
                "repro_engine_trigger_latency_seconds",
                {"relation": trigger.relation, "op": op},
                help="Per-event trigger execution latency",
            )
            self._trigger_hists[key] = hist
            kernel_probe = getattr(self._executor, "trigger_kernel_for", None)
            if kernel_probe is not None and kernel_probe(trigger.sign, trigger.relation):
                # The fused kernel IS the trigger body: expose the measured
                # histogram under the kernel-level name too instead of
                # observing twice on the hot path.
                registry.register(
                    "repro_codegen_kernel_latency_seconds",
                    {"trigger": f"on_{op}_{trigger.relation}"},
                    hist,
                    kind="histogram",
                    help="Fused trigger-kernel execution latency",
                )
            if tracer.enabled:
                observers[key] = self._traced_observer(
                    hist.observe, f"engine.apply/{op}/{trigger.relation}", tracer
                )
            else:
                observers[key] = hist.observe
        self._armed_observers = observers
        self._trigger_observers = observers
        if getattr(telemetry, "profile_interval", 0) > 0:
            self._profile_burst = telemetry.profile_burst
            self._profile_left = self._profile_burst
            telemetry.attach_engine(self)
        else:
            self._profile_burst = 0
        if not self._telemetry_collector_installed:
            self._telemetry_collector_installed = True
            registry.add_collector(self._collect_telemetry)

    def _telemetry_arm(self) -> None:
        """Start one profiling burst (called from the profiler thread)."""
        self._profile_left = self._profile_burst
        self._trigger_observers = self._armed_observers

    @staticmethod
    def _traced_observer(observe, name: str, tracer):
        def observe_and_trace(dt: float) -> None:
            observe(dt)
            tracer.event(name, dt)

        return observe_and_trace

    def count_bulk_events(self, sign: int, relation: str, count: int) -> None:
        """Account events applied in bulk, outside per-event ``apply``.

        The batched execution layer folds events into grouped deltas; the
        per-group bulk path bypasses ``apply``, so it reports its event count
        here to keep ``events in == events accounted`` exact.
        """
        key = (sign, relation)
        self._bulk_events[key] = self._bulk_events.get(key, 0) + count

    def _collect_telemetry(self, registry) -> None:
        """Scrape-time collector: pull always-on counters into the registry."""
        hists = getattr(self, "_trigger_hists", None) or {}
        keys = set(hists) | set(self._bulk_events)
        # Sampled observation sees a fraction of the events: scale histogram
        # counts back up so totals stay rate-correct.  Exact at stride 1;
        # stride-granular estimates otherwise; in burst-profiling mode the
        # sampled fraction is only known empirically (events_processed over
        # total samples), so per-key totals are statistical estimates.
        if self._profile_burst:
            total_sampled = sum(hist.count for hist in hists.values())
            scale = self.events_processed / total_sampled if total_sampled else 0.0
        else:
            scale = float(self._telemetry_stride)
        for sign, relation in keys:
            op = "insert" if sign > 0 else "delete"
            hist = hists.get((sign, relation))
            counter = registry.counter(
                "repro_engine_events_total",
                {"relation": relation, "op": op},
                help="Stream events applied, by relation and operation",
            )
            sampled = hist.count if hist is not None else 0
            counter.value = round(sampled * scale) + self._bulk_events.get(
                (sign, relation), 0
            )
        registry.gauge(
            "repro_engine_memory_bytes", help="Resident bytes of maps plus base relations"
        ).set(self.memory_bytes())
        registry.counter(
            "repro_engine_events_processed_total", help="Total events processed"
        ).value = self.events_processed
        for name in self.maps.names():
            table = self.maps.table(name)
            registry.counter(
                "repro_map_probes_total", {"map": name}, help="Point probes per map"
            ).value = table.probes
            registry.counter(
                "repro_map_scans_total", {"map": name}, help="Scans per map"
            ).value = table.scans
            registry.counter(
                "repro_map_range_probes_total", {"map": name}, help="Range-sum probes per map"
            ).value = table.range_probes
            for column, ordered_stats in table.ordered_index_stats().items():
                labels = {"map": name, "column": column}
                registry.counter(
                    "repro_ordered_probes_total", labels, help="Ordered-index probes"
                ).value = ordered_stats["probes"]
                registry.counter(
                    "repro_ordered_scan_fallbacks_total",
                    labels,
                    help="Ordered-index probes answered by scanning",
                ).value = ordered_stats["scan_fallbacks"]
                registry.counter(
                    "repro_ordered_rebuilds_total", labels, help="Ordered-index rebuilds"
                ).value = ordered_stats["rebuilds"]
        codegen_stats = getattr(self._executor, "codegen_statistics", None)
        if codegen_stats is not None:
            summary = codegen_stats()
            registry.gauge(
                "repro_codegen_compile_seconds", help="Wall time spent compiling statements"
            ).set(summary.get("compile_seconds", 0.0))
            registry.gauge(
                "repro_codegen_fuse_seconds", help="Wall time spent fusing triggers"
            ).set(summary.get("fuse_seconds", 0.0))
            registry.counter(
                "repro_codegen_fallback_hits_total",
                help="Statement executions that fell back to the interpreter",
            ).value = summary.get("fallback_hits", 0)
            registry.gauge(
                "repro_codegen_fused_kernels", help="Triggers running as one fused kernel"
            ).set(summary.get("fused_kernels", 0))

    # -- data loading -----------------------------------------------------------
    def load_static(self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Load a static relation before stream processing begins."""
        if relation not in self.program.static_relations:
            raise RuntimeEngineError(
                f"{relation!r} is not declared static in this program"
            )
        return self.database.load(relation, rows)

    # -- stream processing ----------------------------------------------------------
    def apply(self, event: StreamEvent) -> None:
        """Apply a single insert/delete event, refreshing every view."""
        if event.relation not in self.program.stream_relations:
            raise RuntimeEngineError(
                f"relation {event.relation!r} is not a stream relation of this program"
            )
        prov = self._provenance
        if prov is not None:
            prov.version = self.events_processed + 1
            prov.cause = (
                "event",
                event.relation,
                "insert" if event.sign > 0 else "delete",
                event.values,
            )
        observers = self._trigger_observers
        if observers is None:
            self._executor.apply(event)
        else:
            self._telemetry_tick -= 1
            if self._telemetry_tick > 0:
                self._executor.apply(event)
            else:
                self._telemetry_tick = self._telemetry_stride
                observe = observers.get((event.sign, event.relation))
                if observe is None:
                    self._executor.apply(event)
                else:
                    started = perf_counter()
                    self._executor.apply(event)
                    observe(perf_counter() - started)
                if self._profile_burst:
                    self._profile_left -= 1
                    if self._profile_left <= 0:
                        # Burst over: disarm until the profiler thread re-arms.
                        self._trigger_observers = None
        self.events_processed += 1

    def apply_many(self, events: Iterable[StreamEvent]) -> int:
        """Apply a sequence of events; returns how many were processed."""
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    def flush(self) -> None:
        """No-op: per-event execution never buffers (uniform engine contract)."""

    # -- reading views ----------------------------------------------------------------
    def view(self, name: str | None = None) -> GMR:
        """Contents of a view as a GMR (key row -> aggregate value)."""
        decl = self.program.root_map(name) if (
            name is None or name in self.program.roots
        ) else self.program.maps.get(name)
        if decl is None:
            raise RuntimeEngineError(f"unknown view {name!r}")
        return self.maps.table(decl.name).to_gmr()

    def scalar_result(self, name: str | None = None) -> Any:
        """The value of a scalar (non-grouping) view."""
        return self.view(name).total_multiplicity()

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]:
        """View contents keyed by the tuple of key values, in key order."""
        decl = self.program.root_map(name) if (
            name is None or name in self.program.roots
        ) else self.program.maps.get(name)
        if decl is None:
            raise RuntimeEngineError(f"unknown view {name!r}")
        table = self.maps.table(decl.name)
        return {
            tuple(row[c] for c in table.columns): value for row, value in table.items()
        }

    # -- row provenance ----------------------------------------------------------
    def _view_declaration(self, name: str | None):
        """The map declaration behind a view name (root query or map name)."""
        decl = self.program.root_map(name) if (
            name is None or name in self.program.roots
        ) else self.program.maps.get(name)
        if decl is None:
            raise RuntimeEngineError(f"unknown view {name!r}")
        return decl

    @property
    def provenance(self):
        """The active :class:`ProvenanceRecorder`, or None when disabled."""
        return self._provenance

    def enable_provenance(
        self, depth: int | None = None, views: Sequence[str] | None = None
    ):
        """Start recording per-view mutation history into bounded rings.

        ``views`` accepts root query names or map names and defaults to the
        program's root maps.  Calling again reconfigures (old rings are
        dropped).  Returns the recorder.
        """
        from repro.inspect.provenance import DEFAULT_DEPTH, ProvenanceRecorder

        if self._provenance is not None:
            self._detach_provenance()
        names = list(views) if views else sorted(self.program.roots)
        tracked: dict[str, tuple[str, ...]] = {}
        for name in names:
            decl = self._view_declaration(name)
            tracked[decl.name] = self.maps.table(decl.name).columns
        recorder = ProvenanceRecorder(
            tracked, depth=DEFAULT_DEPTH if depth is None else depth
        )
        recorder.version = self.events_processed
        self._provenance = recorder
        self._attach_provenance()
        return recorder

    def _attach_provenance(self) -> None:
        for name in self._provenance.views():
            self.maps.table(name).set_watcher(self._provenance.watcher_for(name))

    def _detach_provenance(self) -> None:
        for name in self._provenance.views():
            self.maps.table(name).set_watcher(None)

    def explain_row(
        self, view: str | None = None, key: Sequence[Any] | None = None
    ) -> dict[str, Any]:
        """Recent mutation history of one view (optionally one key).

        Returns the tracked ring entries with their causing events, newest
        last, plus the key's current value when a key is given.  Requires
        :meth:`enable_provenance`.
        """
        self.flush()
        if self._provenance is None:
            raise RuntimeEngineError(
                "provenance is not enabled on this engine "
                "(call enable_provenance / serve with --provenance-depth)"
            )
        from repro.inspect.provenance import entry_to_dict

        decl = self._view_declaration(view)
        table = self.maps.table(decl.name)
        entries = self._provenance.history(decl.name, key)
        report: dict[str, Any] = {
            "view": view if view is not None else decl.name,
            "map": decl.name,
            "columns": list(table.columns),
            "key": list(key) if key is not None else None,
            "depth": self._provenance.depth,
            "history": [entry_to_dict(entry) for entry in entries],
        }
        if key is not None:
            report["current"] = table.get(tuple(key), 0)
        return report

    # -- accounting ----------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate resident size of all views plus stored base relations."""
        return self.maps.memory_bytes() + self.database.memory_bytes()

    def map_sizes(self) -> dict[str, int]:
        """Entry counts per materialized view."""
        return self.maps.sizes()

    def statistics(self) -> dict[str, object]:
        """Per-map and per-relation entry/memory/index statistics."""
        return {
            "events_processed": self.events_processed,
            "memory_bytes": self.memory_bytes(),
            "maps": self.maps.stats(),
            "relations": self.database.stats(),
        }

    def describe(self) -> str:
        """Human-readable listing of the compiled program this engine runs."""
        return self.program.pretty()

    # -- durable state / lifecycle ---------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Everything needed to rebuild this engine's observable state.

        The returned dictionary (``kind: "single"``) holds every map's entries,
        every stored base relation's tuples and the event count; values keep
        their exact runtime types so a restored engine is bit-identical.
        """
        maps: dict[str, list[tuple[tuple, Any]]] = {}
        for name in self.maps.names():
            table = self.maps.table(name)
            maps[name] = [
                (tuple(row[c] for c in table.columns), value)
                for row, value in table.items()
            ]
        relations: dict[str, list[tuple[tuple, Any]]] = {}
        for name in self.database.relations():
            table = self.database.table(name)
            relations[name] = [
                (tuple(row[c] for c in table.columns), value)
                for row, value in table.items()
            ]
        state: dict[str, Any] = {
            "format": STATE_FORMAT,
            "kind": STATE_SINGLE,
            "events_processed": self.events_processed,
            "maps": maps,
            "relations": relations,
        }
        if self._provenance is not None:
            state["provenance"] = self._provenance.state()
        return state

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Load a :meth:`checkpoint_state` dictionary into this engine.

        Intended for freshly built engines running the *same* trigger program;
        unknown map or relation names mean the state belongs to a different
        program and raise.
        """
        if state.get("kind") != STATE_SINGLE:
            raise RuntimeEngineError(
                f"cannot restore a {state.get('kind')!r} state into a single engine"
            )
        if state.get("format") != STATE_FORMAT:
            raise RuntimeEngineError(
                f"engine state has format {state.get('format')!r}; "
                f"this build reads format {STATE_FORMAT}"
            )
        declared = set(self.maps.names())
        unknown = set(state["maps"]) - declared
        if unknown:
            raise RuntimeEngineError(
                f"state holds maps {sorted(unknown)} not declared by this program"
            )
        unknown = set(state["relations"]) - set(self.database.relations())
        if unknown:
            raise RuntimeEngineError(
                f"state holds relations {sorted(unknown)} not declared by this program"
            )
        # Repopulation below must not masquerade as view mutations: detach
        # the provenance watchers for the duration and reload ring contents
        # from the state afterwards.
        recorder = self._provenance
        if recorder is not None:
            self._detach_provenance()
        for name in self.maps.names():
            table = self.maps.table(name)
            table.clear()
            for values, value in state["maps"].get(name, ()):
                table.set(values, value)
        for name in self.database.relations():
            table = self.database.table(name)
            table.clear()
            for values, value in state["relations"].get(name, ()):
                table.set(values, value)
        self.events_processed = int(state["events_processed"])
        saved = state.get("provenance")
        if recorder is None and saved:
            # The state was produced with provenance enabled: carry the
            # configuration and history across the restore transparently.
            recorder = self.enable_provenance(
                depth=saved.get("depth"), views=list(saved.get("views", ()))
            )
            recorder.restore(saved)
        elif recorder is not None:
            self._attach_provenance()
            recorder.version = self.events_processed
            recorder.cause = ("restore", self.events_processed)
            if saved:
                recorder.restore(saved)
            else:
                for ring in recorder.rings.values():
                    ring.clear()

    # -- incremental state (delta checkpoints) ----------------------------------
    def supports_delta_state(self) -> bool:
        """Single engines track per-map dirty keys, so deltas are available."""
        return True

    def begin_delta_tracking(self) -> None:
        """Start recording dirty keys on every map and stored base relation.

        Idempotent per cut: the incremental-checkpoint layer calls this once
        at startup (or right after a full checkpoint); every
        :meth:`delta_state` drains the dirty sets and keeps tracking.
        """
        for name in self.maps.names():
            self.maps.table(name).begin_dirty_tracking()
        for name in self.database.relations():
            self.database.table(name).begin_dirty_tracking()

    def _table_delta(self, table) -> dict[str, Any] | None:
        """One table's change record since the last cut (None when clean).

        ``{"full": entries}`` replaces the table wholesale;
        ``{"changed": [(key, value | None)]}`` upserts each key — ``None``
        is a tombstone (zero-drop means stored values are never None).
        """
        mode, rows = table.collect_dirty()
        if mode == "clean":
            return None
        columns = table.columns
        if mode == "full":
            return {
                "full": [
                    (tuple(row[c] for c in columns), value)
                    for row, value in table.items()
                ]
            }
        primary = table.primary
        return {
            "changed": [
                (tuple(row[c] for c in columns), primary.get(row)) for row in rows
            ]
        }

    def delta_state(self) -> dict[str, Any]:
        """The changes since the previous cut (``kind: "single-delta"``).

        Requires :meth:`begin_delta_tracking`; a map that was never tracked
        is dumped wholesale (conservative, still correct).  Draining resets
        the dirty sets, so consecutive calls chain: full base + every delta
        in order reproduces :meth:`checkpoint_state` exactly.
        """
        maps: dict[str, Any] = {}
        for name in self.maps.names():
            delta = self._table_delta(self.maps.table(name))
            if delta is not None:
                maps[name] = delta
        relations: dict[str, Any] = {}
        for name in self.database.relations():
            delta = self._table_delta(self.database.table(name))
            if delta is not None:
                relations[name] = delta
        state: dict[str, Any] = {
            "format": STATE_FORMAT,
            "kind": STATE_DELTA,
            "events_processed": self.events_processed,
            "maps": maps,
            "relations": relations,
        }
        if self._provenance is not None:
            # Rings are bounded (depth entries per view), so carrying the
            # full recorder state keeps deltas small while making restores
            # from any chain provenance-exact.
            state["provenance"] = self._provenance.state()
        return state

    def _apply_table_delta(self, table, delta: Mapping[str, Any]) -> None:
        if "full" in delta:
            table.clear()
            for values, value in delta["full"]:
                table.set(values, value)
            return
        for values, value in delta["changed"]:
            table.set(values, 0 if value is None else value)

    def apply_delta_state(self, state: Mapping[str, Any]) -> None:
        """Apply a :meth:`delta_state` dictionary on top of the current state.

        Deltas must be applied in chain order on top of the base they were
        cut from; each call fast-forwards ``events_processed`` to the delta's
        cut.  Like :meth:`restore_state`, repopulation is invisible to
        provenance watchers.
        """
        if state.get("kind") != STATE_DELTA:
            raise RuntimeEngineError(
                f"cannot apply a {state.get('kind')!r} state as a delta"
            )
        if state.get("format") != STATE_FORMAT:
            raise RuntimeEngineError(
                f"engine state has format {state.get('format')!r}; "
                f"this build reads format {STATE_FORMAT}"
            )
        unknown = set(state["maps"]) - set(self.maps.names())
        if unknown:
            raise RuntimeEngineError(
                f"delta holds maps {sorted(unknown)} not declared by this program"
            )
        unknown = set(state["relations"]) - set(self.database.relations())
        if unknown:
            raise RuntimeEngineError(
                f"delta holds relations {sorted(unknown)} not declared by this program"
            )
        new_version = int(state["events_processed"])
        if new_version < self.events_processed:
            raise RuntimeEngineError(
                f"delta cut at version {new_version} is older than the engine "
                f"({self.events_processed}); deltas must be applied in chain order"
            )
        recorder = self._provenance
        if recorder is not None:
            self._detach_provenance()
        for name, delta in state["maps"].items():
            self._apply_table_delta(self.maps.table(name), delta)
        for name, delta in state["relations"].items():
            self._apply_table_delta(self.database.table(name), delta)
        self.events_processed = new_version
        saved = state.get("provenance")
        if recorder is None and saved:
            recorder = self.enable_provenance(
                depth=saved.get("depth"), views=list(saved.get("views", ()))
            )
            recorder.restore(saved)
        elif recorder is not None:
            self._attach_provenance()
            recorder.version = self.events_processed
            if saved:
                recorder.restore(saved)

    def close(self) -> None:
        """No-op: the per-event engine owns no external resources."""
