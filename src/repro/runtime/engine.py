"""The incremental view-maintenance engine.

:class:`IncrementalEngine` wraps a compiled trigger program with the runtime
state it needs (map store, base-relation store for static/required tables)
and exposes the operations an embedding application uses: feed events, read
views, inspect memory.  The same engine executes every compilation strategy
(full HO-IVM, classical IVM, re-evaluation, naive viewlet) — only the trigger
program differs — which is what makes the paper's shared-infrastructure
comparison meaningful.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.compiler.program import TriggerProgram
from repro.core.gmr import GMR
from repro.delta.events import StreamEvent
from repro.errors import RuntimeEngineError
from repro.runtime.database import Database
from repro.runtime.interpreter import TriggerExecutor
from repro.runtime.maps import MapStore
from repro.runtime.protocol import STATE_FORMAT, STATE_SINGLE


class IncrementalEngine:
    """Keeps the materialized views of one trigger program continuously fresh."""

    def __init__(self, program: TriggerProgram) -> None:
        self.program = program
        self.maps = MapStore()
        for decl in program.maps.values():
            self.maps.declare(decl.name, decl.keys)

        self.database = Database()
        for relation in program.static_relations:
            self.database.declare(relation, program.schemas[relation])
        self._maintained = program.requires_base_relations()
        for relation in self._maintained:
            self.database.declare(relation, program.schemas[relation])

        self._executor = TriggerExecutor(
            program, self.database, self.maps, maintained_relations=self._maintained
        )
        self.events_processed = 0

    @property
    def executor(self) -> TriggerExecutor:
        """The trigger executor (used by the batched execution subsystem)."""
        return self._executor

    # -- data loading -----------------------------------------------------------
    def load_static(self, relation: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Load a static relation before stream processing begins."""
        if relation not in self.program.static_relations:
            raise RuntimeEngineError(
                f"{relation!r} is not declared static in this program"
            )
        return self.database.load(relation, rows)

    # -- stream processing ----------------------------------------------------------
    def apply(self, event: StreamEvent) -> None:
        """Apply a single insert/delete event, refreshing every view."""
        if event.relation not in self.program.stream_relations:
            raise RuntimeEngineError(
                f"relation {event.relation!r} is not a stream relation of this program"
            )
        self._executor.apply(event)
        self.events_processed += 1

    def apply_many(self, events: Iterable[StreamEvent]) -> int:
        """Apply a sequence of events; returns how many were processed."""
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    def flush(self) -> None:
        """No-op: per-event execution never buffers (uniform engine contract)."""

    # -- reading views ----------------------------------------------------------------
    def view(self, name: str | None = None) -> GMR:
        """Contents of a view as a GMR (key row -> aggregate value)."""
        decl = self.program.root_map(name) if (
            name is None or name in self.program.roots
        ) else self.program.maps.get(name)
        if decl is None:
            raise RuntimeEngineError(f"unknown view {name!r}")
        return self.maps.table(decl.name).to_gmr()

    def scalar_result(self, name: str | None = None) -> Any:
        """The value of a scalar (non-grouping) view."""
        return self.view(name).total_multiplicity()

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]:
        """View contents keyed by the tuple of key values, in key order."""
        decl = self.program.root_map(name) if (
            name is None or name in self.program.roots
        ) else self.program.maps.get(name)
        if decl is None:
            raise RuntimeEngineError(f"unknown view {name!r}")
        table = self.maps.table(decl.name)
        return {
            tuple(row[c] for c in table.columns): value for row, value in table.items()
        }

    # -- accounting ----------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate resident size of all views plus stored base relations."""
        return self.maps.memory_bytes() + self.database.memory_bytes()

    def map_sizes(self) -> dict[str, int]:
        """Entry counts per materialized view."""
        return self.maps.sizes()

    def statistics(self) -> dict[str, object]:
        """Per-map and per-relation entry/memory/index statistics."""
        return {
            "events_processed": self.events_processed,
            "memory_bytes": self.memory_bytes(),
            "maps": self.maps.stats(),
            "relations": self.database.stats(),
        }

    def describe(self) -> str:
        """Human-readable listing of the compiled program this engine runs."""
        return self.program.pretty()

    # -- durable state / lifecycle ---------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Everything needed to rebuild this engine's observable state.

        The returned dictionary (``kind: "single"``) holds every map's entries,
        every stored base relation's tuples and the event count; values keep
        their exact runtime types so a restored engine is bit-identical.
        """
        maps: dict[str, list[tuple[tuple, Any]]] = {}
        for name in self.maps.names():
            table = self.maps.table(name)
            maps[name] = [
                (tuple(row[c] for c in table.columns), value)
                for row, value in table.items()
            ]
        relations: dict[str, list[tuple[tuple, Any]]] = {}
        for name in self.database.relations():
            table = self.database.table(name)
            relations[name] = [
                (tuple(row[c] for c in table.columns), value)
                for row, value in table.items()
            ]
        return {
            "format": STATE_FORMAT,
            "kind": STATE_SINGLE,
            "events_processed": self.events_processed,
            "maps": maps,
            "relations": relations,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Load a :meth:`checkpoint_state` dictionary into this engine.

        Intended for freshly built engines running the *same* trigger program;
        unknown map or relation names mean the state belongs to a different
        program and raise.
        """
        if state.get("kind") != STATE_SINGLE:
            raise RuntimeEngineError(
                f"cannot restore a {state.get('kind')!r} state into a single engine"
            )
        if state.get("format") != STATE_FORMAT:
            raise RuntimeEngineError(
                f"engine state has format {state.get('format')!r}; "
                f"this build reads format {STATE_FORMAT}"
            )
        declared = set(self.maps.names())
        unknown = set(state["maps"]) - declared
        if unknown:
            raise RuntimeEngineError(
                f"state holds maps {sorted(unknown)} not declared by this program"
            )
        unknown = set(state["relations"]) - set(self.database.relations())
        if unknown:
            raise RuntimeEngineError(
                f"state holds relations {sorted(unknown)} not declared by this program"
            )
        for name in self.maps.names():
            table = self.maps.table(name)
            table.clear()
            for values, value in state["maps"].get(name, ()):
                table.set(values, value)
        for name in self.database.relations():
            table = self.database.table(name)
            table.clear()
            for values, value in state["relations"].get(name, ()):
                table.set(values, value)
        self.events_processed = int(state["events_processed"])

    def close(self) -> None:
        """No-op: the per-event engine owns no external resources."""
