"""Deterministic crash-point injection for the durability layer.

Durability code is exactly the code whose interesting behaviour only shows
when the process dies at the worst possible instant.  This module gives the
test suite (and the CLI smoke jobs) a way to make that instant *chosen and
repeatable*: the WAL, checkpoint and recovery paths call
:func:`maybe_crash` at a small catalog of named **crash sites**, and an
armed site kills the process with ``os._exit`` — no ``atexit`` handlers, no
buffered-file flushing, no ``finally`` blocks, exactly like ``kill -9``.

Arming is either programmatic (:func:`arm`, used by the fork-based property
suite) or via the environment (used by subprocess smoke tests)::

    REPRO_CRASH_SITE=wal.append.written REPRO_CRASH_HITS=3 \
        python -m repro.service replay ...

kills the process the third time a WAL record has been written but not yet
fsynced.  An unarmed :func:`maybe_crash` is one module-level ``None`` check,
so leaving the hooks in production paths costs nothing measurable — and the
hooks live only on durability paths (per-batch, never per-event).

The crash-site catalog (every name is stable API for the test suite):

========================== =====================================================
site                       the process dies ...
========================== =====================================================
``wal.append.serialized``  after serializing a record, before writing it
``wal.append.written``     after the OS write, before any fsync decision
``wal.fsync``              inside the group-commit fsync, before the syscall
``wal.synced``             right after a successful WAL fsync
``wal.rotate``             after creating a new segment, before the dir fsync
``wal.pruned``             after deleting old segments, before the dir fsync
``checkpoint.written``     checkpoint temp file written+fsynced, before rename
``checkpoint.renamed``     after the rename, before the directory fsync
``delta.written``          delta temp file written+fsynced, before rename
``delta.renamed``          after the delta rename, before the directory fsync
``checkpoint.pruned``      after checkpoint GC unlinked files
``recovery.restored``      after the checkpoint chain loaded, before WAL replay
``recovery.replayed``      after the WAL tail replayed, before serving resumes
========================== =====================================================
"""

from __future__ import annotations

import os

#: Exit status used by injected crashes — the same one ``kill -9`` produces
#: as seen through ``subprocess`` conventions (128 + SIGKILL).
CRASH_EXIT_STATUS = 137

#: Every named crash site, in rough execution order (stable test API).
CRASH_SITES: tuple[str, ...] = (
    "wal.append.serialized",
    "wal.append.written",
    "wal.fsync",
    "wal.synced",
    "wal.rotate",
    "wal.pruned",
    "checkpoint.written",
    "checkpoint.renamed",
    "delta.written",
    "delta.renamed",
    "checkpoint.pruned",
    "recovery.restored",
    "recovery.replayed",
)

_armed_site: str | None = None
_hits_left: int = 0


def arm(site: str, hits: int = 1) -> None:
    """Arm ``site``: the ``hits``-th time it is reached the process dies."""
    global _armed_site, _hits_left
    if site not in CRASH_SITES:
        raise ValueError(f"unknown crash site {site!r}; catalog: {CRASH_SITES}")
    if hits < 1:
        raise ValueError(f"hits must be >= 1, got {hits}")
    _armed_site = site
    _hits_left = hits


def disarm() -> None:
    """Remove any armed crash site."""
    global _armed_site, _hits_left
    _armed_site = None
    _hits_left = 0


def armed() -> str | None:
    """The currently armed site, or None."""
    return _armed_site


def maybe_crash(site: str) -> None:
    """Die via ``os._exit`` when ``site`` is armed and its countdown expires."""
    global _hits_left
    if _armed_site is None or _armed_site != site:
        return
    _hits_left -= 1
    if _hits_left <= 0:
        # Flush nothing, run nothing: indistinguishable from kill -9 for
        # every durability invariant (page cache survives, process does not).
        os._exit(CRASH_EXIT_STATUS)


def _arm_from_environment() -> None:
    site = os.environ.get("REPRO_CRASH_SITE")
    if site:
        arm(site, int(os.environ.get("REPRO_CRASH_HITS", "1")))


_arm_from_environment()
