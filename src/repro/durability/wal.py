"""Segmented write-ahead event log with group fsync.

Every ingest batch is appended here *before* it touches engine state, so a
service that crashes at any instant can rebuild bit-identical views from
its newest checkpoint plus this log's tail.  The design follows the classic
recipe:

* **records** — one JSONL line per ingest batch::

      {"o": <offset>, "n": <count>, "e": [events...], "b": <batch id?>}\t<crc32>\n

  ``o`` is the service version *before* the batch (the batch applies events
  ``o+1 .. o+n``), ``e`` reuses the wire event encoding (Fraction-safe), and
  ``b`` carries the client-supplied idempotency id when there is one.  The
  CRC32 of the JSON body rides after a tab — compact JSON never contains a
  raw tab byte, so the separator is unambiguous;

* **segments** — records append to ``wal-<offset>.log`` where ``<offset>``
  is the version at which the segment starts.  :meth:`WriteAheadLog.rotate`
  (called at every checkpoint cut) seals the current segment and starts the
  next, and :meth:`WriteAheadLog.prune` deletes segments wholly below the
  oldest checkpoint base that recovery could still need.  Segment creation,
  rotation and pruning all fsync the directory, so the file set itself
  survives power loss — not just the bytes inside the files;

* **group fsync** — ``fsync_every=N`` issues one fsync per N appended
  batches and ``fsync_interval_ms=M`` bounds how long an unsynced record may
  linger; both are checked per append under the service's ingest lock.
  ``fsync_every=1`` (the default) makes every acknowledged batch durable;
  larger groups trade a bounded ack-durability window for throughput.
  :meth:`WriteAheadLog.sync` forces the group out — checkpoint cuts call it
  so a checkpoint never claims an offset the log has not durably reached;

* **torn-tail truncation** — on open, the newest segment is scanned and cut
  back to its last intact record (a crash mid-append leaves a partial or
  CRC-broken final line).  Corruption anywhere *else* is disk rot, not a
  crash artifact, and raises :class:`~repro.errors.DurabilityError` —
  recovery then falls back on replaying the original stream;

* **idempotent ingest** — the log keeps an in-memory index of every batch id
  seen in its live segments; :meth:`WriteAheadLog.seen_batch` lets the
  service answer a retried batch with its original result instead of
  double-applying it.  The dedup window is exactly the log retention window
  (everything since the oldest retained segment), which in turn covers every
  batch a client could still be retrying against a live server.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator, Sequence

from repro.delta.events import StreamEvent
from repro.durability.faults import maybe_crash
from repro.errors import DurabilityError
from repro.service.wire import decode_value, encode_value

#: Default bytes after which an append-heavy segment rotates on its own
#: (checkpoint cuts rotate explicitly; this bounds segment size between cuts).
DEFAULT_SEGMENT_MAX_BYTES = 64 * 1024 * 1024

_SEGMENT_PATTERN = re.compile(r"^wal-(\d+)\.log$")
_SEPARATOR = "\t"


def fsync_directory(directory: Path | str) -> None:
    """fsync a directory so renames/creates/unlinks inside it are durable.

    Best effort: some filesystems refuse directory fsync; the data fsyncs
    still went through, which is the strongest guarantee available there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalRecord:
    """One appended ingest batch: events ``offset+1 .. offset+count``."""

    offset: int
    count: int
    events: tuple[StreamEvent, ...]
    batch_id: str | None = None

    @property
    def end(self) -> int:
        """The service version after this batch."""
        return self.offset + self.count


def _encode_record(record: WalRecord) -> bytes:
    body: dict[str, Any] = {
        "o": record.offset,
        "n": record.count,
        "e": [
            {
                "kind": event.kind,
                "relation": event.relation,
                "values": [encode_value(value) for value in event.values],
            }
            for event in record.events
        ],
    }
    if record.batch_id is not None:
        body["b"] = record.batch_id
    text = json.dumps(body, separators=(",", ":"))
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{text}{_SEPARATOR}{crc:08x}\n".encode("utf-8")


def _decode_record(line: bytes) -> WalRecord:
    """Parse one complete record line; raises ``ValueError`` on any damage."""
    if not line.endswith(b"\n"):
        raise ValueError("record line is not newline-terminated")
    text = line[:-1].decode("utf-8")
    body, separator, crc_text = text.rpartition(_SEPARATOR)
    if not separator:
        raise ValueError("record line has no CRC field")
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(crc_text, 16):
        raise ValueError("record CRC mismatch")
    payload = json.loads(body)
    events = tuple(
        StreamEvent(
            item["relation"],
            tuple(decode_value(value) for value in item["values"]),
            1 if item["kind"] == "insert" else -1,
        )
        for item in payload["e"]
    )
    count = int(payload["n"])
    if count != len(events):
        raise ValueError(f"record claims {count} events, holds {len(events)}")
    return WalRecord(
        offset=int(payload["o"]),
        count=count,
        events=events,
        batch_id=payload.get("b"),
    )


class WriteAheadLog:
    """The write-ahead log of one service directory."""

    def __init__(
        self,
        directory: str | Path,
        fsync_every: int | None = 1,
        fsync_interval_ms: float | None = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        telemetry=None,
    ) -> None:
        if fsync_every is not None and fsync_every < 1:
            raise DurabilityError(f"fsync_every must be >= 1, got {fsync_every}")
        if fsync_interval_ms is not None and fsync_interval_ms < 0:
            raise DurabilityError(
                f"fsync_interval_ms must be >= 0, got {fsync_interval_ms}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        self.fsync_interval_ms = fsync_interval_ms
        self.segment_max_bytes = segment_max_bytes
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_bytes = 0
        #: version after the last appended record (the log's tip).
        self.end_offset = 0
        #: version after the last *fsynced* record (the durable tip).
        self.synced_offset = 0
        self._unsynced_records = 0
        self._last_sync = perf_counter()
        #: batch id -> (count, end version), over all retained segments.
        self._batch_index: dict[str, tuple[int, int]] = {}
        # Accounting (scraped via stats() / the telemetry collector).
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.truncated_bytes = 0
        self.rotations = 0
        self._fsync_hist = None
        if telemetry is not None and getattr(telemetry, "enabled", False):
            registry = telemetry.registry
            self._fsync_hist = registry.histogram(
                "repro_wal_fsync_seconds",
                help="WAL group-commit fsync latency",
            )
            registry.add_collector(self._collect_telemetry)
        self._open()

    # -- telemetry -------------------------------------------------------------
    def _collect_telemetry(self, registry) -> None:
        registry.counter(
            "repro_wal_records_total", help="Ingest batches appended to the WAL"
        ).value = self.records_appended
        registry.counter(
            "repro_wal_bytes_total", help="Bytes appended to the WAL"
        ).value = self.bytes_appended
        registry.counter(
            "repro_wal_fsyncs_total", help="WAL group-commit fsyncs issued"
        ).value = self.fsyncs
        registry.gauge(
            "repro_wal_segments", help="Live WAL segments on disk"
        ).set(len(self.segments()))
        registry.gauge(
            "repro_wal_lag_events",
            help="Events appended but not yet fsynced (the ack-durability window)",
        ).set(self.end_offset - self.synced_offset)

    # -- opening / scanning ----------------------------------------------------
    def segments(self) -> list[tuple[int, Path]]:
        """Retained segments as ``(start offset, path)``, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _SEGMENT_PATTERN.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return sorted(found)

    def _open(self) -> None:
        """Scan retained segments, truncate a torn tail, open for append."""
        segments = self.segments()
        tip = 0
        for index, (start, path) in enumerate(segments):
            newest = index == len(segments) - 1
            tip = self._scan_segment(start, path, truncate=newest)
        if segments:
            start, path = segments[-1]
            self._segment_path = path
            self._handle = open(path, "ab")
            self._segment_bytes = path.stat().st_size
        else:
            self._start_segment(0)
        self.end_offset = tip
        self.synced_offset = tip  # everything already on disk is the durable tip
        self._unsynced_records = 0

    def _scan_segment(self, start: int, path: Path, truncate: bool) -> int:
        """Validate one segment; returns the version after its last record."""
        tip = start
        good_bytes = 0
        with open(path, "rb") as handle:
            for line in handle:
                try:
                    record = _decode_record(line)
                except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                    if truncate:
                        damage = path.stat().st_size - good_bytes
                        os.truncate(path, good_bytes)
                        fsync_directory(self.directory)
                        self.truncated_bytes += damage
                        return tip
                    raise DurabilityError(
                        f"corrupt WAL record in non-tail segment {path.name}: {exc}"
                    ) from None
                if record.offset != tip:
                    raise DurabilityError(
                        f"WAL segment {path.name} jumps from offset {tip} "
                        f"to {record.offset}"
                    )
                tip = record.end
                good_bytes += len(line)
                if record.batch_id is not None:
                    self._batch_index[record.batch_id] = (record.count, record.end)
        return tip

    def _start_segment(self, offset: int) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        path = self.directory / f"wal-{offset:012d}.log"
        self._handle = open(path, "ab")
        self._segment_path = path
        self._segment_bytes = path.stat().st_size
        maybe_crash("wal.rotate")
        fsync_directory(self.directory)

    # -- appending -------------------------------------------------------------
    def append(
        self,
        offset: int,
        events: Sequence[StreamEvent],
        batch_id: str | None = None,
    ) -> bool:
        """Append one ingest batch; returns True when it is already durable.

        Must be called under the service's ingest lock, *before* the events
        touch engine state, with ``offset`` equal to the current version.
        """
        if self._handle is None:
            raise DurabilityError("write-ahead log is closed")
        if offset != self.end_offset:
            raise DurabilityError(
                f"WAL append at offset {offset} but the log ends at {self.end_offset}"
            )
        record = WalRecord(offset, len(events), tuple(events), batch_id)
        line = _encode_record(record)
        maybe_crash("wal.append.serialized")
        self._handle.write(line)
        self._handle.flush()
        maybe_crash("wal.append.written")
        self.end_offset = record.end
        self.records_appended += 1
        self.bytes_appended += len(line)
        self._segment_bytes += len(line)
        self._unsynced_records += 1
        if batch_id is not None:
            self._batch_index[batch_id] = (record.count, record.end)
        synced = False
        if self._should_sync():
            self.sync()
            synced = True
        if self._segment_bytes >= self.segment_max_bytes:
            if not synced:
                self.sync()
                synced = True
            self._start_segment(self.end_offset)
            self.rotations += 1
        return synced

    def _should_sync(self) -> bool:
        if self.fsync_every is not None and self._unsynced_records >= self.fsync_every:
            return True
        if self.fsync_interval_ms is not None:
            return (perf_counter() - self._last_sync) * 1000.0 >= self.fsync_interval_ms
        return False

    def sync(self) -> None:
        """Force the pending record group to durable storage."""
        if self._handle is None:
            raise DurabilityError("write-ahead log is closed")
        if self._unsynced_records == 0 and self.synced_offset == self.end_offset:
            self._last_sync = perf_counter()
            return
        maybe_crash("wal.fsync")
        started = perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        elapsed = perf_counter() - started
        maybe_crash("wal.synced")
        self.fsyncs += 1
        self.synced_offset = self.end_offset
        self._unsynced_records = 0
        self._last_sync = perf_counter()
        if self._fsync_hist is not None:
            self._fsync_hist.observe(elapsed)

    # -- checkpoint-cut maintenance ---------------------------------------------
    def rotate(self) -> None:
        """Seal the current segment at the tip and start the next one.

        Called at checkpoint cuts so :meth:`prune` can later drop whole
        segments below a durable checkpoint without splitting files.
        """
        self.sync()
        if self._segment_bytes == 0:
            return  # current segment is empty: it already starts at the tip
        self._start_segment(self.end_offset)
        self.rotations += 1

    def prune(self, keep_from_offset: int) -> int:
        """Delete segments whose records all precede ``keep_from_offset``.

        A segment is removable when the *next* segment starts at or below
        ``keep_from_offset`` (every record in it is then older than anything
        recovery could need).  Returns the number of segments removed.
        """
        segments = self.segments()
        removed = 0
        for index, (start, path) in enumerate(segments):
            if index + 1 >= len(segments):
                break  # never remove the active segment
            next_start = segments[index + 1][0]
            if next_start <= keep_from_offset and path != self._segment_path:
                self._drop_batch_ids(start, path)
                path.unlink()
                removed += 1
        if removed:
            maybe_crash("wal.pruned")
            fsync_directory(self.directory)
        return removed

    def _drop_batch_ids(self, start: int, path: Path) -> None:
        """Forget the batch ids of a segment about to be deleted."""
        try:
            with open(path, "rb") as handle:
                for line in handle:
                    try:
                        record = _decode_record(line)
                    except Exception:
                        break
                    if record.batch_id is not None:
                        self._batch_index.pop(record.batch_id, None)
        except OSError:
            pass

    def align_to(self, offset: int) -> None:
        """Restart the log at ``offset`` when it is behind the restored state.

        Used when checkpoints are newer than the retained log (e.g. a fresh
        WAL directory next to surviving checkpoints): every record at or
        below ``offset`` is already reflected in the checkpoint chain, so the
        old segments — and their batch-id dedup window — are dropped and a
        new segment starts at the restored version.
        """
        if offset < self.end_offset:
            raise DurabilityError(
                f"cannot align the WAL to offset {offset}: the log already "
                f"ends at {self.end_offset}"
            )
        if offset == self.end_offset:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for _, path in self.segments():
            path.unlink()
        self._batch_index.clear()
        self.end_offset = offset
        self.synced_offset = offset
        self._unsynced_records = 0
        self._start_segment(offset)

    def reset(self) -> None:
        """Delete every segment and restart the log at offset 0 (``--fresh``)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for _, path in self.segments():
            path.unlink()
        fsync_directory(self.directory)
        self._batch_index.clear()
        self.end_offset = 0
        self.synced_offset = 0
        self._unsynced_records = 0
        self._start_segment(0)

    # -- replay / dedup ---------------------------------------------------------
    def replay(self, from_offset: int = 0) -> Iterator[WalRecord]:
        """Yield the records whose batches end after ``from_offset``, in order.

        ``from_offset`` is a checkpoint cut, and cuts always align with batch
        boundaries — a record straddling it means the log and the checkpoint
        disagree about history and recovery must not guess.
        """
        tip: int | None = None
        for start, path in self.segments():
            with open(path, "rb") as handle:
                for line in handle:
                    try:
                        record = _decode_record(line)
                    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                        raise DurabilityError(
                            f"corrupt WAL record during replay in {path.name}: {exc}"
                        ) from None
                    if tip is not None and record.offset != tip:
                        raise DurabilityError(
                            f"WAL gap: segment {path.name} continues at offset "
                            f"{record.offset}, expected {tip}"
                        )
                    tip = record.end
                    if record.end <= from_offset:
                        continue
                    if record.offset < from_offset:
                        raise DurabilityError(
                            f"checkpoint cut {from_offset} falls inside WAL record "
                            f"{record.offset}..{record.end}; cuts must align with "
                            f"ingest batches"
                        )
                    yield record

    def seen_batch(self, batch_id: str) -> tuple[int, int] | None:
        """``(count, version)`` of an already-logged batch id, else None."""
        return self._batch_index.get(batch_id)

    # -- accounting / lifecycle --------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters for ``service.statistics()`` and the bench harness."""
        return {
            "end_offset": self.end_offset,
            "synced_offset": self.synced_offset,
            "lag_events": self.end_offset - self.synced_offset,
            "segments": len(self.segments()),
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "truncated_bytes": self.truncated_bytes,
            "batch_ids_indexed": len(self._batch_index),
            "fsync_every": self.fsync_every,
            "fsync_interval_ms": self.fsync_interval_ms,
        }

    def close(self) -> None:
        """Sync and close the active segment."""
        if self._handle is None:
            return
        try:
            self.sync()
        finally:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
