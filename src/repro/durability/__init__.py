"""Durability layer: write-ahead log, crash-point injection, recovery support.

The serving layer composes three mechanisms to survive ``kill -9`` at any
instant with bit-identical views:

* :class:`~repro.durability.wal.WriteAheadLog` — every ingest batch is
  logged (JSONL + CRC, group fsync) *before* it touches engine state;
* incremental checkpoints — ``service/checkpoint.py`` dumps per-map
  dirty-key deltas at each cut, chained to periodic full bases;
* recovery — newest intact base + delta chain + idempotent WAL tail replay
  (orchestrated by ``repro.service.core.ViewService.recover``).

:mod:`repro.durability.faults` provides the deterministic crash-site
injection the test suite uses to prove all of the above.
"""

from repro.durability.faults import (
    CRASH_EXIT_STATUS,
    CRASH_SITES,
    arm,
    armed,
    disarm,
    maybe_crash,
)
from repro.durability.wal import (
    DEFAULT_SEGMENT_MAX_BYTES,
    WalRecord,
    WriteAheadLog,
    fsync_directory,
)

__all__ = [
    "CRASH_EXIT_STATUS",
    "CRASH_SITES",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "WalRecord",
    "WriteAheadLog",
    "arm",
    "armed",
    "disarm",
    "fsync_directory",
    "maybe_crash",
]
