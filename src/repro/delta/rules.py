"""The delta transform (Section 3.4 of the paper).

``delta(Q, u)`` returns an AGCA expression for the change of ``Q``'s result
when the database is changed by the update ``u``:

* sums distribute,
* products follow the Leibniz-like rule
  ``∆(A * B) = ∆A * B + A * ∆B + ∆A * ∆B`` (a consequence of ring
  distributivity),
* aggregation commutes with the delta,
* constants, values, and conditions have delta zero,
* a relation atom matching the update becomes the update itself — for a
  single-tuple update ``±R(t)`` it is the product of lifts
  ``±(x1 := t1) * ... * (xk := tk)``,
* lifts (nested aggregates) and EXISTS use the re-evaluation form
  ``(x := Q + ∆Q) - (x := Q)`` which references the original query twice;
  the materialization heuristics deal with the consequences (Section 5.1).

The function is purely syntactic; simplification is a separate pass
(:mod:`repro.optimizer.simplify`).
"""

from __future__ import annotations

from typing import Union

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VConst,
    VVar,
)
from repro.agca.builders import const, lift, neg, plus, prod
from repro.delta.events import BulkUpdate, TriggerEvent
from repro.errors import DeltaError

Update = Union[TriggerEvent, BulkUpdate]

_ZERO = Value(VConst(0))


def delta_is_zero(expr: Expr) -> bool:
    """True when an expression is the literal zero produced by the delta rules."""
    return isinstance(expr, Value) and isinstance(expr.vexpr, VConst) and expr.vexpr.value == 0


def delta(expr: Expr, update: Update) -> Expr:
    """Delta of ``expr`` with respect to ``update`` (syntactic, unsimplified)."""
    if isinstance(expr, (Value, Cmp)):
        return _ZERO

    if isinstance(expr, MapRef):
        raise DeltaError(
            "cannot take the delta of a materialized map reference; deltas are taken "
            "over base-relation queries before materialization"
        )

    if isinstance(expr, Relation):
        return _delta_relation(expr, update)

    if isinstance(expr, Sum):
        parts = [delta(t, update) for t in expr.terms]
        nonzero = [p for p in parts if not delta_is_zero(p)]
        if not nonzero:
            return _ZERO
        return plus(*nonzero)

    if isinstance(expr, Product):
        return _delta_product(expr, update)

    if isinstance(expr, AggSum):
        inner = delta(expr.term, update)
        if delta_is_zero(inner):
            return _ZERO
        return AggSum(expr.group, inner)

    if isinstance(expr, Lift):
        inner = delta(expr.term, update)
        if delta_is_zero(inner):
            return _ZERO
        new_value = Lift(expr.var, plus(expr.term, inner))
        old_value = Lift(expr.var, expr.term)
        return plus(new_value, neg(old_value))

    if isinstance(expr, Exists):
        inner = delta(expr.term, update)
        if delta_is_zero(inner):
            return _ZERO
        new_value = Exists(plus(expr.term, inner))
        old_value = Exists(expr.term)
        return plus(new_value, neg(old_value))

    raise TypeError(f"not an AGCA expression: {expr!r}")


def _delta_relation(atom: Relation, update: Update) -> Expr:
    if isinstance(update, BulkUpdate):
        if atom.name != update.relation:
            return _ZERO
        return Relation(update.delta_relation, atom.columns)

    if atom.name != update.relation:
        return _ZERO
    if len(atom.columns) != len(update.trigger_vars):
        raise DeltaError(
            f"relation {atom.name!r} used with arity {len(atom.columns)} but the update "
            f"provides {len(update.trigger_vars)} fields"
        )
    factors = [
        lift(column, Value(VVar(trigger_var)))
        for column, trigger_var in zip(atom.columns, update.trigger_vars)
    ]
    if update.sign < 0:
        return prod(const(-1), *factors)
    return prod(*factors)


def _delta_product(expr: Product, update: Update) -> Expr:
    terms = list(expr.terms)
    if len(terms) == 1:
        return delta(terms[0], update)
    head, tail = terms[0], Product(tuple(terms[1:]))
    d_head = delta(head, update)
    d_tail = delta(tail, update)
    parts: list[Expr] = []
    if not delta_is_zero(d_head):
        parts.append(prod(d_head, tail))
    if not delta_is_zero(d_tail):
        parts.append(prod(head, d_tail))
    if not delta_is_zero(d_head) and not delta_is_zero(d_tail):
        parts.append(prod(d_head, d_tail))
    if not parts:
        return _ZERO
    return plus(*parts)
