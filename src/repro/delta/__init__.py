"""Delta processing: update events and the (higher-order) delta transform."""

from repro.delta.events import (
    DELETE,
    INSERT,
    BulkUpdate,
    StreamEvent,
    TriggerEvent,
    delete,
    insert,
    trigger_events_for,
)
from repro.delta.rules import delta, delta_is_zero

__all__ = [
    "DELETE",
    "INSERT",
    "BulkUpdate",
    "StreamEvent",
    "TriggerEvent",
    "delete",
    "insert",
    "trigger_events_for",
    "delta",
    "delta_is_zero",
]
