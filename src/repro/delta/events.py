"""Update events.

Two kinds of objects describe updates:

* :class:`StreamEvent` — a concrete runtime event: the insertion (+1) or
  deletion (-1) of one tuple into/from a base relation.  Streams, agendas and
  the engines all speak :class:`StreamEvent`.
* :class:`TriggerEvent` — a *symbolic* single-tuple update used at compile
  time: it fixes the relation, the sign, and the fresh trigger variable names
  that stand for the inserted/deleted tuple's fields.  The delta transform is
  taken with respect to a :class:`TriggerEvent`.

:class:`BulkUpdate` describes the general (multi-tuple) update of the viewlet
transform: the delta of a relation atom is then another relation atom over a
"delta relation", exactly as in Section 3.4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

INSERT = 1
DELETE = -1

_SIGN_NAMES = {INSERT: "insert", DELETE: "delete"}


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """A concrete single-tuple update: ``sign`` is +1 (insert) or -1 (delete)."""

    relation: str
    values: tuple[Any, ...]
    sign: int = INSERT

    def __post_init__(self) -> None:
        if self.sign not in (INSERT, DELETE):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def kind(self) -> str:
        """``"insert"`` or ``"delete"``."""
        return _SIGN_NAMES[self.sign]

    def inverted(self) -> "StreamEvent":
        """The event that undoes this one."""
        return StreamEvent(self.relation, self.values, -self.sign)

    def __repr__(self) -> str:
        return f"{'+' if self.sign == INSERT else '-'}{self.relation}{self.values!r}"


def insert(relation: str, *values: Any) -> StreamEvent:
    """Convenience constructor for an insertion event."""
    return StreamEvent(relation, values, INSERT)


def delete(relation: str, *values: Any) -> StreamEvent:
    """Convenience constructor for a deletion event."""
    return StreamEvent(relation, values, DELETE)


@dataclass(frozen=True, slots=True)
class TriggerEvent:
    """A symbolic single-tuple update ``±R(t1, ..., tk)`` used at compile time.

    ``columns`` are the relation's schema columns and ``trigger_vars`` the
    fresh variables standing for the update's field values, in the same order.
    """

    relation: str
    sign: int
    columns: tuple[str, ...]
    trigger_vars: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.sign not in (INSERT, DELETE):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")
        if len(self.columns) != len(self.trigger_vars):
            raise ValueError("columns and trigger_vars must have the same length")
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "trigger_vars", tuple(self.trigger_vars))

    @property
    def kind(self) -> str:
        """``"insert"`` or ``"delete"``."""
        return _SIGN_NAMES[self.sign]

    @property
    def name(self) -> str:
        """A stable identifier such as ``insert_lineitem`` used to key triggers."""
        return f"{self.kind}_{self.relation.lower()}"

    def bindings_for(self, event: StreamEvent) -> dict[str, Any]:
        """Bind the trigger variables to a concrete event's field values."""
        if event.relation != self.relation:
            raise ValueError(
                f"event for relation {event.relation!r} does not match trigger on "
                f"{self.relation!r}"
            )
        if len(event.values) != len(self.trigger_vars):
            raise ValueError(
                f"event arity {len(event.values)} does not match relation arity "
                f"{len(self.trigger_vars)}"
            )
        return dict(zip(self.trigger_vars, event.values))

    def __repr__(self) -> str:
        sign = "+" if self.sign == INSERT else "-"
        return f"{sign}{self.relation}({', '.join(self.trigger_vars)})"


@dataclass(frozen=True, slots=True)
class BulkUpdate:
    """A symbolic bulk update: the change to ``relation`` is itself a GMR.

    The delta of a relation atom with respect to a bulk update is an atom over
    the ``delta_relation`` name.
    """

    relation: str
    delta_relation: str

    def __repr__(self) -> str:
        return f"∆{self.relation}(as {self.delta_relation})"


def fresh_trigger_vars(
    relation: str, columns: Sequence[str], avoid: Iterable[str]
) -> tuple[str, ...]:
    """Generate trigger variable names for ``relation`` avoiding collisions.

    The default scheme mirrors the paper's trigger signatures: the variables
    are the lower-cased column names prefixed with the relation, e.g.
    ``lineitem_orderkey``.  Names colliding with ``avoid`` get a numeric
    suffix.
    """
    taken = set(avoid)
    out: list[str] = []
    for column in columns:
        base = f"{relation.lower()}_{column.lower()}"
        name = base
        counter = 1
        while name in taken or name in out:
            name = f"{base}_{counter}"
            counter += 1
        out.append(name)
    return tuple(out)


def trigger_events_for(
    schemas: Mapping[str, Sequence[str]],
    avoid: Iterable[str] = (),
    relations: Iterable[str] | None = None,
    include_deletes: bool = True,
) -> list[TriggerEvent]:
    """Build the insert (and optionally delete) trigger events for a schema set.

    ``schemas`` maps relation names to their column lists; ``relations``
    restricts the set (defaults to all of them, e.g. excluding static tables).
    """
    wanted = list(relations) if relations is not None else list(schemas)
    events: list[TriggerEvent] = []
    for relation in wanted:
        columns = tuple(schemas[relation])
        trigger_vars = fresh_trigger_vars(relation, columns, avoid)
        events.append(TriggerEvent(relation, INSERT, columns, trigger_vars))
        if include_deletes:
            events.append(TriggerEvent(relation, DELETE, columns, trigger_vars))
    return events
