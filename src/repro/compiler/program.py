"""Trigger-program intermediate representation.

The output of Higher-Order IVM (and of the naive viewlet transform) is a
*trigger program*:

* a set of :class:`MapDeclaration` — the materialized views, each a map from
  key tuples to aggregate values, defined by an AGCA query over the base
  relations (used for documentation, testing and re-initialization);
* for every stream relation and update direction, a :class:`Trigger` holding
  the ordered list of :class:`Statement` update statements, of the form
  ``foreach keys: target[keys] += expr`` or ``target[keys] := expr``.

Statement right-hand sides reference materialized maps (:class:`MapRef`
atoms), trigger variables, static relations and — for depth-limited
compilations emulating classical IVM / re-evaluation — base stream relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.agca.ast import Expr, Relation, maps_of, relations_of, walk
from repro.agca.printer import to_string
from repro.agca.schema import degree
from repro.delta.events import TriggerEvent

ASSIGN = ":="
INCREMENT = "+="


@dataclass(frozen=True)
class MapDeclaration:
    """A materialized view: ``name[keys] := definition`` (over base relations)."""

    name: str
    keys: tuple[str, ...]
    definition: Expr
    level: int = 0
    description: str = ""

    @property
    def degree(self) -> int:
        """Number of base relation atoms joined in the definition."""
        return degree(self.definition)

    def pretty(self) -> str:
        """One-line rendering, e.g. ``Q_LI[ck, ok] := Sum[ck, ok](...)``."""
        keys = ", ".join(self.keys)
        return f"{self.name}[{keys}] := {to_string(self.definition)}"


@dataclass(frozen=True)
class Statement:
    """One update statement inside a trigger.

    ``operation`` is ``"+="`` (add the right-hand side's rows to the target
    map, the viewlet-transform form) or ``":="`` (recompute the target map
    from scratch, used when re-evaluation beats incremental maintenance).
    ``event`` records the symbolic trigger event the statement was derived
    for; its trigger variables are the free parameters of ``expr``.
    """

    target: str
    target_keys: tuple[str, ...]
    operation: str
    expr: Expr
    event: TriggerEvent
    target_degree: int = 0

    def reads_maps(self) -> frozenset[str]:
        """Names of materialized maps read by the right-hand side."""
        return maps_of(self.expr)

    def reads_relations(self) -> frozenset[str]:
        """Names of base relations read directly by the right-hand side."""
        return relations_of(self.expr)

    def loop_keys(self) -> tuple[str, ...]:
        """Target keys that are not pinned to trigger variables (loop variables)."""
        bound = set(self.event.trigger_vars)
        return tuple(k for k in self.target_keys if k not in bound)

    def pretty(self) -> str:
        """One-line rendering, e.g. ``foreach ck: Q[ck] += ...``."""
        loops = self.loop_keys()
        prefix = f"foreach {', '.join(loops)}: " if loops else ""
        keys = ", ".join(self.target_keys)
        return f"{prefix}{self.target}[{keys}] {self.operation} {to_string(self.expr)}"


@dataclass
class Trigger:
    """All statements to run when one kind of event arrives (e.g. insert into R)."""

    relation: str
    sign: int
    statements: list[Statement] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Stable identifier like ``insert_lineitem``."""
        kind = "insert" if self.sign > 0 else "delete"
        return f"{kind}_{self.relation.lower()}"

    def pretty(self) -> str:
        """Multi-line rendering of the whole trigger body."""
        kind = "insert into" if self.sign > 0 else "delete from"
        header = f"on {kind} {self.relation}:"
        body = "\n".join(f"  {stmt.pretty()}" for stmt in self.statements)
        return f"{header}\n{body}" if body else f"{header}\n  (no-op)"


@dataclass
class TriggerProgram:
    """A compiled query: map declarations plus per-event triggers."""

    roots: dict[str, str]
    maps: dict[str, MapDeclaration]
    triggers: dict[str, Trigger]
    schemas: dict[str, tuple[str, ...]]
    stream_relations: tuple[str, ...]
    static_relations: tuple[str, ...] = ()

    # -- lookup helpers ------------------------------------------------------
    def root_map(self, query: str | None = None) -> MapDeclaration:
        """The map holding a root query's result (the single root by default)."""
        if query is None:
            if len(self.roots) != 1:
                raise KeyError(
                    f"program has {len(self.roots)} roots; specify one of {sorted(self.roots)}"
                )
            query = next(iter(self.roots))
        return self.maps[self.roots[query]]

    def trigger_for(self, sign: int, relation: str) -> Trigger | None:
        """The trigger handling ``sign`` (+1/-1) updates of ``relation``, if any."""
        kind = "insert" if sign > 0 else "delete"
        return self.triggers.get(f"{kind}_{relation.lower()}")

    def statements(self) -> Iterator[Statement]:
        """Iterate over every statement of every trigger."""
        for trigger in self.triggers.values():
            yield from trigger.statements

    # -- program-level properties ------------------------------------------------
    def referenced_relations(self) -> frozenset[str]:
        """Base relations read directly by any statement (need to be stored)."""
        out: set[str] = set()
        for stmt in self.statements():
            out.update(stmt.reads_relations())
        return frozenset(out)

    def requires_base_relations(self) -> frozenset[str]:
        """Stream relations that must be maintained as base tables at runtime."""
        return self.referenced_relations() & frozenset(self.stream_relations)

    def map_count(self) -> int:
        """Number of materialized views (including roots)."""
        return len(self.maps)

    def statement_count(self) -> int:
        """Total number of update statements across all triggers."""
        return sum(len(t.statements) for t in self.triggers.values())

    def summary(self) -> dict[str, int]:
        """Compact metrics used by reports and the Figure-2 style feature table."""
        return {
            "maps": self.map_count(),
            "statements": self.statement_count(),
            "triggers": len(self.triggers),
            "max_degree": max((m.degree for m in self.maps.values()), default=0),
            "reeval_statements": sum(
                1 for s in self.statements() if s.operation == ASSIGN
            ),
        }

    def pretty(self) -> str:
        """Full human-readable listing of maps and triggers (paper Figure 3 style)."""
        lines = ["-- materialized views --"]
        for decl in self.maps.values():
            lines.append(f"  {decl.pretty()}")
        lines.append("-- triggers --")
        for trigger in self.triggers.values():
            lines.append(trigger.pretty())
        return "\n".join(lines)


def order_statements(statements: Sequence[Statement]) -> list[Statement]:
    """Order a trigger's statements so each reads the view versions it expects.

    ``+=`` statements implement ``Q(D + ∆D) - Q(D)`` and must read the *old*
    contents of the maps they use, so they run first, parents (higher degree)
    before the children that maintain those maps (lower degree).  ``:=``
    statements re-evaluate their target from the *new* contents, so they run
    last, lowest degree first.
    """
    increments = [s for s in statements if s.operation == INCREMENT]
    assigns = [s for s in statements if s.operation == ASSIGN]
    increments.sort(key=lambda s: -s.target_degree)
    assigns.sort(key=lambda s: s.target_degree)
    return increments + assigns
