"""The DBToaster compiler: viewlet transform, HO-IVM and trigger programs."""

from repro.compiler.program import (
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
)
from repro.compiler.materialization import CompilerOptions, MaterializationContext
from repro.compiler.hoivm import compile_query
from repro.compiler.viewlet import viewlet_transform

__all__ = [
    "MapDeclaration",
    "Statement",
    "Trigger",
    "TriggerProgram",
    "CompilerOptions",
    "MaterializationContext",
    "compile_query",
    "viewlet_transform",
]
