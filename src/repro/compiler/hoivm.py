"""Higher-Order IVM compilation (Algorithms 2 and 3 of the paper).

``compile_query`` turns one or more AGCA queries into a
:class:`~repro.compiler.program.TriggerProgram`:

1. every root query becomes a materialized map;
2. for every map not yet processed and every insert/delete event on a stream
   relation it references, the delta is computed, simplified, and turned into
   an update statement whose subexpressions are materialized according to the
   heuristics in :mod:`repro.compiler.materialization`;
3. newly created maps are processed recursively until a fixpoint is reached
   (Theorem 1 guarantees termination because each level strictly decreases
   the query degree, and nested aggregates are cut off by rule 4);
4. statements inside each trigger are ordered so that ``+=`` statements read
   pre-update view versions and ``:=`` (re-evaluation) statements read
   post-update versions.

Depth-limited compilation reproduces the paper's baselines: ``depth=0`` is
full re-evaluation on every update (REP) and ``depth=1`` is classical
first-order IVM with deltas evaluated against the base tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    Relation,
    contains_relation,
    free_variables,
    relations_of,
    walk,
)
from repro.agca.schema import degree, input_variables, output_variables
from repro.compiler.materialization import CompilerOptions, MaterializationContext, options_for
from repro.compiler.program import (
    ASSIGN,
    INCREMENT,
    MapDeclaration,
    Statement,
    Trigger,
    TriggerProgram,
    order_statements,
)
from repro.delta.events import DELETE, INSERT, TriggerEvent, fresh_trigger_vars
from repro.delta.rules import delta
from repro.errors import CompilationError
from repro.optimizer.pushdown import push_aggregates
from repro.optimizer.range_restriction import apply_key_mapping, extract_range_restrictions
from repro.optimizer.simplify import simplify


def compile_query(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
    options: CompilerOptions | str | None = None,
    name: str = "Q",
) -> TriggerProgram:
    """Compile ``queries`` into a trigger program.

    Parameters
    ----------
    queries:
        A single AGCA expression or a mapping of result names to expressions
        (a SQL query with several aggregates compiles to several roots).
    schemas:
        Relation name -> ordered column names, for every relation used.
    stream_relations:
        Relations receiving updates (defaults to every non-static relation).
    static_relations:
        Relations loaded once before stream processing (e.g. Nation/Region).
    options:
        A :class:`CompilerOptions` instance or a preset name
        (``"dbtoaster"``, ``"naive"``, ``"ivm"``, ``"rep"``).
    name:
        Root map name used when ``queries`` is a single expression.
    """
    if isinstance(options, str):
        options = options_for(options)
    options = options or CompilerOptions()

    if not isinstance(queries, Mapping):
        queries = {name: queries}
    normalized_schemas = {rel: tuple(cols) for rel, cols in schemas.items()}
    static = tuple(static_relations)
    if stream_relations is None:
        streams = tuple(r for r in normalized_schemas if r not in static)
    else:
        streams = tuple(stream_relations)

    for query_name, expr in queries.items():
        for rel in relations_of(expr):
            if rel not in normalized_schemas:
                raise CompilationError(
                    f"query {query_name!r} references relation {rel!r} with no schema"
                )

    ctx = MaterializationContext(normalized_schemas, streams, static, options)

    roots: dict[str, str] = {}
    for query_name, expr in queries.items():
        prepared = simplify(expr) if options.simplify else expr
        keys = tuple(sorted(output_variables(prepared)))
        if input_variables(prepared):
            raise CompilationError(
                f"query {query_name!r} has unbound input variables "
                f"{sorted(input_variables(prepared))}"
            )
        ctx.register_root(query_name, keys, prepared)
        roots[query_name] = query_name

    triggers: dict[str, Trigger] = {}
    for relation in streams:
        for sign in (INSERT, DELETE):
            trigger = Trigger(relation, sign)
            triggers[trigger.name] = trigger

    processed: set[str] = set()
    while ctx.pending:
        map_name = ctx.pending.pop(0)
        if map_name in processed:
            continue
        processed.add(map_name)
        decl = ctx.maps[map_name]
        if decl.degree == 0:
            continue
        referenced = relations_of(decl.definition)
        for relation in streams:
            if relation not in referenced:
                continue
            for sign in (INSERT, DELETE):
                event = _trigger_event(decl, relation, sign, normalized_schemas)
                statement = _build_statement(decl, event, ctx, options)
                if statement is not None:
                    triggers[f"{event.kind}_{relation.lower()}"].statements.append(statement)

    for trigger in triggers.values():
        trigger.statements = order_statements(trigger.statements)

    return TriggerProgram(
        roots=roots,
        maps=ctx.maps,
        triggers=triggers,
        schemas=normalized_schemas,
        stream_relations=streams,
        static_relations=static,
    )


# ---------------------------------------------------------------------------
# statement construction
# ---------------------------------------------------------------------------


def _trigger_event(
    decl: MapDeclaration, relation: str, sign: int, schemas: Mapping[str, tuple[str, ...]]
) -> TriggerEvent:
    columns = schemas[relation]
    avoid = set(free_variables(decl.definition)) | set(decl.keys)
    trigger_vars = fresh_trigger_vars(relation, columns, avoid)
    return TriggerEvent(relation, sign, columns, trigger_vars)


def _strip_aggsum(expr: Expr) -> Expr:
    while isinstance(expr, AggSum):
        expr = expr.term
    return expr


def _is_zero(expr: Expr) -> bool:
    from repro.agca.ast import Value, VConst

    return isinstance(expr, Value) and isinstance(expr.vexpr, VConst) and expr.vexpr.value == 0


def _build_statement(
    decl: MapDeclaration,
    event: TriggerEvent,
    ctx: MaterializationContext,
    options: CompilerOptions,
) -> Statement | None:
    # ``depth`` limits how many delta orders get materialized views: level-0 is
    # the query itself, so with depth=1 (classical IVM) the root's first-order
    # delta is evaluated directly over the base tables, and with depth=0 (REP)
    # even that is skipped in favour of full re-evaluation.
    if options.depth is not None:
        depth_limited = decl.level >= max(options.depth - 1, 0)
    else:
        depth_limited = False

    if depth_limited and options.depth == 0:
        # Full re-evaluation (REP): recompute the view from the base tables.
        expr = decl.definition
        if options.decomposition:
            expr = push_aggregates(expr, decl.keys)
        return Statement(
            target=decl.name,
            target_keys=decl.keys,
            operation=ASSIGN,
            expr=expr,
            event=event,
            target_degree=decl.degree,
        )

    raw_delta = delta(decl.definition, event)
    if options.simplify:
        simplified = simplify(raw_delta, bound=event.trigger_vars, needed=decl.keys)
    else:
        simplified = raw_delta
    if _is_zero(simplified):
        return None
    body = _strip_aggsum(simplified)

    if depth_limited:
        # Classical (depth-limited) IVM: evaluate the delta over base tables.
        keys, expr = _finalize(body, decl.keys, event, options)
        return Statement(
            target=decl.name,
            target_keys=keys,
            operation=INCREMENT,
            expr=expr,
            event=event,
            target_degree=decl.degree,
        )

    use_reeval = _choose_reevaluation(decl.definition, event, options)
    if use_reeval:
        materialized = ctx.materialize(
            _strip_aggsum(decl.definition),
            bound=(),
            needed=decl.keys,
            level=decl.level + 1,
            avoid=decl.name,
        )
        if options.decomposition:
            materialized = push_aggregates(materialized, decl.keys)
        return Statement(
            target=decl.name,
            target_keys=decl.keys,
            operation=ASSIGN,
            expr=materialized,
            event=event,
            target_degree=decl.degree,
        )

    materialized = ctx.materialize(
        body,
        bound=event.trigger_vars,
        needed=decl.keys,
        level=decl.level + 1,
        avoid=decl.name,
    )
    keys, expr = _finalize(materialized, decl.keys, event, options)
    return Statement(
        target=decl.name,
        target_keys=keys,
        operation=INCREMENT,
        expr=expr,
        event=event,
        target_degree=decl.degree,
    )


def _finalize(
    expr: Expr,
    keys: tuple[str, ...],
    event: TriggerEvent,
    options: CompilerOptions,
) -> tuple[tuple[str, ...], Expr]:
    """Finish a statement body: push aggregates down, extract range restrictions."""
    if options.decomposition:
        expr = push_aggregates(expr, set(keys) | set(event.trigger_vars))
    if not options.extract_ranges:
        return keys, expr
    mapping, residual = extract_range_restrictions(expr, keys, event.trigger_vars)
    if not mapping:
        return keys, expr
    return apply_key_mapping(keys, mapping), residual


# ---------------------------------------------------------------------------
# nested-aggregate strategy (incremental vs re-evaluation)
# ---------------------------------------------------------------------------


def _choose_reevaluation(
    definition: Expr, event: TriggerEvent, options: CompilerOptions
) -> bool:
    """Decide whether this event's statement should re-evaluate the view.

    Re-evaluation is only ever considered when the event's relation occurs
    inside a nested aggregate (lift/exists body): there the delta references
    the original nested query twice and is not structurally simpler.  The
    paper's rule: incremental maintenance pays off when the nested query is
    correlated on an *equality* that the delta binds; otherwise re-evaluate.
    """
    nested_nodes = [
        node
        for node in walk(definition)
        if isinstance(node, (Lift, Exists)) and contains_relation(node.term, event.relation)
    ]
    if not nested_nodes:
        return False
    if options.nested_strategy == "incremental":
        return False
    if options.nested_strategy == "reeval":
        return True
    return not all(
        _equality_correlated(definition, node, event.relation) for node in nested_nodes
    )


def _equality_correlated(definition: Expr, nested: Expr, relation: str) -> bool:
    """True when a nested aggregate is equality-correlated on the delta relation.

    After unification the correlation usually shows up as a shared variable:
    the nested body uses a variable that the outer query also uses, and that
    variable is a column of the delta relation's atom inside the body (or is
    linked to one by an equality comparison).  In that case the delta only
    touches a bounded subset of the outer tuples and incremental maintenance
    wins; otherwise the whole view is re-evaluated.
    """
    body = nested.term
    body_vars = free_variables(body)
    correlation_vars = set(input_variables(body, ()))
    # Shared-variable correlation (the post-unification form).
    outer_vars: set[str] = set()
    inside = {id(node) for node in walk(nested)}
    for node in walk(definition):
        if id(node) in inside:
            continue
        if isinstance(node, Relation):
            outer_vars.update(node.columns)
    correlation_vars |= body_vars & outer_vars
    if not correlation_vars:
        return False
    delta_columns: set[str] = set()
    for node in walk(body):
        if isinstance(node, Relation) and node.name == relation:
            delta_columns.update(node.columns)
    if correlation_vars & delta_columns:
        return True
    for node in walk(body):
        if isinstance(node, Cmp) and node.op in ("=", "=="):
            left = getattr(node.left, "name", None)
            right = getattr(node.right, "name", None)
            if left in correlation_vars and right in delta_columns:
                return True
            if right in correlation_vars and left in delta_columns:
                return True
    return False
