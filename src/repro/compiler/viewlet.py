"""The naive viewlet transform (Section 4, Algorithm 1).

The viewlet transform is the conceptual core of the paper: materialize the
query, its deltas, the deltas of the deltas and so on, until the remaining
deltas are constants.  In this reproduction it is implemented as Higher-Order
IVM with the aggressive heuristics switched off (no join-graph decomposition,
no range-restriction extraction, no factorization), which is exactly the
"Naive" configuration evaluated in the paper's experiments.

``viewlet_transform`` exists mainly for exposition and for the tests that
reproduce Example 1 / Example 8; production code should call
:func:`repro.compiler.hoivm.compile_query` with explicit options.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.agca.ast import Expr
from repro.compiler.hoivm import compile_query
from repro.compiler.materialization import CompilerOptions
from repro.compiler.program import TriggerProgram


def viewlet_transform(
    queries: Expr | Mapping[str, Expr],
    schemas: Mapping[str, Sequence[str]],
    stream_relations: Iterable[str] | None = None,
    static_relations: Iterable[str] = (),
    name: str = "Q",
) -> TriggerProgram:
    """Compile with the naive viewlet transform (no decomposition heuristics)."""
    options = CompilerOptions(
        decomposition=False,
        extract_ranges=False,
        factorization=False,
    )
    return compile_query(
        queries,
        schemas,
        stream_relations=stream_relations,
        static_relations=static_relations,
        options=options,
        name=name,
    )
