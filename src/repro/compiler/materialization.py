"""Materialization decisions (Section 5.1 of the paper, Figure 1 rules).

Given a (delta) query to be used inside an update statement, the
materialization pass decides which subexpressions become materialized maps
and rewrites the statement to reference those maps.  The heuristics follow
the paper:

* **polynomial expansion** (rule 2) — work monomial by monomial;
* **query decomposition** (rule 1) — factors connected only through bound
  (trigger) variables fall into separate components, each materialized on its
  own, avoiding cross-product views;
* **input variables** (rule 3) — factors that reference trigger variables in
  scalar positions are left out of the materialized views, and the views
  export exactly the columns those factors (and the statement) need;
* **nested aggregates** (rule 4) — lift/exists bodies containing relations are
  materialized separately (after decorrelating equality correlations), so the
  compiler terminates even though their deltas are not degree-reducing;
* **duplicate view elimination** — structurally identical view definitions
  (up to variable renaming) share one map.

Trigger variables that appear as relation columns become *parameter keys* of
the materialized view: the view is keyed by them and the statement looks the
value up with the trigger variable, which is how ``QO[ordk]``-style constant
time lookups arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    free_variables,
    relations_of,
    rename_variables,
    value_variables,
    walk,
)
from repro.agca.builders import plus, prod
from repro.agca.printer import to_string
from repro.agca.schema import degree, input_variables, output_variables
from repro.compiler.program import MapDeclaration
from repro.errors import CompilationError
from repro.optimizer.decomposition import connected_components
from repro.optimizer.expansion import factorize_sum, monomials, product_factors


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs controlling compilation; the defaults give full Higher-Order IVM.

    * ``depth`` — maximum delta order.  ``None`` is unlimited (HO-IVM),
      ``1`` emulates classical first-order IVM (deltas evaluated over base
      tables), ``0`` emulates full re-evaluation (REP).
    * ``decomposition`` / ``simplify`` / ``factorization`` /
      ``extract_ranges`` / ``dedup`` — individual heuristics, switchable for
      the Naive baseline and the ablation benchmarks.
    * ``nested_strategy`` — how deltas of nested aggregates are handled:
      ``"auto"`` uses the paper's equality-correlation rule to pick between
      incremental maintenance and re-evaluation; ``"incremental"`` and
      ``"reeval"`` force one behaviour.
    """

    depth: int | None = None
    decomposition: bool = True
    simplify: bool = True
    factorization: bool = True
    extract_ranges: bool = True
    dedup: bool = True
    nested_strategy: str = "auto"
    map_prefix: str = "M"

    def __post_init__(self) -> None:
        if self.nested_strategy not in ("auto", "incremental", "reeval"):
            raise CompilationError(
                f"unknown nested_strategy {self.nested_strategy!r}; "
                "expected 'auto', 'incremental' or 'reeval'"
            )
        if self.depth is not None and self.depth < 0:
            raise CompilationError("depth must be None or a non-negative integer")


#: Options for the paper's baselines, usable as ``CompilerOptions(**PRESETS[name])``.
PRESETS: dict[str, dict] = {
    "dbtoaster": {},
    "naive": {"decomposition": False, "extract_ranges": False, "factorization": False},
    "ivm": {"depth": 1},
    "rep": {"depth": 0},
}


def options_for(preset: str) -> CompilerOptions:
    """Compiler options for a named strategy preset (dbtoaster/naive/ivm/rep)."""
    try:
        return CompilerOptions(**PRESETS[preset])
    except KeyError:
        raise CompilationError(
            f"unknown compiler preset {preset!r}; expected one of {sorted(PRESETS)}"
        ) from None


class MaterializationContext:
    """Holds the maps created so far, performs dedup, and rewrites expressions."""

    def __init__(
        self,
        schemas: Mapping[str, Sequence[str]],
        stream_relations: Iterable[str],
        static_relations: Iterable[str] = (),
        options: CompilerOptions | None = None,
    ) -> None:
        self.schemas = {name: tuple(cols) for name, cols in schemas.items()}
        self.stream_relations = frozenset(stream_relations)
        self.static_relations = frozenset(static_relations)
        self.options = options or CompilerOptions()
        self.maps: dict[str, MapDeclaration] = {}
        self.pending: list[str] = []
        self._canonical: dict[str, str] = {}
        self._counter = 0

    # -- map registry -----------------------------------------------------------
    def _fresh_name(self) -> str:
        self._counter += 1
        return f"{self.options.map_prefix}{self._counter}"

    def register_root(
        self, name: str, keys: Sequence[str], definition: Expr, level: int = 0
    ) -> MapDeclaration:
        """Register a top-level query view under a caller-chosen name."""
        if name in self.maps:
            raise CompilationError(f"duplicate root map name {name!r}")
        decl = MapDeclaration(name, tuple(keys), definition, level=level, description="root")
        self.maps[name] = decl
        self.pending.append(name)
        self._canonical[_canonical_form(decl.keys, definition)] = name
        return decl

    def register_map(
        self,
        keys: Sequence[str],
        definition: Expr,
        level: int,
        description: str = "",
        avoid: str | None = None,
    ) -> MapDeclaration | None:
        """Register (or reuse) a materialized view for ``definition``.

        Returns the declaration, or ``None`` when the definition collides with
        the ``avoid`` map (self-referential re-evaluation guard).
        """
        canonical = _canonical_form(tuple(keys), definition)
        if self.options.dedup and canonical in self._canonical:
            existing = self._canonical[canonical]
            if avoid is not None and existing == avoid:
                return None
            return self.maps[existing]
        if avoid is not None:
            avoided = self.maps.get(avoid)
            if avoided is not None and _canonical_form(avoided.keys, avoided.definition) == canonical:
                return None
        name = self._fresh_name()
        decl = MapDeclaration(name, tuple(keys), definition, level=level, description=description)
        self.maps[name] = decl
        self.pending.append(name)
        self._canonical[canonical] = name
        return decl

    # -- the materialization operator M(.) ---------------------------------------
    def materialize(
        self,
        expr: Expr,
        bound: Iterable[str],
        needed: Iterable[str],
        level: int,
        avoid: str | None = None,
    ) -> Expr:
        """Rewrite ``expr`` to reference materialized maps, registering new maps.

        ``bound`` are trigger variables (input variables of the statement),
        ``needed`` the output variables the statement must still produce
        (target keys).  ``level`` is the delta order of newly created maps.
        """
        bound_set = frozenset(bound)
        needed_set = frozenset(needed)
        terms = monomials(expr)
        rewritten = [
            self._materialize_monomial(term, bound_set, needed_set, level, avoid)
            for term in terms
        ]
        result = plus(*rewritten)
        if self.options.factorization and isinstance(result, Sum):
            result = factorize_sum(result)
        return result

    # -- monomials ------------------------------------------------------------------
    def _materialize_monomial(
        self,
        term: Expr,
        bound: frozenset[str],
        needed: frozenset[str],
        level: int,
        avoid: str | None,
    ) -> Expr:
        if isinstance(term, AggSum):
            inner = self._materialize_monomial(
                term.term, bound, needed | set(term.group), level, avoid
            )
            return AggSum(term.group, inner)

        factors = product_factors(term)
        if not factors:
            return term

        nested_idx: list[int] = []
        heavy_idx: list[int] = []
        passthrough_idx: list[int] = []
        for i, factor in enumerate(factors):
            if isinstance(factor, (Lift, Exists)) and degree(factor.term) > 0:
                nested_idx.append(i)
            elif degree(factor) > 0:
                heavy_idx.append(i)
            else:
                passthrough_idx.append(i)

        if not heavy_idx and not nested_idx:
            return term

        heavy = [factors[i] for i in heavy_idx]
        if self.options.decomposition:
            components = connected_components(heavy, bound)
        else:
            components = [heavy] if heavy else []

        # Polynomial expansion of additive value factors that span several
        # components (e.g. SUM(a.price - b.price) over a decomposed join):
        # splitting them lets each resulting monomial decompose cleanly.
        if self.options.decomposition and len(components) > 1:
            split = self._split_spanning_value(factors, components, bound)
            if split is not None:
                return plus(
                    *(
                        self._materialize_monomial(piece, bound, needed, level, avoid)
                        for piece in split
                    )
                )

        # Push relation-free factors with no trigger variables into the unique
        # component that provides all their variables (aggregate/selection push-down).
        component_vars = [free_variables(prod(*component)) for component in components]
        absorbed: set[int] = set()
        for i in list(passthrough_idx):
            factor = factors[i]
            fvars = free_variables(factor)
            if not fvars or fvars & bound:
                continue
            homes = [ci for ci, cvars in enumerate(component_vars) if fvars <= cvars]
            if len(homes) == 1:
                components[homes[0]].append(factor)
                absorbed.add(i)
        passthrough_idx = [i for i in passthrough_idx if i not in absorbed]

        # Variables needed outside each component: statement outputs, trigger
        # variables do not count, everything referenced by the other factors does.
        outside_refs: list[frozenset[str]] = []
        for ci in range(len(components)):
            refs = set(needed)
            for cj, component in enumerate(components):
                if cj != ci:
                    refs |= free_variables(prod(*component))
            for i in passthrough_idx + nested_idx:
                refs |= free_variables(factors[i])
            outside_refs.append(frozenset(refs))

        rewritten_components: list[Expr] = []
        for component, refs in zip(components, outside_refs):
            rewritten_components.append(
                self._materialize_component(component, bound, refs, level, avoid)
            )

        other_available = bound | frozenset().union(
            *(free_variables(prod(*c)) for c in components)
        ) if components else bound

        rebuilt_rest: list[Expr] = []
        for i in sorted(passthrough_idx + nested_idx):
            factor = factors[i]
            if i in nested_idx:
                rebuilt_rest.append(
                    self._materialize_nested(factor, other_available, level, avoid)
                )
            else:
                rebuilt_rest.append(factor)

        return prod(*rewritten_components, *rebuilt_rest)

    def _split_spanning_value(
        self,
        factors: list[Expr],
        components: list[list[Expr]],
        bound: frozenset[str],
    ) -> list[Expr] | None:
        """Split a monomial on an additive value factor spanning several components.

        Returns the replacement monomials, or ``None`` when no factor needs
        splitting.  ``SUM(a.x - b.y)``-style values connect otherwise
        disconnected components; expanding the sum lets the decomposition rule
        apply to each resulting monomial separately.
        """
        component_vars = [free_variables(prod(*component)) - bound for component in components]
        for index, factor in enumerate(factors):
            if not (isinstance(factor, Value) and isinstance(factor.vexpr, VArith)):
                continue
            if factor.vexpr.op not in ("+", "-"):
                continue
            fvars = value_variables(factor.vexpr) - bound
            touched = sum(1 for cvars in component_vars if fvars & cvars)
            if touched < 2:
                continue
            left = Value(factor.vexpr.left)
            right: Expr = Value(factor.vexpr.right)
            if factor.vexpr.op == "-":
                right = prod(Value(VConst(-1)), right)
            pieces = []
            for part in (left, right):
                replaced = list(factors)
                replaced[index] = part
                pieces.append(prod(*replaced))
            return pieces
        return None

    # -- components -----------------------------------------------------------------
    def _materialize_component(
        self,
        component: list[Expr],
        bound: frozenset[str],
        outside_refs: frozenset[str],
        level: int,
        avoid: str | None,
    ) -> Expr:
        comp_expr = prod(*component)
        comp_relations = relations_of(comp_expr)

        # Purely static components are read directly from the loaded tables.
        if comp_relations and comp_relations <= self.static_relations:
            return comp_expr

        used_bound = free_variables(comp_expr) & bound
        column_bound = _column_variables(comp_expr) & bound
        if used_bound - column_bound:
            # A trigger variable appears in a scalar position inside the
            # component; the component cannot be keyed by it, so it stays
            # unmaterialized (the statement will read base relations).
            return comp_expr

        try:
            outputs = output_variables(comp_expr, bound)
        except Exception:
            return comp_expr

        param_keys = sorted(column_bound)
        out_keys = sorted((outputs - bound) & outside_refs)
        fresh = {p: _fresh_key_name(p, comp_expr) for p in param_keys}
        def_keys = tuple(fresh[p] for p in param_keys) + tuple(out_keys)
        definition = AggSum(def_keys, rename_variables(comp_expr, fresh))

        if input_variables(definition, ()):
            return comp_expr

        decl = self.register_map(def_keys, definition, level, avoid=avoid)
        if decl is None:
            return comp_expr
        call_keys = tuple(param_keys) + tuple(out_keys)
        return MapRef(decl.name, call_keys)

    # -- nested aggregates ---------------------------------------------------------
    def _materialize_nested(
        self,
        factor: Expr,
        available: frozenset[str],
        level: int,
        avoid: str | None,
    ) -> Expr:
        assert isinstance(factor, (Lift, Exists))
        body = self.materialize(factor.term, available, frozenset(), level, avoid)
        if isinstance(factor, Lift):
            return Lift(factor.var, body)
        return Exists(body)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _column_variables(expr: Expr) -> frozenset[str]:
    """Variables appearing as relation/map columns anywhere in ``expr``."""
    out: set[str] = set()
    for node in walk(expr):
        if isinstance(node, Relation):
            out.update(node.columns)
        elif isinstance(node, MapRef):
            out.update(node.keys)
    return frozenset(out)


def _fresh_key_name(base: str, expr: Expr) -> str:
    taken = free_variables(expr)
    candidate = f"{base}_k"
    counter = 1
    while candidate in taken:
        candidate = f"{base}_k{counter}"
        counter += 1
    return candidate


def _variables_in_order(expr: Expr) -> list[str]:
    """All variables of ``expr`` in a deterministic traversal order."""
    seen: list[str] = []

    def add(name: str) -> None:
        if name not in seen:
            seen.append(name)

    def visit(node: Expr) -> None:
        if isinstance(node, Relation):
            for column in node.columns:
                add(column)
        elif isinstance(node, MapRef):
            for key in node.keys:
                add(key)
        elif isinstance(node, Value):
            for name in sorted(value_variables(node.vexpr)):
                add(name)
        elif isinstance(node, Cmp):
            for name in sorted(value_variables(node.left)):
                add(name)
            for name in sorted(value_variables(node.right)):
                add(name)
        elif isinstance(node, (Product, Sum)):
            for child in node.terms:
                visit(child)
            return
        elif isinstance(node, AggSum):
            for g in node.group:
                add(g)
            visit(node.term)
            return
        elif isinstance(node, Lift):
            add(node.var)
            visit(node.term)
            return
        elif isinstance(node, Exists):
            visit(node.term)
            return

    visit(expr)
    return seen


def _canonical_form(keys: tuple[str, ...], definition: Expr) -> str:
    """A renaming-invariant string used for duplicate view elimination."""
    mapping: dict[str, str] = {}
    for i, key in enumerate(keys):
        mapping.setdefault(key, f"__k{i}")
    counter = 0
    for name in _variables_in_order(definition):
        if name not in mapping:
            mapping[name] = f"__v{counter}"
            counter += 1
    renamed = rename_variables(definition, mapping)
    return f"<{len(keys)}> {to_string(renamed)}"
