"""Binding patterns (input/output variables) and query degree (Sections 3.3–4).

Every AGCA expression, evaluated under a set of already-bound variables, has

* *input variables* — variables whose values must be supplied from outside
  (trigger arguments, correlation variables of nested subqueries), and
* *output variables* — the columns of the query result schema.

The classification drives both evaluation (a query with unbound input
variables is illegal) and the materialization heuristics (expressions with
input variables lack finite support and cannot be materialized as plain maps).

The *degree* of a query is the number of relation atoms joined together in
its largest monomial; Theorem 1 of the paper guarantees that (in the absence
of nested aggregates) each delta strictly reduces the degree, which is what
makes the viewlet transform terminate.
"""

from __future__ import annotations

from typing import Iterable

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    value_variables,
)
from repro.errors import SchemaError


def schema_of(
    expr: Expr, bound: Iterable[str] = ()
) -> tuple[frozenset[str], frozenset[str]]:
    """Return ``(input_variables, output_variables)`` of ``expr`` under ``bound``.

    ``bound`` is the set of variables already bound by the surrounding context
    (e.g. trigger arguments or variables bound by terms to the left inside a
    product).
    """
    bound_set = frozenset(bound)
    return _schema(expr, bound_set)


def input_variables(expr: Expr, bound: Iterable[str] = ()) -> frozenset[str]:
    """Input variables (parameters) of ``expr`` under ``bound``."""
    return schema_of(expr, bound)[0]


def output_variables(expr: Expr, bound: Iterable[str] = ()) -> frozenset[str]:
    """Output variables (result schema) of ``expr`` under ``bound``."""
    return schema_of(expr, bound)[1]


_SCHEMA_CACHE: dict[tuple[Expr, frozenset[str]], tuple[frozenset[str], frozenset[str]]] = {}


def _schema(expr: Expr, bound: frozenset[str]) -> tuple[frozenset[str], frozenset[str]]:
    key = (expr, bound)
    cached = _SCHEMA_CACHE.get(key)
    if cached is not None:
        return cached
    result = _schema_uncached(expr, bound)
    if len(_SCHEMA_CACHE) > 200_000:  # avoid unbounded growth across long sessions
        _SCHEMA_CACHE.clear()
    _SCHEMA_CACHE[key] = result
    return result


def _schema_uncached(
    expr: Expr, bound: frozenset[str]
) -> tuple[frozenset[str], frozenset[str]]:
    empty: frozenset[str] = frozenset()

    if isinstance(expr, Value):
        needed = value_variables(expr.vexpr)
        return (needed - bound, empty)

    if isinstance(expr, Cmp):
        needed = value_variables(expr.left) | value_variables(expr.right)
        return (needed - bound, empty)

    if isinstance(expr, Relation):
        return (empty, frozenset(expr.columns))

    if isinstance(expr, MapRef):
        return (empty, frozenset(expr.keys))

    if isinstance(expr, Lift):
        inner_in, inner_out = _schema(expr.term, bound)
        if inner_out:
            raise SchemaError(
                f"lift body must be scalar (non-grouping); got output vars {sorted(inner_out)}"
                f" in {expr!r}"
            )
        if expr.var in bound:
            # A lift over an already-bound variable is an equality condition.
            return (inner_in, empty)
        return (inner_in, frozenset((expr.var,)))

    if isinstance(expr, Exists):
        inner_in, _ = _schema(expr.term, bound)
        return (inner_in, empty)

    if isinstance(expr, Product):
        inputs: set[str] = set()
        outputs: set[str] = set()
        current = set(bound)
        for term in expr.terms:
            t_in, t_out = _schema(term, frozenset(current))
            inputs.update(t_in)
            outputs.update(t_out)
            current.update(t_out)
        return (frozenset(inputs) - bound, frozenset(outputs))

    if isinstance(expr, Sum):
        inputs = set()
        outputs = set()
        for term in expr.terms:
            t_in, t_out = _schema(term, bound)
            inputs.update(t_in)
            outputs.update(t_out)
        return (frozenset(inputs) - bound, frozenset(outputs))

    if isinstance(expr, AggSum):
        t_in, t_out = _schema(expr.term, bound)
        missing = set(expr.group) - set(t_out) - set(bound)
        if missing:
            raise SchemaError(
                f"group-by variables {sorted(missing)} are not produced by the aggregated "
                f"expression {expr.term!r}"
            )
        return (t_in, frozenset(expr.group))

    raise TypeError(f"not an AGCA expression: {expr!r}")


def degree(expr: Expr) -> int:
    """Number of relation atoms joined in the widest monomial of ``expr``.

    Materialized map references contribute 0 (they are already maintained);
    lift and exists bodies contribute their own degree, so queries with nested
    aggregates over base relations report a positive degree and are handled by
    the nested-aggregate materialization rule before recursion.
    """
    if isinstance(expr, Relation):
        return 1
    if isinstance(expr, (Value, Cmp, MapRef)):
        return 0
    if isinstance(expr, Product):
        return sum(degree(t) for t in expr.terms)
    if isinstance(expr, Sum):
        return max((degree(t) for t in expr.terms), default=0)
    if isinstance(expr, (AggSum, Lift, Exists)):
        return degree(expr.term)
    raise TypeError(f"not an AGCA expression: {expr!r}")


def has_nested_relation(expr: Expr) -> bool:
    """True when a relation atom occurs inside a Lift or Exists body.

    Such queries are the "nested aggregate" case: their delta is not strictly
    simpler than the original (Theorem 1 does not apply) and the compiler must
    apply the nested-aggregate materialization rule.
    """
    if isinstance(expr, (Lift, Exists)):
        return degree(expr.term) > 0
    if isinstance(expr, (Product, Sum)):
        return any(has_nested_relation(t) for t in expr.terms)
    if isinstance(expr, AggSum):
        return has_nested_relation(expr.term)
    return False
