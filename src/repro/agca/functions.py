"""Registry of external scalar functions usable in value expressions.

AGCA itself only has ``+``, ``*`` and comparisons; everything else the SQL
workload needs (LIKE patterns, SUBSTRING, EXTRACT, the LISTMAX guard, the
MDDB geometry functions) is exposed as an *external function*.  External
functions operate on already-bound scalar values, contain no relation atoms,
and therefore always have delta zero — exactly how DBToaster treats them.

New functions can be registered at runtime with :func:`register_function`,
which is how applications embed custom UDFs.
"""

from __future__ import annotations

import fnmatch
import math
from typing import Any, Callable

from repro.errors import EvaluationError

ScalarFunction = Callable[..., Any]

_REGISTRY: dict[str, ScalarFunction] = {}


def register_function(name: str, fn: ScalarFunction, *, overwrite: bool = False) -> None:
    """Register an external scalar function under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"scalar function {name!r} is already registered")
    _REGISTRY[key] = fn


def lookup_function(name: str) -> ScalarFunction:
    """Look up a registered scalar function; raises ``EvaluationError`` if unknown."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise EvaluationError(f"unknown scalar function {name!r}") from None


def registered_functions() -> tuple[str, ...]:
    """Names of all registered scalar functions (sorted)."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Built-in functions used by the paper's workload
# ---------------------------------------------------------------------------


def _like(value: Any, pattern: Any) -> int:
    """SQL LIKE: ``%`` matches any run of characters, ``_`` a single character."""
    text = "" if value is None else str(value)
    translated = str(pattern).replace("%", "*").replace("_", "?")
    return 1 if fnmatch.fnmatchcase(text, translated) else 0


def _substring(value: Any, start: Any, length: Any) -> str:
    """SQL SUBSTRING with 1-based start (0 is clamped to 1, as DBToaster does)."""
    text = "" if value is None else str(value)
    begin = max(int(start), 1) - 1
    return text[begin : begin + int(length)]


def _extract_year(value: Any) -> int:
    """EXTRACT(YEAR FROM date) for dates encoded as 'YYYY-MM-DD' strings or ints."""
    if isinstance(value, (int, float)):
        return int(value) // 10000
    return int(str(value)[:4])


def _listmax(*values: Any) -> Any:
    """LISTMAX: maximum of its arguments (used to guard divisions by zero)."""
    return max(values)


def _listmin(*values: Any) -> Any:
    """LISTMIN: minimum of its arguments."""
    return min(values)


def _vec_length(dx: float, dy: float, dz: float) -> float:
    """Euclidean length of a 3-vector (MDDB radial distribution workload)."""
    return math.sqrt(dx * dx + dy * dy + dz * dz)


def _dihedral_angle(
    x1: float, y1: float, z1: float,
    x2: float, y2: float, z2: float,
    x3: float, y3: float, z3: float,
    x4: float, y4: float, z4: float,
) -> float:
    """Dihedral angle defined by four atom positions (MDDB phi/psi workload)."""
    b1 = (x2 - x1, y2 - y1, z2 - z1)
    b2 = (x3 - x2, y3 - y2, z3 - z2)
    b3 = (x4 - x3, y4 - y3, z4 - z3)

    def cross(a: tuple, b: tuple) -> tuple:
        return (
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        )

    def dot(a: tuple, b: tuple) -> float:
        return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]

    n1 = cross(b1, b2)
    n2 = cross(b2, b3)
    m1 = cross(n1, (b2[0], b2[1], b2[2]))
    norm_b2 = math.sqrt(dot(b2, b2)) or 1.0
    x = dot(n1, n2)
    y = dot(m1, n2) / norm_b2
    if x == 0 and y == 0:
        return 0.0
    return math.atan2(y, x)


def _date(value: Any) -> str:
    """DATE('YYYY-MM-DD'): dates are compared lexicographically as strings."""
    return str(value)


def _if_then_else(condition: Any, then_value: Any, else_value: Any) -> Any:
    """CASE WHEN helper: condition is a 0/1 scalar."""
    return then_value if condition else else_value


def _in_list(value: Any, *options: Any) -> int:
    """SQL ``x IN (v1, ..., vn)`` over literal lists."""
    return 1 if value in options else 0


def _bool_not(value: Any) -> int:
    """Boolean negation over 0/1 scalars (used by CASE conditions)."""
    return 0 if value else 1


def _bool_and(*values: Any) -> int:
    """Boolean conjunction over 0/1 scalars."""
    return 1 if all(values) else 0


def _bool_or(*values: Any) -> int:
    """Boolean disjunction over 0/1 scalars."""
    return 1 if any(values) else 0


def _cmp(op: str) -> ScalarFunction:
    from repro.core.values import comparison_holds

    def compare(left: Any, right: Any) -> int:
        return comparison_holds(left, op, right)

    compare.__doc__ = f"Value-level comparison '{op}' returning 0/1."
    return compare


register_function("like", _like)
register_function("not", _bool_not)
register_function("and", _bool_and)
register_function("or", _bool_or)
register_function("eq", _cmp("="))
register_function("ne", _cmp("!="))
register_function("lt", _cmp("<"))
register_function("le", _cmp("<="))
register_function("gt", _cmp(">"))
register_function("ge", _cmp(">="))
register_function("substring", _substring)
register_function("extract_year", _extract_year)
register_function("listmax", _listmax)
register_function("listmin", _listmin)
register_function("vec_length", _vec_length)
register_function("dihedral_angle", _dihedral_angle)
register_function("date", _date)
register_function("if_then_else", _if_then_else)
register_function("in_list", _in_list)
