"""Concise constructors for AGCA expressions.

These helpers keep query definitions (tests, workload query library, SQL
translation output) readable: plain Python numbers and strings are promoted
to value expressions automatically and nested products/sums are flattened.
"""

from __future__ import annotations

from typing import Any, Sequence, Union

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
    ValueExpr,
)

ValueLike = Union[ValueExpr, int, float, str]
ExprLike = Union[Expr, int, float]


def vval(value: ValueLike) -> ValueExpr:
    """Promote a Python value to a value expression.

    Strings are treated as *variable names*; use :func:`vconst` for string
    literals.
    """
    if isinstance(value, ValueExpr):
        return value
    if isinstance(value, str):
        return VVar(value)
    return VConst(value)


def vconst(value: Any) -> ValueExpr:
    """A literal constant value expression (including string literals)."""
    return VConst(value)


def vadd(left: ValueLike, right: ValueLike) -> ValueExpr:
    """Value expression ``left + right``."""
    return VArith("+", vval(left), vval(right))


def vsub(left: ValueLike, right: ValueLike) -> ValueExpr:
    """Value expression ``left - right``."""
    return VArith("-", vval(left), vval(right))


def vmul(left: ValueLike, right: ValueLike) -> ValueExpr:
    """Value expression ``left * right``."""
    return VArith("*", vval(left), vval(right))


def vdiv(left: ValueLike, right: ValueLike) -> ValueExpr:
    """Value expression ``left / right`` (division by zero evaluates to 0)."""
    return VArith("/", vval(left), vval(right))


def vfunc(name: str, *args: ValueLike) -> ValueExpr:
    """An external scalar function call, e.g. ``vfunc('like', 'p_name', vconst('%green%'))``."""
    return VFunc(name, tuple(vval(a) for a in args))


def _promote(expr: ExprLike) -> Expr:
    if isinstance(expr, Expr):
        return expr
    if isinstance(expr, (int, float)):
        return Value(VConst(expr))
    raise TypeError(f"cannot promote {expr!r} to an AGCA expression")


def const(value: Any) -> Expr:
    """A constant query (nullary GMR with multiplicity ``value``)."""
    return Value(VConst(value))


def var(name: str) -> Expr:
    """A bound-variable query (nullary GMR whose multiplicity is the variable's value)."""
    return Value(VVar(name))


def val(vexpr: ValueLike) -> Expr:
    """Wrap a value expression as a scalar query factor."""
    return Value(vval(vexpr))


def rel(name: str, *columns: str) -> Expr:
    """A relation atom ``name(columns...)``."""
    return Relation(name, columns)


def mapref(name: str, *keys: str) -> Expr:
    """A materialized-map reference ``name[keys...]``."""
    return MapRef(name, keys)


def prod(*terms: ExprLike) -> Expr:
    """Product (natural join) of terms, flattening nested products."""
    flat: list[Expr] = []
    for term in terms:
        promoted = _promote(term)
        if isinstance(promoted, Product):
            flat.extend(promoted.terms)
        else:
            flat.append(promoted)
    if not flat:
        return Value(VConst(1))
    if len(flat) == 1:
        return flat[0]
    return Product(tuple(flat))


times = prod


def plus(*terms: ExprLike) -> Expr:
    """Sum (bag union) of terms, flattening nested sums."""
    flat: list[Expr] = []
    for term in terms:
        promoted = _promote(term)
        if isinstance(promoted, Sum):
            flat.extend(promoted.terms)
        else:
            flat.append(promoted)
    if not flat:
        return Value(VConst(0))
    if len(flat) == 1:
        return flat[0]
    return Sum(tuple(flat))


def neg(expr: ExprLike) -> Expr:
    """Additive inverse ``-Q``, encoded as ``(-1) * Q``."""
    return prod(const(-1), _promote(expr))


def agg(group: Sequence[str], expr: ExprLike) -> Expr:
    """Group-by summation ``Sum_group(expr)``."""
    return AggSum(tuple(group), _promote(expr))


def total(expr: ExprLike) -> Expr:
    """Non-grouping summation ``Sum_[](expr)`` (a scalar aggregate)."""
    return AggSum((), _promote(expr))


def lift(variable: str, expr: ExprLike) -> Expr:
    """The assignment ``variable := expr``."""
    return Lift(variable, _promote(expr))


def cmp(left: ValueLike, op: str, right: ValueLike) -> Expr:
    """A comparison condition; bare strings on either side denote variables."""
    return Cmp(vval(left), op, vval(right))


def exists(expr: ExprLike) -> Expr:
    """EXISTS-style coercion of a subquery to a {0, 1} multiplicity."""
    return Exists(_promote(expr))
