"""Denotational semantics of AGCA: ``[[Q]](D, b)`` (Section 3.2 of the paper).

The evaluator implements the paper's evaluation function with sideways
information passing: products evaluate left to right, extending the context
(the tuple of bound variables) with the output of earlier factors before
evaluating later ones.  The result of evaluating an expression is a
:class:`~repro.core.gmr.GMR` over the expression's output variables (bound
variables may additionally appear in result rows, which is harmless for the
natural-join style merging done by the caller).

Data access goes through the :class:`DataSource` protocol: the source knows
the *stored* column order of every relation and materialized map and can
answer partially-bound scans.  The runtime's map store answers those scans
through hash indexes, which is what makes compiled trigger statements cheap;
the :class:`DictSource` used in tests and small examples simply scans.

The evaluator is deliberately a straightforward tree walker — it serves both
as the reference semantics for correctness tests and as the execution engine
for compiled trigger statements, whose expressions are small.  A per-call
memo table avoids re-evaluating context-independent subexpressions inside
product loops (simple hoisting), which matters for the re-evaluation
baseline.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Protocol, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
    ValueExpr,
    free_variables,
    value_variables,
)
from repro.agca.functions import lookup_function
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.core.values import (
    RANGE_OPS,
    comparison_holds,
    div,
    flip_comparison,
    is_zero,
)
from repro.errors import EvaluationError, UnboundVariableError


class DataSource(Protocol):
    """What the evaluator needs from the runtime: relations and maps.

    Stored rows are keyed by the source's own column names; ``*_columns``
    exposes their order so atoms can rename positionally.  ``scan_*`` yields
    ``(row, multiplicity)`` pairs matching the given bound column values
    (an empty binding means a full scan).
    """

    def relation_columns(self, name: str) -> tuple[str, ...]:
        ...

    def map_columns(self, name: str) -> tuple[str, ...]:
        ...

    def scan_relation(
        self, name: str, bound: Mapping[str, Any]
    ) -> Iterable[tuple[Row, Any]]:
        ...

    def scan_map(self, name: str, bound: Mapping[str, Any]) -> Iterable[tuple[Row, Any]]:
        ...


class DictSource:
    """A simple in-memory data source backed by dictionaries of GMRs.

    ``relations`` / ``maps`` map names to GMRs whose rows are keyed by the
    stored column names; ``schemas`` optionally fixes the column order (when
    omitted the sorted column names of the first row are used, which is fine
    for single-column or alphabetically ordered schemas).
    """

    def __init__(
        self,
        relations: Mapping[str, GMR] | None = None,
        maps: Mapping[str, GMR] | None = None,
        schemas: Mapping[str, Sequence[str]] | None = None,
    ) -> None:
        self._relations = dict(relations or {})
        self._maps = dict(maps or {})
        self._schemas = {name: tuple(cols) for name, cols in (schemas or {}).items()}

    def _columns(self, name: str, contents: GMR) -> tuple[str, ...]:
        if name in self._schemas:
            return self._schemas[name]
        for row in contents.rows():
            return tuple(sorted(row.columns))
        return ()

    def relation_columns(self, name: str) -> tuple[str, ...]:
        return self._columns(name, self._relations.get(name, GMR.empty()))

    def map_columns(self, name: str) -> tuple[str, ...]:
        return self._columns(name, self._maps.get(name, GMR.empty()))

    def scan_relation(
        self, name: str, bound: Mapping[str, Any]
    ) -> Iterator[tuple[Row, Any]]:
        yield from _scan_gmr(self._relations.get(name, GMR.empty()), bound)

    def scan_map(self, name: str, bound: Mapping[str, Any]) -> Iterator[tuple[Row, Any]]:
        yield from _scan_gmr(self._maps.get(name, GMR.empty()), bound)


def _scan_gmr(contents: GMR, bound: Mapping[str, Any]) -> Iterator[tuple[Row, Any]]:
    if not bound:
        yield from contents.items()
        return
    for row, mult in contents.items():
        if all(row.get(col) == value for col, value in bound.items()):
            yield row, mult


def eval_value(vexpr: ValueExpr, context: Mapping[str, Any]) -> Any:
    """Evaluate a scalar value expression under a variable context."""
    if isinstance(vexpr, VConst):
        return vexpr.value
    if isinstance(vexpr, VVar):
        try:
            return context[vexpr.name]
        except KeyError:
            raise UnboundVariableError(vexpr.name, repr(vexpr)) from None
    if isinstance(vexpr, VArith):
        left = eval_value(vexpr.left, context)
        right = eval_value(vexpr.right, context)
        if vexpr.op == "+":
            return left + right
        if vexpr.op == "-":
            return left - right
        if vexpr.op == "*":
            return left * right
        return div(left, right)
    if isinstance(vexpr, VFunc):
        fn = lookup_function(vexpr.name)
        args = [eval_value(a, context) for a in vexpr.args]
        return fn(*args)
    raise TypeError(f"not a value expression: {vexpr!r}")


def _contains_function(vexpr: ValueExpr) -> bool:
    if isinstance(vexpr, VFunc):
        return True
    if isinstance(vexpr, VArith):
        return _contains_function(vexpr.left) or _contains_function(vexpr.right)
    return False


def match_range_pattern(term: Expr):
    """Match ``MapRef * {key op value}`` — the evaluator's range-probe fragment.

    Returns ``(map name, atom keys, guarded variable, normalized op, cutoff
    value expression, cutoff variables)`` when ``term`` is a two-factor
    product of one map atom (distinct variable keys) and one ordering
    comparison between exactly one of those keys and a function-free value
    expression over other variables; ``None`` otherwise.  (The statement
    compiler lowers a superset of this shape — prelude lifts feeding the
    cutoff — with its own planner; both share the op tables in
    :mod:`repro.core.values`.)
    """
    if not isinstance(term, Product) or len(term.terms) != 2:
        return None
    atom, cmp = term.terms
    if not isinstance(atom, MapRef) or not isinstance(cmp, Cmp):
        return None
    keys = atom.keys
    if not keys or len(set(keys)) != len(keys):
        return None
    op = cmp.op
    if isinstance(cmp.left, VVar) and cmp.left.name in keys:
        guard, cutoff = cmp.left.name, cmp.right
    elif isinstance(cmp.right, VVar) and cmp.right.name in keys:
        guard, cutoff = cmp.right.name, cmp.left
        op = flip_comparison(op)
    else:
        return None
    if op not in RANGE_OPS:
        return None
    cutoff_vars = value_variables(cutoff)
    if cutoff_vars & set(keys):
        return None
    if _contains_function(cutoff):
        # An external function in the cutoff could raise where the per-row
        # interpreter would not have reached it; leave it to the scan.
        return None
    return (atom.name, keys, guard, op, cutoff, cutoff_vars)


class Evaluator:
    """Evaluates AGCA expressions against a :class:`DataSource`.

    When the source exposes ``range_sum`` (the runtime's map store does),
    comparison-guarded aggregate shapes — ``AggSum([], M[k] * {k > c})`` and
    the ``Exists`` variant — are routed to an ordered range probe instead of
    a full scan.  The probe contract guarantees bit-identical values and
    types (see :mod:`repro.runtime.ordered`), so this is purely a fast path.
    One deviation in the error surface, shared with the compiled engine's
    hoisting: the probe evaluates the cutoff expression even when the map is
    empty, so an *ill-typed* cutoff can raise where per-row evaluation would
    never have reached it — irrelevant for well-typed programs, which the
    SQL frontend guarantees.
    """

    def __init__(self, source: DataSource) -> None:
        self._source = source
        self._range_source = source if hasattr(source, "range_sum") else None
        # Cached range-pattern analysis per expression, pinned like
        # _free_vars below (same id-reuse hazard, same bounded reset).
        self._range_patterns: dict[int, tuple[Expr, tuple | None]] = {}
        # Per-expression free-variable cache used for context-projection
        # memoization.  The cache is keyed by id(expr), so each entry must also
        # hold a strong reference to the expression: without it a temporary
        # tree can be garbage-collected and a *different* expression allocated
        # at the same address would inherit a stale (wrong) variable set,
        # silently corrupting the memo keys below.  Pinning entries makes the
        # cache grow with every distinct tree evaluated, so it is cleared once
        # it exceeds a bound (stale ids cannot survive the clear).
        self._free_vars: dict[int, tuple[Expr, frozenset[str]]] = {}

    #: Entry bound on the free-variable cache before it is reset wholesale.
    _FREE_VARS_LIMIT = 8192

    # -- public API -----------------------------------------------------------
    def evaluate(
        self,
        expr: Expr,
        context: Mapping[str, Any] | None = None,
        memo: dict | None = None,
    ) -> GMR:
        """Evaluate ``expr`` under ``context`` and return the result GMR.

        ``memo`` optionally supplies an externally owned memo table so several
        evaluations of the same expression under different contexts (as in
        batched trigger execution) can share the results of context-independent
        subexpressions.  Memo keys include the relevant context projection, so
        sharing is always safe while the expression objects stay alive.
        """
        ctx = dict(context or {})
        if memo is None:
            memo = {}
        return self._eval(expr, ctx, memo)

    def evaluate_scalar(self, expr: Expr, context: Mapping[str, Any] | None = None) -> Any:
        """Evaluate ``expr`` and return its total multiplicity (scalar value)."""
        return self.evaluate(expr, context).total_multiplicity()

    # -- internals --------------------------------------------------------------
    def _relevant(self, expr: Expr) -> frozenset[str]:
        key = id(expr)
        cached = self._free_vars.get(key)
        if cached is None or cached[0] is not expr:
            if len(self._free_vars) >= self._FREE_VARS_LIMIT:
                self._free_vars.clear()
            cached = (expr, free_variables(expr))
            self._free_vars[key] = cached
        return cached[1]

    def _range_pattern(self, node: Expr, term: Expr):
        """Cached :func:`match_range_pattern` for ``term``, keyed by ``node``."""
        key = id(node)
        cached = self._range_patterns.get(key)
        if cached is None or cached[0] is not node:
            if len(self._range_patterns) >= self._FREE_VARS_LIMIT:
                self._range_patterns.clear()
            cached = (node, match_range_pattern(term))
            self._range_patterns[key] = cached
        return cached[1]

    def _probe_range(self, pattern, ctx: Mapping[str, Any], chain: bool):
        """Answer a guarded aggregate through the ordered index, or None.

        Declines (returning None, meaning "evaluate generically") whenever
        the context binds any of the atom's key variables — the scan would
        then be filtered, not a full range — or fails to bind the cutoff.
        """
        name, keys, guard, op, cutoff_expr, cutoff_vars = pattern
        for key in keys:
            if key in ctx:
                return None
        for var in cutoff_vars:
            if var not in ctx:
                return None
        stored = self._source.map_columns(name)
        if len(stored) != len(keys):
            return None  # arity mismatch: let the generic path raise properly
        column = stored[keys.index(guard)]
        cutoff = eval_value(cutoff_expr, ctx)
        return self._range_source.range_sum(name, column, op, cutoff, chain)

    def _eval(self, expr: Expr, ctx: dict[str, Any], memo: dict) -> GMR:
        relevant = self._relevant(expr)
        memo_key = (id(expr), Row({v: ctx[v] for v in relevant if v in ctx}))
        cached = memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._eval_uncached(expr, ctx, memo)
        memo[memo_key] = result
        return result

    def _eval_uncached(self, expr: Expr, ctx: dict[str, Any], memo: dict) -> GMR:
        if isinstance(expr, Value):
            value = eval_value(expr.vexpr, ctx)
            if is_zero(value):
                return GMR.empty()
            return GMR.scalar(value)

        if isinstance(expr, Cmp):
            left = eval_value(expr.left, ctx)
            right = eval_value(expr.right, ctx)
            return GMR.scalar(comparison_holds(left, expr.op, right))

        if isinstance(expr, Relation):
            stored = self._source.relation_columns(expr.name)
            return self._eval_atom("relation", expr.name, stored, expr.columns, ctx)

        if isinstance(expr, MapRef):
            stored = self._source.map_columns(expr.name)
            return self._eval_atom("map", expr.name, stored, expr.keys, ctx)

        if isinstance(expr, Product):
            return self._eval_product(expr, ctx, memo)

        if isinstance(expr, Sum):
            total = GMR.empty()
            for term in expr.terms:
                total = total + self._eval(term, ctx, memo)
            return total

        if isinstance(expr, AggSum):
            if not expr.group and self._range_source is not None:
                pattern = self._range_pattern(expr, expr.term)
                if pattern is not None:
                    value = self._probe_range(pattern, ctx, chain=True)
                    if value is not None:
                        if is_zero(value):
                            return GMR.empty()
                        return GMR.scalar(value)
            inner = self._eval(expr.term, ctx, memo)
            out = GMR()
            for row, mult in inner.items():
                key = {}
                for g in expr.group:
                    if g in row:
                        key[g] = row[g]
                    elif g in ctx:
                        key[g] = ctx[g]
                    else:
                        raise EvaluationError(
                            f"group-by variable {g!r} is neither produced nor bound in {expr!r}"
                        )
                out.add_tuple(Row(key), mult)
            return out

        if isinstance(expr, Lift):
            inner = self._eval(expr.term, ctx, memo)
            for row in inner.rows():
                if len(row) != 0:
                    raise EvaluationError(f"lift body produced non-scalar rows: {expr!r}")
            value = inner.scalar_value() if inner else 0
            if expr.var in ctx:
                if ctx[expr.var] == value:
                    return GMR.scalar(1)
                return GMR.empty()
            return GMR.singleton(Row({expr.var: value}), 1)

        if isinstance(expr, Exists):
            if self._range_source is not None:
                pattern = self._range_pattern(expr, expr.term)
                if pattern is not None:
                    value = self._probe_range(pattern, ctx, chain=False)
                    if value is not None:
                        return GMR.scalar(0 if is_zero(value) else 1)
            inner = self._eval(expr.term, ctx, memo)
            value = inner.total_multiplicity()
            return GMR.scalar(0 if is_zero(value) else 1)

        raise TypeError(f"not an AGCA expression: {expr!r}")

    def _eval_atom(
        self,
        kind: str,
        name: str,
        stored_columns: tuple[str, ...],
        atom_columns: tuple[str, ...],
        ctx: Mapping[str, Any],
    ) -> GMR:
        """Evaluate a relation/map atom: scan, rename positionally, filter on ctx."""
        if stored_columns and len(stored_columns) != len(atom_columns):
            raise EvaluationError(
                f"{kind} {name!r} has {len(stored_columns)} stored columns but the atom "
                f"names {len(atom_columns)}"
            )
        rename = dict(zip(stored_columns, atom_columns))
        bound_stored = {
            stored: ctx[atom]
            for stored, atom in zip(stored_columns, atom_columns)
            if atom in ctx
        }
        if kind == "relation":
            entries = self._source.scan_relation(name, bound_stored)
        else:
            entries = self._source.scan_map(name, bound_stored)
        out = GMR()
        for row, mult in entries:
            renamed: dict[str, Any] = {}
            consistent = True
            for stored, value in row.items():
                atom_var = rename.get(stored, stored)
                if atom_var in renamed and renamed[atom_var] != value:
                    consistent = False  # repeated variable in the atom acts as equality
                    break
                renamed[atom_var] = value
            if consistent:
                out.add_tuple(Row(renamed), mult)
        return out

    def _eval_product(self, expr: Product, ctx: dict[str, Any], memo: dict) -> GMR:
        partial: list[tuple[Row, Any]] = [(Row(), 1)]
        for term in expr.terms:
            next_partial: list[tuple[Row, Any]] = []
            for row, mult in partial:
                extended_ctx = dict(ctx)
                extended_ctx.update(row)
                rhs = self._eval(term, extended_ctx, memo)
                for rrow, rmult in rhs.items():
                    if not row.consistent_with(rrow):
                        continue
                    next_partial.append((row.extend(rrow), mult * rmult))
            if not next_partial:
                return GMR.empty()
            partial = next_partial
        return GMR(partial)


def evaluate(
    expr: Expr,
    source: DataSource | Mapping[str, GMR],
    context: Mapping[str, Any] | None = None,
    schemas: Mapping[str, Sequence[str]] | None = None,
) -> GMR:
    """Convenience wrapper: evaluate ``expr`` against ``source`` under ``context``.

    ``source`` may be a :class:`DataSource` or a plain mapping of relation
    names to GMRs (optionally with explicit ``schemas`` giving column order).
    """
    if not hasattr(source, "scan_relation"):
        source = DictSource(relations=dict(source), schemas=schemas)  # type: ignore[arg-type]
    return Evaluator(source).evaluate(expr, context)  # type: ignore[arg-type]
