"""Human-readable pretty printing of AGCA expressions.

The printed syntax follows the paper: ``R(A, B) * {A < B} * Sum[y](...)``,
lifts as ``(x := Q)`` and map references as ``M[keys]``.  The printer is also
used to produce canonical strings for duplicate-view elimination, so its
output is deterministic.
"""

from __future__ import annotations

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VArith,
    VConst,
    VFunc,
    VVar,
    ValueExpr,
)


def value_to_string(vexpr: ValueExpr) -> str:
    """Render a scalar value expression."""
    if isinstance(vexpr, VConst):
        return repr(vexpr.value)
    if isinstance(vexpr, VVar):
        return vexpr.name
    if isinstance(vexpr, VArith):
        return f"({value_to_string(vexpr.left)} {vexpr.op} {value_to_string(vexpr.right)})"
    if isinstance(vexpr, VFunc):
        args = ", ".join(value_to_string(a) for a in vexpr.args)
        return f"{vexpr.name}({args})"
    raise TypeError(f"not a value expression: {vexpr!r}")


def to_string(expr: Expr) -> str:
    """Render an AGCA expression in paper-style concrete syntax."""
    if isinstance(expr, Value):
        return value_to_string(expr.vexpr)
    if isinstance(expr, Cmp):
        return f"{{{value_to_string(expr.left)} {expr.op} {value_to_string(expr.right)}}}"
    if isinstance(expr, Relation):
        return f"{expr.name}({', '.join(expr.columns)})"
    if isinstance(expr, MapRef):
        return f"{expr.name}[{', '.join(expr.keys)}]"
    if isinstance(expr, Product):
        return "(" + " * ".join(to_string(t) for t in expr.terms) + ")"
    if isinstance(expr, Sum):
        return "(" + " + ".join(to_string(t) for t in expr.terms) + ")"
    if isinstance(expr, AggSum):
        return f"Sum[{', '.join(expr.group)}]({to_string(expr.term)})"
    if isinstance(expr, Lift):
        return f"({expr.var} := {to_string(expr.term)})"
    if isinstance(expr, Exists):
        return f"Exists({to_string(expr.term)})"
    raise TypeError(f"not an AGCA expression: {expr!r}")
