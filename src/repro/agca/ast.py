"""AGCA abstract syntax.

The node set follows Section 3.2 of the paper with two pragmatic refinements
that mirror what the released DBToaster compiler does internally:

* scalar arithmetic (constants, variables, ``+ - * /`` and external functions
  such as ``LIKE`` or ``SUBSTRING``) lives in a small *value expression* tree
  (:class:`VConst`, :class:`VVar`, :class:`VArith`, :class:`VFunc`) wrapped in
  the :class:`Value` query node; value expressions contain no relation atoms,
  so their delta is always zero,
* conditions are :class:`Cmp` nodes comparing two value expressions (the
  paper's ``x θ 0`` with syntactic sugar), and :class:`Exists` exposes the
  domain-to-{0,1} coercion used to encode EXISTS / IN clauses.

Everything else is exactly the paper's calculus: :class:`Relation` atoms,
:class:`Product` (natural join ``*`` with sideways binding), :class:`Sum`
(bag union ``+``), :class:`AggSum` (group-by summation) and :class:`Lift`
(the assignment ``x := Q`` used for nested aggregates).  :class:`MapRef`
refers to a materialized view and only appears in compiled trigger programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence, Union


# ---------------------------------------------------------------------------
# Value expressions (scalar arithmetic over bound variables)
# ---------------------------------------------------------------------------


class ValueExpr:
    """Base class for scalar value expressions (no relation atoms inside)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True, weakref_slot=True)
class VConst(ValueExpr):
    """A literal constant (number or string)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True, weakref_slot=True)
class VVar(ValueExpr):
    """A reference to a (bound) variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True, weakref_slot=True)
class VArith(ValueExpr):
    """Binary arithmetic over value expressions: ``+ - * /``."""

    op: str
    left: ValueExpr
    right: ValueExpr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class VFunc(ValueExpr):
    """An external scalar function application (LIKE, SUBSTRING, ...)."""

    name: str
    args: tuple[ValueExpr, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


def value_variables(vexpr: ValueExpr) -> frozenset[str]:
    """All variable names referenced by a value expression."""
    if isinstance(vexpr, VVar):
        return frozenset((vexpr.name,))
    if isinstance(vexpr, VConst):
        return frozenset()
    if isinstance(vexpr, VArith):
        return value_variables(vexpr.left) | value_variables(vexpr.right)
    if isinstance(vexpr, VFunc):
        out: frozenset[str] = frozenset()
        for arg in vexpr.args:
            out = out | value_variables(arg)
        return out
    raise TypeError(f"not a value expression: {vexpr!r}")


def substitute_value(vexpr: ValueExpr, mapping: Mapping[str, ValueExpr]) -> ValueExpr:
    """Substitute variables in a value expression by other value expressions."""
    if isinstance(vexpr, VVar):
        return mapping.get(vexpr.name, vexpr)
    if isinstance(vexpr, VConst):
        return vexpr
    if isinstance(vexpr, VArith):
        return VArith(
            vexpr.op,
            substitute_value(vexpr.left, mapping),
            substitute_value(vexpr.right, mapping),
        )
    if isinstance(vexpr, VFunc):
        return VFunc(vexpr.name, tuple(substitute_value(a, mapping) for a in vexpr.args))
    raise TypeError(f"not a value expression: {vexpr!r}")


# ---------------------------------------------------------------------------
# Query expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for AGCA query expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Value(Expr):
    """A scalar factor: maps the empty tuple to the value of ``vexpr``."""

    vexpr: ValueExpr

    def __repr__(self) -> str:
        return f"Value({self.vexpr!r})"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Relation(Expr):
    """A base relation atom ``R(x1, ..., xk)`` with column variables."""

    name: str
    columns: tuple[str, ...]

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.columns)})"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class MapRef(Expr):
    """A reference to a materialized view (map), keyed by ``keys``.

    A map associates key tuples with aggregate values; like every GMR the
    value is carried in the multiplicity, so a :class:`MapRef` evaluates just
    like a relation atom over the map's contents.
    """

    name: str
    keys: tuple[str, ...]

    def __init__(self, name: str, keys: Sequence[str]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "keys", tuple(keys))

    def __repr__(self) -> str:
        return f"{self.name}[{', '.join(self.keys)}]"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Product(Expr):
    """Natural join / multiplication with left-to-right sideways binding."""

    terms: tuple[Expr, ...]

    def __init__(self, terms: Sequence[Expr]) -> None:
        object.__setattr__(self, "terms", tuple(terms))

    def __repr__(self) -> str:
        return "(" + " * ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Sum(Expr):
    """Bag union / addition of query expressions."""

    terms: tuple[Expr, ...]

    def __init__(self, terms: Sequence[Expr]) -> None:
        object.__setattr__(self, "terms", tuple(terms))

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class AggSum(Expr):
    """Group-by summation ``Sum_A(Q)``: project onto ``group`` and add multiplicities."""

    group: tuple[str, ...]
    term: Expr

    def __init__(self, group: Sequence[str], term: Expr) -> None:
        object.__setattr__(self, "group", tuple(group))
        object.__setattr__(self, "term", term)

    def __repr__(self) -> str:
        return f"Sum[{', '.join(self.group)}]({self.term!r})"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Lift(Expr):
    """The assignment ``var := term`` (used to name nested aggregate values).

    When ``var`` is already bound in the evaluation context, a lift acts as an
    equality condition instead of producing a binding.
    """

    var: str
    term: Expr

    def __repr__(self) -> str:
        return f"({self.var} := {self.term!r})"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Cmp(Expr):
    """A comparison condition between two scalar value expressions."""

    left: ValueExpr
    op: str
    right: ValueExpr

    def __repr__(self) -> str:
        return f"{{{self.left!r} {self.op} {self.right!r}}}"


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Exists(Expr):
    """Domain coercion: multiplicity 1 when the inner query is non-empty, else 0."""

    term: Expr

    def __repr__(self) -> str:
        return f"Exists({self.term!r})"


QueryLike = Union[Expr, int, float, str]


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def children(expr: Expr) -> tuple[Expr, ...]:
    """The immediate query-expression children of a node."""
    if isinstance(expr, (Product, Sum)):
        return expr.terms
    if isinstance(expr, AggSum):
        return (expr.term,)
    if isinstance(expr, Lift):
        return (expr.term,)
    if isinstance(expr, Exists):
        return (expr.term,)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order traversal of all query nodes."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def relations_of(expr: Expr) -> frozenset[str]:
    """Names of base relations referenced anywhere in ``expr``."""
    return frozenset(node.name for node in walk(expr) if isinstance(node, Relation))


def maps_of(expr: Expr) -> frozenset[str]:
    """Names of materialized maps referenced anywhere in ``expr``."""
    return frozenset(node.name for node in walk(expr) if isinstance(node, MapRef))


def relation_atoms(expr: Expr) -> list[Relation]:
    """All relation atom nodes in ``expr`` (with repetition for self-joins)."""
    return [node for node in walk(expr) if isinstance(node, Relation)]


def contains_relation(expr: Expr, name: str) -> bool:
    """True when ``expr`` references the base relation ``name``."""
    return any(isinstance(node, Relation) and node.name == name for node in walk(expr))


def free_variables(expr: Expr) -> frozenset[str]:
    """All variable names appearing in ``expr`` (columns, lift vars, value vars).

    This is a syntactic notion used for caching and freshness checks, not the
    input/output classification — see :mod:`repro.agca.schema` for that.
    """
    out: set[str] = set()
    for node in walk(expr):
        if isinstance(node, (Relation, MapRef)):
            out.update(node.columns if isinstance(node, Relation) else node.keys)
        elif isinstance(node, Value):
            out.update(value_variables(node.vexpr))
        elif isinstance(node, Cmp):
            out.update(value_variables(node.left))
            out.update(value_variables(node.right))
        elif isinstance(node, Lift):
            out.add(node.var)
        elif isinstance(node, AggSum):
            out.update(node.group)
    return frozenset(out)


def rename_variables(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Consistently rename variables throughout ``expr``.

    Renaming applies to relation/map columns, lift variables, group-by lists
    and value expressions alike; it is the substitution used by duplicate-view
    detection and by unification when the replacement is itself a variable.
    """
    if not mapping:
        return expr
    vmap = {old: VVar(new) for old, new in mapping.items()}

    def rename_value(vexpr: ValueExpr) -> ValueExpr:
        return substitute_value(vexpr, vmap)

    def rec(node: Expr) -> Expr:
        if isinstance(node, Value):
            return Value(rename_value(node.vexpr))
        if isinstance(node, Relation):
            return Relation(node.name, tuple(mapping.get(c, c) for c in node.columns))
        if isinstance(node, MapRef):
            return MapRef(node.name, tuple(mapping.get(c, c) for c in node.keys))
        if isinstance(node, Product):
            return Product(tuple(rec(t) for t in node.terms))
        if isinstance(node, Sum):
            return Sum(tuple(rec(t) for t in node.terms))
        if isinstance(node, AggSum):
            return AggSum(tuple(mapping.get(g, g) for g in node.group), rec(node.term))
        if isinstance(node, Lift):
            return Lift(mapping.get(node.var, node.var), rec(node.term))
        if isinstance(node, Cmp):
            return Cmp(rename_value(node.left), node.op, rename_value(node.right))
        if isinstance(node, Exists):
            return Exists(rec(node.term))
        raise TypeError(f"not an AGCA expression: {node!r}")

    return rec(expr)


def substitute_variable(expr: Expr, var: str, replacement: ValueExpr) -> Expr:
    """Substitute ``var`` by a value expression in value positions.

    Variable-to-variable substitutions additionally rename relation/map column
    occurrences (which is plain renaming); substituting a non-variable value
    into a relation column position is not expressible in AGCA, so such atoms
    are left untouched and the caller must keep the defining lift/condition.
    """
    if isinstance(replacement, VVar):
        return rename_variables(expr, {var: replacement.name})
    vmap = {var: replacement}

    def rec(node: Expr) -> Expr:
        if isinstance(node, Value):
            return Value(substitute_value(node.vexpr, vmap))
        if isinstance(node, (Relation, MapRef)):
            return node
        if isinstance(node, Product):
            return Product(tuple(rec(t) for t in node.terms))
        if isinstance(node, Sum):
            return Sum(tuple(rec(t) for t in node.terms))
        if isinstance(node, AggSum):
            return AggSum(node.group, rec(node.term))
        if isinstance(node, Lift):
            return Lift(node.var, rec(node.term))
        if isinstance(node, Cmp):
            return Cmp(
                substitute_value(node.left, vmap), node.op, substitute_value(node.right, vmap)
            )
        if isinstance(node, Exists):
            return Exists(rec(node.term))
        raise TypeError(f"not an AGCA expression: {node!r}")

    return rec(expr)


def transform_bottom_up(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` applying ``fn`` to every node after its children."""
    if isinstance(expr, Product):
        rebuilt: Expr = Product(tuple(transform_bottom_up(t, fn) for t in expr.terms))
    elif isinstance(expr, Sum):
        rebuilt = Sum(tuple(transform_bottom_up(t, fn) for t in expr.terms))
    elif isinstance(expr, AggSum):
        rebuilt = AggSum(expr.group, transform_bottom_up(expr.term, fn))
    elif isinstance(expr, Lift):
        rebuilt = Lift(expr.var, transform_bottom_up(expr.term, fn))
    elif isinstance(expr, Exists):
        rebuilt = Exists(transform_bottom_up(expr.term, fn))
    else:
        rebuilt = expr
    return fn(rebuilt)


def is_constant_value(expr: Expr) -> bool:
    """True for ``Value(VConst(_))`` nodes."""
    return isinstance(expr, Value) and isinstance(expr.vexpr, VConst)


def constant_of(expr: Expr) -> Any:
    """The constant carried by a ``Value(VConst(c))`` node."""
    if not is_constant_value(expr):
        raise ValueError(f"not a constant value node: {expr!r}")
    return expr.vexpr.value  # type: ignore[union-attr]


ZERO = Value(VConst(0))
ONE = Value(VConst(1))


def is_zero_expr(expr: Expr) -> bool:
    """True for the literal zero query (additive identity)."""
    return is_constant_value(expr) and constant_of(expr) == 0


def is_one_expr(expr: Expr) -> bool:
    """True for the literal one query (multiplicative identity)."""
    return is_constant_value(expr) and constant_of(expr) == 1
