"""Exception hierarchy for the repro (DBToaster reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class SchemaError(ReproError):
    """A query references variables/columns inconsistently with its schema."""


class EvaluationError(ReproError):
    """An AGCA expression could not be evaluated (e.g. unbound variable)."""


class UnboundVariableError(EvaluationError):
    """A variable was read before any binding was available for it."""

    def __init__(self, variable: str, context: str = "") -> None:
        self.variable = variable
        message = f"variable {variable!r} is unbound"
        if context:
            message = f"{message} while evaluating {context}"
        super().__init__(message)


class DeltaError(ReproError):
    """The delta transform was applied to an unsupported expression."""


class CompilationError(ReproError):
    """The viewlet transform / HO-IVM compiler could not compile a query."""


class SQLSyntaxError(ReproError):
    """The SQL frontend could not parse a query string."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SQLTranslationError(ReproError):
    """A parsed SQL query uses a feature the AGCA translation does not support."""


class RuntimeEngineError(ReproError):
    """The runtime (interpreter / engines / map store) hit an invalid state."""


class WorkloadError(ReproError):
    """A workload generator or stream synthesizer was misconfigured."""


class BenchmarkError(ReproError):
    """The benchmark harness was asked to run an unknown or invalid scenario."""


class ExecutionError(ReproError):
    """The batched/partitioned execution subsystem hit an invalid state."""


class ServiceError(ReproError):
    """The view-serving subsystem (service/server/client) hit an invalid state."""


class AuditError(ReproError):
    """The online view auditor found live state diverging from the reference."""


class DurabilityError(ReproError):
    """The durability layer (WAL / incremental checkpoints / recovery) failed."""
