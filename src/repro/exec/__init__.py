"""Batched & partitioned delta execution (the scale-out subsystem).

A second execution mode alongside the per-event
:class:`~repro.runtime.engine.IncrementalEngine`:

* :class:`~repro.exec.batching.BatchedEngine` coalesces agenda slices into
  per-relation delta GMRs and applies each trigger once per batch;
* :class:`~repro.exec.partitioning.PartitionedEngine` hash-partitions map
  state and base relations across per-partition engines and merges views on
  read (with a broadcast path for non-partitionable relations);
* :mod:`repro.exec.executor` provides the sequential and multiprocessing
  backends the partitioned engine runs on.

Both engines expose the same ``apply`` / ``view`` / ``result_dict`` surface
as the per-event engine and produce identical view contents; see DESIGN.md
for the exactness argument.
"""

from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    BatchedEngine,
    BatchPlan,
    DeltaGroup,
    StagedBatch,
    TriggerAnalysis,
)
from repro.exec.executor import (
    BACKENDS,
    MultiprocessBackend,
    SequentialBackend,
    make_backend,
)
from repro.exec.partitioning import (
    DEFAULT_PARTITIONS,
    PartitionedEngine,
    PartitionSpec,
    infer_partition_spec,
    stable_hash,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PARTITIONS",
    "BatchPlan",
    "BatchedEngine",
    "DeltaGroup",
    "MultiprocessBackend",
    "PartitionSpec",
    "PartitionedEngine",
    "SequentialBackend",
    "StagedBatch",
    "TriggerAnalysis",
    "infer_partition_spec",
    "make_backend",
    "stable_hash",
]
