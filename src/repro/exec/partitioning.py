"""Hash-partitioned execution: shard map state across per-partition engines.

Each of ``N`` partitions hosts a full engine for the same trigger program
over a *slice* of the stream: every **partitioned** relation routes each
tuple to exactly one partition by hashing its partition-key columns, while
**replicated** relations (and all static tables) are broadcast to every
partition.  Because every partition is an ordinary, internally consistent
engine over its slice of the database, correctness reduces to a *merge*
question answered statically per map:

* a map whose definition references at least one partitioned relation
  *linearly* (not under a ``Lift``/``Exists``) with all partitioned atoms
  joined on the partition key is **sum-merged**: every contribution is
  computed in exactly one partition, so the global view is the multiplicity
  sum of the per-partition views;
* a map whose definition references only replicated relations is computed
  identically everywhere and read from partition 0 (the broadcast path);
* anything else is unmergeable — :func:`infer_partition_spec` demotes
  relations to replicated until every root map falls into one of the two
  classes above, so reads through :class:`PartitionedEngine` are always
  exact.  Queries that are nonlinear in every stream relation (nested
  aggregates such as VWAP) degenerate to full replication: correct, with
  parallelism available only across independent queries.

Key inference prefers join variables shared by the most atoms, breaking ties
toward primary-key-like (leading) columns, which recovers the natural
co-partitioning schemes: Orders/Lineitem on ``orderkey``, the order-book
self-joins on ``broker_id``, MDDB's atom-position self-joins on the
trajectory/time keys.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from repro.agca.ast import Exists, Expr, Lift, Relation, children
from repro.compiler.program import MapDeclaration, TriggerProgram
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.core.values import is_zero, normalize_number
from repro.delta.events import StreamEvent
from repro.errors import ExecutionError
from repro.runtime.protocol import STATE_FORMAT, STATE_PARTITIONED

#: Default number of partitions.
DEFAULT_PARTITIONS = 4

#: Merge strategies for reading a map across partitions.
MERGE_SUM = "sum"
MERGE_REPLICATED = "replicated"
MERGE_UNMERGEABLE = "unmergeable"


def stable_hash(values: tuple) -> int:
    """A deterministic, process-independent hash of a partition-key tuple.

    Numerically equal keys must hash equally regardless of representation
    (``7`` joins ``7.0`` under Python equality, so both must route to the
    same partition); :func:`normalize_number` collapses integral floats and
    Fractions to ints before hashing.
    """
    total = 0
    for value in values:
        value = normalize_number(value)
        if isinstance(value, int):  # bools normalize to ints above
            total = (total * 1000003 + (value & 0x7FFFFFFF)) & 0x7FFFFFFF
        else:
            total = (total * 1000003 + zlib.crc32(repr(value).encode())) & 0x7FFFFFFF
    return total


@dataclass(frozen=True)
class PartitionSpec:
    """Which relations are hash-partitioned on which key columns."""

    partitions: int
    keys: Mapping[str, tuple[str, ...]]
    replicated: frozenset[str]
    merge: Mapping[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"{self.partitions} partitions"]
        for relation in sorted(self.keys):
            parts.append(f"{relation} by ({', '.join(self.keys[relation])})")
        if self.replicated:
            parts.append(f"replicated: {', '.join(sorted(self.replicated))}")
        return "; ".join(parts)


def _linear_atoms(expr: Expr) -> tuple[list[Relation], set[str]]:
    """Relation atoms occurring linearly, plus relations under nonlinear nodes.

    An atom under a ``Lift`` or ``Exists`` contributes through a nonlinear
    function of the data (a nested aggregate value or a domain test), so the
    relations it mentions cannot be partitioned without breaking sum-merging.
    """
    linear: list[Relation] = []
    nonlinear: set[str] = set()

    def visit(node: Expr, inside_nonlinear: bool) -> None:
        if isinstance(node, Relation):
            if inside_nonlinear:
                nonlinear.add(node.name)
            else:
                linear.append(node)
            return
        nested = inside_nonlinear or isinstance(node, (Lift, Exists))
        for child in children(node):
            visit(child, nested)

    visit(expr, False)
    return linear, nonlinear


def _atom_key_vars(atom: Relation, key_columns: Sequence[str], schema: Sequence[str]):
    """Variables standing at ``key_columns`` positions inside ``atom``."""
    positions = []
    schema = tuple(schema)
    for column in key_columns:
        try:
            positions.append(schema.index(column))
        except ValueError:
            return None
    if any(p >= len(atom.columns) for p in positions):
        return None
    return tuple(atom.columns[p] for p in positions)


def _choose_join_variable(
    atoms: Sequence[Relation],
    schemas: Mapping[str, Sequence[str]],
    assignment: Mapping[str, tuple[str, ...]],
) -> tuple[str, list[Relation]] | None:
    """Pick the variable partitioning the largest consistent subset of atoms.

    Returns ``(variable, covered_atoms)`` where every covered atom carries the
    variable at one consistent column position per relation (compatible with
    any existing single-column ``assignment``), or ``None`` when no variable
    covers two or more atoms.
    """
    candidates: dict[str, dict[str, set[int]]] = {}
    for atom in atoms:
        for position, variable in enumerate(atom.columns):
            candidates.setdefault(variable, {}).setdefault(atom.name, set()).add(position)

    best: tuple[int, int, str] | None = None
    best_cover: list[Relation] = []
    for variable in sorted(candidates):
        per_relation = candidates[variable]
        cover: list[Relation] = []
        leading = 0
        for atom in atoms:
            positions = {p for p, v in enumerate(atom.columns) if v == variable}
            if not positions:
                continue
            # The variable must sit at a single consistent column per relation
            # across all of that relation's atoms in this map.
            shared = set.intersection(
                *(
                    {p for p, v in enumerate(other.columns) if v == variable}
                    for other in atoms
                    if other.name == atom.name
                )
            )
            if not shared:
                continue
            assigned = assignment.get(atom.name)
            if assigned is not None:
                schema = tuple(schemas[atom.name])
                if len(assigned) != 1 or schema.index(assigned[0]) not in shared:
                    continue
            cover.append(atom)
            if 0 in shared:
                leading += 1
        # Every atom of a covered relation must be covered, otherwise one of
        # its occurrences would range over foreign partitions.
        covered_names = {a.name for a in cover}
        if any(a.name in covered_names and a not in cover for a in atoms):
            continue
        if len(cover) >= 2:
            score = (len(cover), leading, variable)
            if best is None or score > best:
                best = score
                best_cover = cover
    if best is None:
        return None
    return best[2], best_cover


def infer_partition_spec(
    program: TriggerProgram,
    partitions: int = DEFAULT_PARTITIONS,
    keys: Mapping[str, Sequence[str]] | None = None,
) -> PartitionSpec:
    """Choose partition keys making every root map exactly mergeable.

    Starts from ``keys`` (explicit, validated) plus to-be-inferred stream
    relations, then iteratively (a) demotes relations used nonlinearly,
    (b) unifies join keys inside each root map, demoting atoms left outside
    the chosen co-partitioning, until a fixpoint.  Remaining free relations
    default to their leading column.
    """
    if partitions < 1:
        raise ExecutionError(f"partitions must be >= 1, got {partitions}")
    stream = list(program.stream_relations)
    assignment: dict[str, tuple[str, ...]] = {}
    for relation, columns in (keys or {}).items():
        if relation not in program.schemas:
            raise ExecutionError(f"unknown relation {relation!r} in partition keys")
        schema = set(program.schemas[relation])
        missing = [c for c in columns if c not in schema]
        if missing:
            raise ExecutionError(
                f"partition key columns {missing} not in schema of {relation!r}"
            )
        assignment[relation] = tuple(columns)

    demoted: set[str] = set()
    root_declarations = [program.maps[name] for name in program.roots.values()]

    def candidate(name: str) -> bool:
        return name in program.stream_relations and name not in demoted

    changed = True
    while changed:
        changed = False
        for decl in root_declarations:
            linear, nonlinear = _linear_atoms(decl.definition)
            for relation in sorted(nonlinear):
                if candidate(relation):
                    demoted.add(relation)
                    changed = True
            # A relation used both linearly and nonlinearly is already demoted.
            atoms = [a for a in linear if candidate(a.name)]
            if len(atoms) <= 1:
                continue

            def adopt(variable: str, cover: list[Relation]) -> None:
                nonlocal changed
                names = {a.name for a in cover}
                for name in sorted(names):
                    if name in demoted:
                        continue
                    schema = tuple(program.schemas[name])
                    shared = set.intersection(
                        *(
                            {p for p, v in enumerate(a.columns) if v == variable}
                            for a in cover
                            if a.name == name
                        )
                    )
                    existing = assignment.get(name)
                    if existing is not None:
                        if schema.index(existing[0]) not in shared:
                            demoted.add(name)
                            changed = True
                        continue
                    assignment[name] = (schema[min(shared)],)
                    changed = True

            choice = _choose_join_variable(atoms, program.schemas, assignment)
            if choice is None:
                # No co-partitioning possible: keep the relation with the most
                # atoms (ties: first in schema order) if its own occurrences
                # can agree on a key, demote everything else.
                by_name: dict[str, list[Relation]] = {}
                for atom in atoms:
                    by_name.setdefault(atom.name, []).append(atom)
                keep = max(by_name, key=lambda n: (len(by_name[n]), -stream.index(n)))
                if len(by_name[keep]) > 1:
                    solo = _choose_join_variable(by_name[keep], program.schemas, assignment)
                    if solo is None:
                        demoted.add(keep)
                        changed = True
                    else:
                        adopt(*solo)
                for name in by_name:
                    if name != keep and candidate(name):
                        demoted.add(name)
                        changed = True
                continue
            variable, cover = choice
            for atom in atoms:
                if atom not in cover and candidate(atom.name):
                    demoted.add(atom.name)
                    changed = True
            adopt(variable, [a for a in cover if candidate(a.name)])

    for relation in stream:
        if relation not in assignment and relation not in demoted:
            schema = program.schemas[relation]
            assignment[relation] = (schema[0],) if schema else ()
    final_keys = {
        relation: columns
        for relation, columns in assignment.items()
        if relation not in demoted and columns
    }
    replicated = frozenset(r for r in stream if r not in final_keys)

    merge = {
        name: _classify_map(decl, final_keys, program.schemas)
        for name, decl in program.maps.items()
    }
    for root, map_name in program.roots.items():
        if merge[map_name] == MERGE_UNMERGEABLE:  # pragma: no cover - guarded above
            raise ExecutionError(
                f"internal error: root {root!r} is not mergeable under {final_keys}"
            )
    return PartitionSpec(
        partitions=partitions,
        keys=final_keys,
        replicated=replicated,
        merge=merge,
    )


def _classify_map(
    decl: MapDeclaration,
    keys: Mapping[str, tuple[str, ...]],
    schemas: Mapping[str, Sequence[str]],
) -> str:
    linear, nonlinear = _linear_atoms(decl.definition)
    if any(name in keys for name in nonlinear):
        return MERGE_UNMERGEABLE
    partitioned = [a for a in linear if a.name in keys]
    if not partitioned:
        return MERGE_REPLICATED
    key_vars = set()
    for atom in partitioned:
        vars_ = _atom_key_vars(atom, keys[atom.name], schemas[atom.name])
        if vars_ is None:
            return MERGE_UNMERGEABLE
        key_vars.add(vars_)
    return MERGE_SUM if len(key_vars) == 1 else MERGE_UNMERGEABLE


class PartitionedEngine:
    """Routes a stream across hash partitions and merges views on read.

    ``backend`` selects the executor: ``"sequential"`` (in-process, the
    default) or ``"process"`` (one worker process per partition, real
    parallelism).  ``batch_size`` optionally runs a
    :class:`~repro.exec.batching.BatchedEngine` inside every partition.
    """

    def __init__(
        self,
        program: TriggerProgram,
        partitions: int = DEFAULT_PARTITIONS,
        partition_keys: Mapping[str, Sequence[str]] | None = None,
        backend: str = "sequential",
        batch_size: int | None = None,
        route_buffer: int = 256,
        compiled: bool = False,
        telemetry=None,
    ) -> None:
        from repro.exec.executor import make_backend

        self.program = program
        self.spec = infer_partition_spec(program, partitions, partition_keys)
        # Events are accounted once, at this routing layer; the backend's
        # inner engines run with telemetry disabled (see executor.py), so a
        # process-global enabled default cannot double count.
        self._backend = make_backend(
            backend, program, partitions, batch_size=batch_size, compiled=compiled
        )
        self.backend_name = backend
        self._buffers: list[list[StreamEvent]] = [[] for _ in range(partitions)]
        self._buffered = 0
        self._route_buffer = max(1, route_buffer)
        self._positions = {
            relation: tuple(
                tuple(program.schemas[relation]).index(column) for column in columns
            )
            for relation, columns in self.spec.keys.items()
        }
        self._stream = frozenset(program.stream_relations)
        self.events_processed = 0
        self.events_routed = [0] * partitions
        self.events_broadcast = 0
        self.flushes = 0
        if telemetry is None:
            from repro.telemetry import current

            telemetry = current()
        self.telemetry = telemetry
        # (sign, relation) event counts at the routing layer (enabled only:
        # the backend engines are where per-event latency would be measured,
        # but they run disabled — routing is where partitioned events are
        # accounted exactly once).
        self._route_counts: dict[tuple[int, str], int] | None = None
        self._roundtrip_hist = None
        # Provenance configuration, remembered so the engine can answer
        # ``provenance_enabled`` without a backend round-trip.  The rings
        # themselves live inside the per-partition engines.
        self._provenance_config: tuple[int | None, list[str] | None] | None = None
        if telemetry.enabled:
            self._route_counts = {}
            self._roundtrip_hist = telemetry.registry.histogram(
                "repro_exec_roundtrip_seconds",
                {"backend": backend},
                help="flush round-trip: dispatch plus partition drain barrier",
            )
            telemetry.registry.add_collector(self._collect_telemetry)

    def _collect_telemetry(self, registry) -> None:
        for (sign, relation), count in (self._route_counts or {}).items():
            op = "insert" if sign > 0 else "delete"
            registry.counter(
                "repro_engine_events_total",
                {"relation": relation, "op": op},
                help="Stream events applied, by relation and operation",
            ).value = count
        routed = list(self.events_routed)
        for index, count in enumerate(routed):
            registry.gauge(
                "repro_exec_partition_events",
                {"partition": str(index)},
                help="Events routed to one partition",
            ).set(count)
        mean = sum(routed) / len(routed) if routed else 0.0
        skew = (max(routed) / mean) if mean else 0.0
        registry.gauge(
            "repro_exec_partition_skew",
            help="max/mean of per-partition routed event counts",
        ).set(skew)
        registry.counter(
            "repro_exec_events_broadcast_total", help="Events broadcast to every partition"
        ).value = self.events_broadcast
        registry.counter(
            "repro_exec_flushes_total", help="Partitioned flush barriers"
        ).value = self.flushes

    # -- data loading -----------------------------------------------------------
    def load_static(self, relation: str, rows: Iterable) -> int:
        return self._backend.load_static(relation, list(rows))

    # -- stream processing ------------------------------------------------------
    def route(self, event: StreamEvent) -> int | None:
        """Partition index for a routed event, ``None`` for broadcasts."""
        positions = self._positions.get(event.relation)
        if positions is None:
            return None
        key = tuple(event.values[p] for p in positions)
        return stable_hash(key) % self.spec.partitions

    def apply(self, event: StreamEvent) -> None:
        if event.relation not in self._stream:
            raise ExecutionError(
                f"relation {event.relation!r} is not a stream relation of this program"
            )
        index = self.route(event)
        if index is None:
            for buffer in self._buffers:
                buffer.append(event)
            self.events_broadcast += 1
            self._buffered += len(self._buffers)
        else:
            self._buffers[index].append(event)
            self.events_routed[index] += 1
            self._buffered += 1
        self.events_processed += 1
        counts = self._route_counts
        if counts is not None:
            key = (event.sign, event.relation)
            counts[key] = counts.get(key, 0) + 1
        if self._buffered >= self._route_buffer:
            self._dispatch()

    def apply_many(self, events: Iterable[StreamEvent]) -> int:
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    def _dispatch(self) -> None:
        for index, buffer in enumerate(self._buffers):
            if buffer:
                self._backend.apply(index, buffer)
                self._buffers[index] = []
        self._buffered = 0

    def flush(self) -> None:
        """Dispatch buffered events and wait for every partition to drain."""
        self.flushes += 1
        hist = self._roundtrip_hist
        if hist is None:
            self._dispatch()
            self._backend.sync()
            return
        started = perf_counter()
        self._dispatch()
        self._backend.sync()
        hist.observe(perf_counter() - started)

    # -- reading views ----------------------------------------------------------
    def _map_name(self, name: str | None) -> str:
        if name is None or name in self.program.roots:
            return self.program.root_map(name).name
        if name in self.program.maps:
            return name
        raise ExecutionError(f"unknown view {name!r}")

    def merged_items(self, name: str | None = None) -> tuple[tuple[str, ...], dict[tuple, Any]]:
        """Merged ``key tuple -> value`` contents of one map, plus its columns."""
        map_name = self._map_name(name)
        self.flush()
        columns = self.program.maps[map_name].keys
        merge = self.spec.merge.get(map_name, MERGE_UNMERGEABLE)
        if merge == MERGE_REPLICATED:
            return columns, dict(self._backend.result_items(0, map_name))
        if merge == MERGE_SUM:
            merged: dict[tuple, Any] = {}
            for index in range(self.spec.partitions):
                for key, value in self._backend.result_items(index, map_name):
                    total = merged.get(key, 0) + value
                    merged[key] = total
            return columns, {k: v for k, v in merged.items() if not is_zero(v)}
        raise ExecutionError(
            f"map {map_name!r} cannot be merged across partitions "
            f"(nonlinear in a partitioned relation); read a root view instead"
        )

    def view(self, name: str | None = None) -> GMR:
        columns, merged = self.merged_items(name)
        return GMR((Row(zip(columns, key)), value) for key, value in merged.items())

    def scalar_result(self, name: str | None = None) -> Any:
        return self.view(name).total_multiplicity()

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]:
        _, merged = self.merged_items(name)
        return merged

    # -- row provenance ----------------------------------------------------------
    @property
    def provenance_enabled(self) -> bool:
        return self._provenance_config is not None

    def enable_provenance(
        self, depth: int | None = None, views: list[str] | None = None
    ) -> None:
        """Enable delta-history rings inside every partition engine.

        Each partition records the transitions *it* executed: a routed event
        shows up in exactly one partition's ring, a broadcast in all of them.
        ``explain_row`` merges the per-partition histories back together.
        """
        self.flush()
        view_list = list(views) if views is not None else None
        for index in range(self.spec.partitions):
            self._backend.enable_provenance(index, depth, view_list)
        self._provenance_config = (depth, view_list)

    def explain_row(
        self, view: str | None = None, key: Iterable[Any] | None = None
    ) -> dict[str, Any]:
        """Merged recent mutation history of one view (optionally one key).

        Per-partition entries are tagged with their ``partition`` index and
        ordered by ``(partition, version)`` — versions count events *within*
        a partition, so they are not comparable across partitions.
        """
        if self._provenance_config is None:
            raise ExecutionError(
                "row provenance is disabled; call enable_provenance() "
                "(or serve with --provenance-depth)"
            )
        self.flush()
        key_tuple = tuple(key) if key is not None else None
        reports = [
            self._backend.explain_row(index, view, key_tuple)
            for index in range(self.spec.partitions)
        ]
        history: list[dict[str, Any]] = []
        for index, report in enumerate(reports):
            for entry in report["history"]:
                entry["partition"] = index
                history.append(entry)
        merged: dict[str, Any] = {
            "view": reports[0]["view"],
            "map": reports[0]["map"],
            "columns": reports[0]["columns"],
            "key": reports[0]["key"],
            "depth": reports[0]["depth"],
            "partitions": self.spec.partitions,
            "history": history,
        }
        if key_tuple is not None:
            map_name = self._map_name(view)
            merged["current"] = self.result_dict(map_name).get(key_tuple, 0)
        return merged

    # -- accounting --------------------------------------------------------------
    def memory_bytes(self) -> int:
        self.flush()
        return sum(
            self._backend.memory_bytes(index) for index in range(self.spec.partitions)
        )

    def map_sizes(self) -> dict[str, int]:
        """Summed per-partition entry counts (resident entries, not merged)."""
        self.flush()
        totals: dict[str, int] = {}
        for index in range(self.spec.partitions):
            for name, size in self._backend.map_sizes(index).items():
                totals[name] = totals.get(name, 0) + size
        return totals

    def statistics(self) -> dict[str, object]:
        """Partitioning spec, routing counters and per-partition statistics."""
        self.flush()
        return {
            "events_processed": self.events_processed,
            "memory_bytes": self.memory_bytes(),
            "spec": {
                "partitions": self.spec.partitions,
                "keys": {r: list(c) for r, c in sorted(self.spec.keys.items())},
                "replicated": sorted(self.spec.replicated),
            },
            "events_routed": list(self.events_routed),
            "events_broadcast": self.events_broadcast,
            "flushes": self.flushes,
            "partitions": [
                self._backend.statistics(index)
                for index in range(self.spec.partitions)
            ],
        }

    def describe(self) -> str:
        return f"{self.spec.describe()}\n{self.program.pretty()}"

    # -- durable state -----------------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """One single-engine state per partition plus the routing counters.

        Restoring requires an identical partition layout (count and keys):
        per-partition map contents cannot be re-sharded after the fact.
        """
        self.flush()
        return {
            "format": STATE_FORMAT,
            "kind": STATE_PARTITIONED,
            "partitions": self.spec.partitions,
            "keys": {r: list(c) for r, c in sorted(self.spec.keys.items())},
            "events_processed": self.events_processed,
            "events_routed": list(self.events_routed),
            "events_broadcast": self.events_broadcast,
            "states": [
                self._backend.state(index) for index in range(self.spec.partitions)
            ],
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Load a :meth:`checkpoint_state` dictionary into this engine."""
        if state.get("kind") != STATE_PARTITIONED:
            raise ExecutionError(
                f"cannot restore a {state.get('kind')!r} state into a partitioned engine"
            )
        if state.get("format") != STATE_FORMAT:
            raise ExecutionError(
                f"engine state has format {state.get('format')!r}; "
                f"this build reads format {STATE_FORMAT}"
            )
        if state["partitions"] != self.spec.partitions:
            raise ExecutionError(
                f"state has {state['partitions']} partitions, engine has "
                f"{self.spec.partitions}"
            )
        keys = {r: list(c) for r, c in sorted(self.spec.keys.items())}
        if state["keys"] != keys:
            raise ExecutionError(
                f"state partition keys {state['keys']} do not match engine keys {keys}"
            )
        self._buffers = [[] for _ in range(self.spec.partitions)]
        self._buffered = 0
        for index, partition_state in enumerate(state["states"]):
            self._backend.restore(index, partition_state)
        # Partition engines auto-enable provenance from their own saved
        # states; mirror that into this layer's flag so explain_row works.
        if self._provenance_config is None:
            for partition_state in state["states"]:
                saved = partition_state.get("provenance")
                if saved:
                    self._provenance_config = (
                        saved.get("depth"),
                        sorted(saved.get("views", ())),
                    )
                    break
        self.events_processed = int(state["events_processed"])
        self.events_routed = list(state["events_routed"])
        self.events_broadcast = int(state["events_broadcast"])

    # -- incremental state (delta checkpoints) -----------------------------------
    def supports_delta_state(self) -> bool:
        """Partitioned state lives across workers; only full cuts are offered."""
        return False

    def begin_delta_tracking(self) -> None:
        """No-op: callers checked :meth:`supports_delta_state` first."""

    def delta_state(self) -> dict[str, Any]:
        raise ExecutionError(
            "the partitioned engine does not produce delta states; "
            "use checkpoint_state (supports_delta_state() is False)"
        )

    def apply_delta_state(self, state: Mapping[str, Any]) -> None:
        raise ExecutionError(
            "the partitioned engine does not apply delta states; "
            "use restore_state (supports_delta_state() is False)"
        )

    def close(self) -> None:
        """Release backend resources (worker processes)."""
        self._backend.close()

    def __enter__(self) -> "PartitionedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
