"""Executor backends: where partitioned engines actually run.

:class:`PartitionedEngine` is backend-agnostic: it routes events into
per-partition batches and reads merged views.  A backend owns the partition
engines and answers a small command set:

* ``SequentialBackend`` — all partitions live in the driver process.  This is
  the correctness baseline and the right choice for small streams, where
  process fan-out costs more than it buys.
* ``MultiprocessBackend`` — one OS process per partition, connected by pipes.
  ``apply`` is fire-and-forget (workers drain their pipes concurrently, which
  is where the real parallel speedup comes from); reads go through ``sync``
  barriers so observable state is always consistent.

Workers rebuild their engine from the pickled trigger program, so the
multiprocess backend works under both the ``fork`` and ``spawn`` start
methods.
"""

from __future__ import annotations

import pickle
from typing import Any, Protocol, Sequence

from repro.compiler.program import TriggerProgram
from repro.delta.events import StreamEvent
from repro.errors import ExecutionError, ReproError


def _build_partition_engine(
    program: TriggerProgram, batch_size: int | None, compiled: bool = False
):
    from repro.exec.batching import BatchedEngine
    from repro.runtime.engine import IncrementalEngine
    from repro.telemetry import Telemetry

    # Partition engines always run with telemetry disabled: events are
    # accounted once at the routing layer, and a process-global enabled
    # default here would count every event twice (and pay per-event timing
    # inside every partition).
    disabled = Telemetry(enabled=False)
    if batch_size is not None and batch_size > 1:
        return BatchedEngine(program, batch_size, compiled=compiled, telemetry=disabled)
    if compiled:
        from repro.codegen.engine import CompiledEngine

        return CompiledEngine(program, telemetry=disabled)
    return IncrementalEngine(program, telemetry=disabled)


class Backend(Protocol):
    """What :class:`~repro.exec.partitioning.PartitionedEngine` needs."""

    count: int

    def load_static(self, relation: str, rows: list) -> int: ...

    def apply(self, index: int, events: Sequence[StreamEvent]) -> None: ...

    def sync(self) -> None: ...

    def result_items(self, index: int, name: str) -> list[tuple[tuple, Any]]: ...

    def map_sizes(self, index: int) -> dict[str, int]: ...

    def memory_bytes(self, index: int) -> int: ...

    def statistics(self, index: int) -> dict[str, object]: ...

    def enable_provenance(
        self, index: int, depth: int | None, views: list[str] | None
    ) -> None: ...

    def explain_row(
        self, index: int, view: str | None, key: tuple | None
    ) -> dict[str, Any]: ...

    def state(self, index: int) -> dict[str, Any]: ...

    def restore(self, index: int, state: dict[str, Any]) -> None: ...

    def close(self) -> None: ...


class SequentialBackend:
    """All partition engines hosted in the calling process."""

    def __init__(
        self,
        program: TriggerProgram,
        count: int,
        batch_size: int | None = None,
        compiled: bool = False,
    ):
        self.count = count
        self._engines = [
            _build_partition_engine(program, batch_size, compiled) for _ in range(count)
        ]

    def load_static(self, relation: str, rows: list) -> int:
        loaded = 0
        for engine in self._engines:
            loaded = engine.load_static(relation, rows)
        return loaded

    def apply(self, index: int, events: Sequence[StreamEvent]) -> None:
        engine = self._engines[index]
        for event in events:
            engine.apply(event)

    def sync(self) -> None:
        for engine in self._engines:
            if hasattr(engine, "flush"):
                engine.flush()

    def result_items(self, index: int, name: str) -> list[tuple[tuple, Any]]:
        return list(self._engines[index].result_dict(name).items())

    def map_sizes(self, index: int) -> dict[str, int]:
        return self._engines[index].map_sizes()

    def memory_bytes(self, index: int) -> int:
        return self._engines[index].memory_bytes()

    def statistics(self, index: int) -> dict[str, object]:
        return self._engines[index].statistics()

    def enable_provenance(
        self, index: int, depth: int | None, views: list[str] | None
    ) -> None:
        self._engines[index].enable_provenance(depth=depth, views=views)

    def explain_row(
        self, index: int, view: str | None, key: tuple | None
    ) -> dict[str, Any]:
        return self._engines[index].explain_row(view, key)

    def state(self, index: int) -> dict[str, Any]:
        return self._engines[index].checkpoint_state()

    def restore(self, index: int, state: dict[str, Any]) -> None:
        self._engines[index].restore_state(state)

    def close(self) -> None:
        pass


def _worker_main(
    connection, program_bytes: bytes, batch_size: int | None, compiled: bool = False
) -> None:
    """Worker loop: rebuild the engine, then serve commands until ``stop``.

    Compiled workers recompile their kernels from the unpickled trigger
    program — pickled state never carries code objects.
    """
    engine = _build_partition_engine(pickle.loads(program_bytes), batch_size, compiled)
    while True:
        try:
            command, payload = connection.recv()
        except EOFError:
            break
        if command == "apply":
            for event in payload:
                engine.apply(event)
        elif command == "load_static":
            relation, rows = payload
            connection.send(engine.load_static(relation, rows))
        elif command == "sync":
            if hasattr(engine, "flush"):
                engine.flush()
            connection.send(engine.events_processed)
        elif command == "result_items":
            connection.send(list(engine.result_dict(payload).items()))
        elif command == "map_sizes":
            connection.send(engine.map_sizes())
        elif command == "memory_bytes":
            connection.send(engine.memory_bytes())
        elif command == "statistics":
            connection.send(engine.statistics())
        elif command == "enable_provenance":
            depth, views = payload
            engine.enable_provenance(depth=depth, views=views)
            connection.send(True)
        elif command == "explain_row":
            view, key = payload
            try:
                connection.send(engine.explain_row(view, key))
            except ReproError as exc:
                connection.send(exc)
        elif command == "state":
            connection.send(engine.checkpoint_state())
        elif command == "restore":
            engine.restore_state(payload)
            connection.send(True)
        elif command == "stop":
            connection.send(True)
            break
        else:  # pragma: no cover - protocol misuse
            connection.send(ExecutionError(f"unknown command {command!r}"))
    connection.close()


class MultiprocessBackend:
    """One worker process per partition for real parallel execution."""

    def __init__(
        self,
        program: TriggerProgram,
        count: int,
        batch_size: int | None = None,
        compiled: bool = False,
    ):
        import multiprocessing

        self.count = count
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")
        program_bytes = pickle.dumps(program)
        self._connections = []
        self._processes = []
        for _ in range(count):
            parent, child = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child, program_bytes, batch_size, compiled),
                daemon=True,
            )
            process.start()
            child.close()
            self._connections.append(parent)
            self._processes.append(process)
        self._closed = False

    def _request(self, index: int, command: str, payload: Any = None) -> Any:
        connection = self._connections[index]
        connection.send((command, payload))
        result = connection.recv()
        if isinstance(result, Exception):
            raise result
        return result

    def load_static(self, relation: str, rows: list) -> int:
        loaded = 0
        for index in range(self.count):
            loaded = self._request(index, "load_static", (relation, rows))
        return loaded

    def apply(self, index: int, events: Sequence[StreamEvent]) -> None:
        # Fire-and-forget: workers drain their pipes concurrently.
        self._connections[index].send(("apply", list(events)))

    def sync(self) -> None:
        for index in range(self.count):
            self._connections[index].send(("sync", None))
        for connection in self._connections:
            connection.recv()

    def result_items(self, index: int, name: str) -> list[tuple[tuple, Any]]:
        return self._request(index, "result_items", name)

    def map_sizes(self, index: int) -> dict[str, int]:
        return self._request(index, "map_sizes", None)

    def memory_bytes(self, index: int) -> int:
        return self._request(index, "memory_bytes", None)

    def statistics(self, index: int) -> dict[str, object]:
        return self._request(index, "statistics", None)

    def enable_provenance(
        self, index: int, depth: int | None, views: list[str] | None
    ) -> None:
        self._request(index, "enable_provenance", (depth, views))

    def explain_row(
        self, index: int, view: str | None, key: tuple | None
    ) -> dict[str, Any]:
        return self._request(index, "explain_row", (view, key))

    def state(self, index: int) -> dict[str, Any]:
        return self._request(index, "state", None)

    def restore(self, index: int, state: dict[str, Any]) -> None:
        self._request(index, "restore", state)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for connection in self._connections:
            try:
                connection.recv()
            except (EOFError, OSError):  # pragma: no cover
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


#: Registered backend names.
BACKENDS = {
    "sequential": SequentialBackend,
    "process": MultiprocessBackend,
}


def make_backend(
    kind: str,
    program: TriggerProgram,
    count: int,
    batch_size: int | None = None,
    compiled: bool = False,
) -> Backend:
    """Instantiate a backend by name (``"sequential"`` or ``"process"``)."""
    try:
        factory = BACKENDS[kind]
    except KeyError:
        raise ExecutionError(
            f"unknown backend {kind!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return factory(program, count, batch_size=batch_size, compiled=compiled)
