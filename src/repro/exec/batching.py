"""Batched delta execution: apply triggers once per delta batch, not per event.

The per-event :class:`~repro.runtime.engine.IncrementalEngine` runs every
trigger statement once per stream event.  At production rates most of the
per-event cost in this interpreter is fixed overhead — trigger lookup,
binding construction, evaluator setup — that is identical across events.
This module coalesces a slice of the agenda into per-relation *delta GMRs*
(Section 3.4's bulk updates made concrete: tuple -> folded multiplicity) and
applies each trigger once per batch.

Exactness is never traded for speed.  A static analysis decides, per trigger,
whether bulk application is equivalent to sequential application:

* a trigger is **bulk-safe** when none of its ``+=`` statements read a map the
  same trigger writes, none read the triggering base relation itself, and its
  ``:=`` statements do not depend on the trigger variables.  For such triggers
  the per-tuple deltas are independent of the order in which the batch's
  events are applied, so one pass per statement over the folded delta (scaled
  by each tuple's multiplicity) produces exactly the sequential result.
* all other triggers (self-joins, nested-aggregate view maintenance, ...)
  fall back to per-event application *inside the batch*, preserving order.

Batches additionally merge non-adjacent events of the same (relation, sign)
when the intervening triggers *commute* (their read/write sets are disjoint),
which turns the short per-relation runs of realistic streams into large
foldable groups.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.agca.ast import free_variables
from repro.codegen.statement import compile_scalar_kernel
from repro.codegen.vector import (
    ColumnBatch,
    VectorFallback,
    numpy_available,
    try_compile_vector,
    vector_unavailable_reason,
)
from repro.compiler.program import ASSIGN, INCREMENT, Statement, TriggerProgram
from repro.core.gmr import GMR
from repro.core.rows import Row
from repro.delta.events import StreamEvent
from repro.errors import ExecutionError
from repro.runtime.engine import IncrementalEngine

#: Default number of events coalesced into one delta batch.
DEFAULT_BATCH_SIZE = 100

#: Smallest folded group dispatched to the vector backend.  Below this the
#: fixed numpy kernel-invocation cost (array wrapping, mask allocation, probe
#: setup) exceeds the scalar loop's total work, so tiny groups — the common
#: shape when interleaved multi-relation streams fold into many short runs —
#: stay on the scalar path.  Breakeven sits around 6-10 rows per group.
DEFAULT_MIN_VECTOR_ROWS = 16

#: How many trailing groups the folder scans for a commuting merge target.
_MERGE_LOOKBACK = 8

TriggerKey = tuple[str, int]


class TriggerAnalysis:
    """Static bulk-safety and statement classification for one trigger.

    Map-free statements compile into per-tuple fast-path kernels through the
    shared expression lowering in :mod:`repro.codegen.statement` (the
    batching subsystem used to carry its own closure builder for this).
    """

    def __init__(self, program: TriggerProgram, relation: str, sign: int) -> None:
        self.relation = relation
        self.sign = sign
        trigger = program.trigger_for(sign, relation)
        statements: Sequence[Statement] = trigger.statements if trigger else ()
        self.increments = [s for s in statements if s.operation == INCREMENT]
        self.assigns = [s for s in statements if s.operation == ASSIGN]

        self.writes = frozenset(s.target for s in statements)
        self.assign_targets = frozenset(s.target for s in self.assigns)
        self.reads_maps = frozenset().union(*(s.reads_maps() for s in statements)) \
            if statements else frozenset()
        self.reads_relations = frozenset().union(*(s.reads_relations() for s in statements)) \
            if statements else frozenset()
        self.updates_base = relation in program.requires_base_relations()

        self.safe = self._bulk_safe()
        self._program = program
        self._vector: dict[int, Any] | None = None
        self.fast_increments: list[tuple[Statement, Callable]] = []
        self.slow_increments: list[Statement] = []
        if self.safe:
            for statement in self.increments:
                decl = program.maps.get(statement.target)
                compiled = compile_scalar_kernel(
                    statement, decl.keys if decl is not None else None
                )
                if compiled is not None:
                    self.fast_increments.append((statement, compiled))
                else:
                    self.slow_increments.append(statement)

    def vector_kernels(self) -> dict[int, Any]:
        """Columnar batch kernels by ``id(statement)`` (compiled lazily).

        Only bulk-safe triggers qualify (vector application is one pass per
        statement over the folded delta, which is exactly the bulk
        contract); within them, any ``+=`` statement the vector emitter can
        lower gets a kernel, the rest stay on their scalar paths.
        """
        if self._vector is None:
            kernels: dict[int, Any] = {}
            if self.safe:
                for statement in self.increments:
                    kernel = try_compile_vector(statement, self._program)
                    if kernel is not None:
                        kernels[id(statement)] = kernel
            self._vector = kernels
        return self._vector

    def _bulk_safe(self) -> bool:
        for statement in self.increments:
            if statement.reads_maps() & self.writes:
                return False
            if self.relation in statement.reads_relations():
                return False
        for statement in self.assigns:
            trigger_vars = set(statement.event.trigger_vars)
            if free_variables(statement.expr) & trigger_vars:
                return False
            if any(key in trigger_vars for key in statement.target_keys):
                return False
        return True

    def commutes_with(self, other: "TriggerAnalysis") -> bool:
        """True when this trigger and ``other`` can be applied in either order."""
        if self.reads_maps & other.writes or other.reads_maps & self.writes:
            return False
        if self.updates_base and other.reads_relations & {self.relation}:
            return False
        if other.updates_base and self.reads_relations & {other.relation}:
            return False
        shared_writes = self.writes & other.writes
        if shared_writes & (self.assign_targets | other.assign_targets):
            return False
        return True


class DeltaGroup:
    """A maximal reorderable run of events sharing one (relation, sign) key.

    Bulk-safe groups fold events into ``tuple -> multiplicity``; unsafe groups
    keep the raw ordered event list for per-event replay.
    """

    __slots__ = ("relation", "sign", "key", "count", "folded", "events")

    def __init__(self, relation: str, sign: int, safe: bool) -> None:
        self.relation = relation
        self.sign = sign
        self.key: TriggerKey = (relation, sign)
        self.count = 0
        self.folded: dict[tuple, int] | None = {} if safe else None
        self.events: list[StreamEvent] | None = None if safe else []

    def add(self, event: StreamEvent) -> None:
        self.count += 1
        if self.folded is not None:
            self.folded[event.values] = self.folded.get(event.values, 0) + 1
        else:
            self.events.append(event)

    def delta_gmr(self, columns: Sequence[str]) -> GMR:
        """The group's delta as a signed GMR over the relation's columns."""
        if self.folded is not None:
            items = ((values, self.sign * mult) for values, mult in self.folded.items())
        else:
            items = ((event.values, self.sign) for event in self.events)
        return GMR((Row(zip(columns, values)), mult) for values, mult in items)


class BatchPlan:
    """Per-program analysis driving batched execution (shared across engines)."""

    def __init__(self, program: TriggerProgram) -> None:
        self.program = program
        self._analyses: dict[TriggerKey, TriggerAnalysis] = {}
        for relation in program.stream_relations:
            for sign in (1, -1):
                self._analyses[(relation, sign)] = TriggerAnalysis(program, relation, sign)

    def analysis(self, relation: str, sign: int) -> TriggerAnalysis:
        return self._analyses[(relation, sign)]

    def fold(self, events: Iterable[StreamEvent]) -> list[DeltaGroup]:
        """Partition an event slice into ordered, internally folded delta groups.

        Events join the most recent group with their key when every group in
        between commutes with their trigger; otherwise a fresh group starts.
        """
        groups: list[DeltaGroup] = []
        analyses = self._analyses
        for event in events:
            key = (event.relation, event.sign)
            analysis = analyses[key]
            target: DeltaGroup | None = None
            for group in reversed(groups[-_MERGE_LOOKBACK:]):
                if group.key == key:
                    target = group
                    break
                if not analysis.commutes_with(analyses[group.key]):
                    break
            if target is None:
                target = DeltaGroup(event.relation, event.sign, analysis.safe)
                groups.append(target)
            target.add(event)
        return groups


class StagedBatch:
    """A pre-folded, pre-columnarized event slice (see ``BatchedEngine.stage``)."""

    __slots__ = ("groups", "events")

    def __init__(self, groups: list, events: int) -> None:
        self.groups = groups
        self.events = events


class BatchedEngine:
    """Delta-batched execution of a compiled trigger program.

    Buffers incoming events and applies them in batches of ``batch_size``
    through :class:`BatchPlan`.  Views are always read through :meth:`flush`,
    so observable results are identical to per-event execution (bulk-unsafe
    triggers replay their events in order inside the batch).
    """

    BACKENDS = ("scalar", "vector")

    def __init__(
        self,
        program: TriggerProgram,
        batch_size: int = DEFAULT_BATCH_SIZE,
        plan: BatchPlan | None = None,
        compiled: bool = False,
        telemetry=None,
        backend: str = "scalar",
        min_vector_rows: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
        if backend not in self.BACKENDS:
            raise ExecutionError(
                f"unknown batch backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.backend = backend
        self.vector_reason: str | None = None
        if backend == "vector" and not numpy_available():
            # Auto-disable instead of failing: numpy is optional, and the
            # scalar path is the semantics of record anyway.
            self.vector_reason = vector_unavailable_reason()
            backend = "scalar"
        self.backend_active = backend
        self.min_vector_rows = (
            DEFAULT_MIN_VECTOR_ROWS if min_vector_rows is None else min_vector_rows
        )
        self.program = program
        self.batch_size = batch_size
        self.compiled = compiled
        if telemetry is None:
            from repro.telemetry import current

            telemetry = current()
        # The inner engine shares this telemetry: fallback groups replay
        # through its per-event apply (it observes them), bulk groups bypass
        # it and are accounted through count_bulk_events — summed at scrape,
        # events in == events accounted, nothing counted twice.
        self.telemetry = telemetry
        if compiled:
            from repro.codegen.engine import CompiledEngine

            self.engine: IncrementalEngine = CompiledEngine(program, telemetry=telemetry)
        else:
            self.engine = IncrementalEngine(program, telemetry=telemetry)
        self.plan = plan if plan is not None and plan.program is program else BatchPlan(program)
        self._buffer: list[StreamEvent] = []
        self._stream_relations = frozenset(program.stream_relations)
        # Accounting for reports / tests.
        self.batches_flushed = 0
        self.groups_applied = 0
        self.bulk_events = 0
        self.fallback_events = 0
        self.vector_events = 0
        self.vector_fallbacks: dict[str, int] = {}
        # Bound vector kernels per trigger, dropped whenever the inner
        # engine's tables are replaced wholesale (state restores).
        self._vector_bound: dict[TriggerKey, dict[int, Any]] = {}
        if telemetry.enabled:
            registry = telemetry.registry
            self._fold_hist = registry.histogram(
                "repro_exec_batch_fold_seconds",
                help="Time folding one buffer into delta groups",
            )
            self._apply_hist = registry.histogram(
                "repro_exec_batch_apply_seconds",
                help="Time applying one folded batch through the inner engine",
            )
            registry.add_collector(self._collect_telemetry)
        else:
            self._fold_hist = None
            self._apply_hist = None

    def _collect_telemetry(self, registry) -> None:
        registry.counter(
            "repro_exec_batches_flushed_total", help="Delta batches flushed"
        ).value = self.batches_flushed
        registry.counter(
            "repro_exec_groups_applied_total", help="Delta groups applied"
        ).value = self.groups_applied
        registry.counter(
            "repro_exec_bulk_events_total", help="Events applied through bulk folds"
        ).value = self.bulk_events
        registry.counter(
            "repro_exec_fallback_events_total",
            help="Events replayed per-event inside batches",
        ).value = self.fallback_events
        registry.counter(
            "repro_exec_vector_events_total",
            help="Events applied through columnar vector kernels",
        ).value = self.vector_events
        registry.counter(
            "repro_exec_vector_fallbacks_total",
            help="Vector-kernel statement applications that fell back to scalar",
        ).value = sum(self.vector_fallbacks.values())
        registry.gauge(
            "repro_exec_batch_buffer_events", help="Events currently buffered"
        ).set(len(self._buffer))

    # -- stream processing ------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self.engine.events_processed + len(self._buffer)

    def load_static(self, relation: str, rows) -> int:
        return self.engine.load_static(relation, rows)

    def apply(self, event: StreamEvent) -> None:
        """Buffer one event, flushing a full batch when the buffer fills."""
        if event.relation not in self._stream_relations:
            raise ExecutionError(
                f"relation {event.relation!r} is not a stream relation of this program"
            )
        self._buffer.append(event)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def apply_many(self, events: Iterable[StreamEvent]) -> int:
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    def flush(self) -> None:
        """Apply every buffered event; views are fresh afterwards."""
        if not self._buffer:
            return
        buffer, self._buffer = self._buffer, []
        self.batches_flushed += 1
        fold_hist = self._fold_hist
        if fold_hist is None:
            for group in self.plan.fold(buffer):
                self._apply_group(group)
            return
        started = perf_counter()
        groups = self.plan.fold(buffer)
        fold_hist.observe(perf_counter() - started)
        started = perf_counter()
        for group in groups:
            self._apply_group(group)
        self._apply_hist.observe(perf_counter() - started)

    def _vector_bindings(self, analysis: TriggerAnalysis) -> dict[int, Any]:
        key = (analysis.relation, analysis.sign)
        bound = self._vector_bound.get(key)
        if bound is None:
            bound = {
                sid: kernel.bind(self.engine.maps, self.engine.database)
                for sid, kernel in analysis.vector_kernels().items()
            }
            self._vector_bound[key] = bound
        return bound

    def _note_fallback(self, reason: str) -> None:
        self.vector_fallbacks[reason] = self.vector_fallbacks.get(reason, 0) + 1

    def _try_vector(self, kernel, statement: Statement, batch) -> bool:
        """Run one statement through its vector kernel; False demands scalar replay.

        ``compute`` touches no engine state, so a failure at any point —
        regime violation, overflow risk, or an unexpected error a masked-out
        scalar path would never hit — leaves the tables untouched and the
        scalar replay produces the exact sequential result.
        """
        table = self.engine.maps.table(statement.target)
        if table._watcher is not None:
            # set_total skips no-op notifications the per-tuple path would
            # emit; keep dirty-delta tracking exact by staying scalar.
            self._note_fallback("watcher")
            return False
        try:
            writes = kernel.compute(batch, table)
        except VectorFallback as exc:
            self._note_fallback(str(exc) or "fallback")
            return False
        except Exception as exc:  # masked rows may poison full-array ops
            self._note_fallback(f"error:{type(exc).__name__}")
            return False
        kernel.commit(table, writes)
        return True

    def _apply_group(self, group: DeltaGroup, prebuilt=None) -> None:
        self.groups_applied += 1
        engine = self.engine
        if group.events is not None:
            self.fallback_events += group.count
            for event in group.events:
                engine.apply(event)
            return

        self.bulk_events += group.count
        engine.count_bulk_events(group.sign, group.relation, group.count)
        analysis = self.plan.analysis(group.relation, group.sign)
        executor = engine.executor
        folded = group.folded
        # Materialized lazily: a fully-vectorized group never needs the
        # per-tuple list, and building it costs ~50ns/event at large batches.
        items: list | None = None

        # Bulk folds bypass per-event apply, so provenance attributes every
        # transition of this group to the fold descriptor (the documented
        # batching attribution rule), stamped with the post-group version.
        prov = engine.provenance
        if prov is not None:
            prov.version = engine.events_processed + group.count
            prov.cause = (
                "fold",
                group.relation,
                "insert" if group.sign > 0 else "delete",
                group.count,
                len(folded),
            )

        # Vector dispatch: per statement, in exactly the scalar order (slow
        # then fast), try the columnar kernel and replay that one statement
        # through its scalar path on any fallback.  Provenance groups stay
        # scalar wholesale — set_total does not record transitions.
        vec: dict[int, Any] = {}
        if self.backend_active == "vector" and prov is None:
            vec = self._vector_bindings(analysis)
        batch = prebuilt
        if vec and batch is None:
            if len(folded) < self.min_vector_rows:
                # Tiny folded groups (interleaved multi-relation streams fold
                # into runs of a handful of tuples) pay more in per-call
                # numpy overhead than vectorization saves; the scalar loop
                # wins below the cutoff.
                self._note_fallback("small-group")
                vec = {}
            else:
                items = list(folded.items())
                batch = ColumnBatch(items)
        vectorized = False

        memo: dict = {}
        runner_for = getattr(executor, "runner_for", None)
        for statement in analysis.slow_increments:
            kernel = vec.get(id(statement))
            if kernel is not None and self._try_vector(kernel, statement, batch):
                vectorized = True
                continue
            if items is None:
                items = list(folded.items())
            # A compiled inner engine takes the folded tuples directly; the
            # interpreter needs per-item bindings dictionaries.
            runner = runner_for(statement) if runner_for is not None else None
            if runner is not None:
                for values, multiplicity in items:
                    runner(values, multiplicity)
                continue
            trigger_vars = statement.event.trigger_vars
            for values, multiplicity in items:
                executor.execute_increment(
                    statement,
                    dict(zip(trigger_vars, values)),
                    scale=multiplicity,
                    memo=memo,
                )
        for statement, run in analysis.fast_increments:
            kernel = vec.get(id(statement))
            if kernel is not None and self._try_vector(kernel, statement, batch):
                vectorized = True
                continue
            if items is None:
                items = list(folded.items())
            run(engine.maps.table(statement.target), items)
        if vectorized:
            self.vector_events += group.count

        if analysis.updates_base:
            if items is None:
                items = list(folded.items())
            table = engine.database.table(group.relation)
            for values, multiplicity in items:
                table.add(values, group.sign * multiplicity)

        for statement in analysis.assigns:
            trigger_vars = statement.event.trigger_vars
            first = next(iter(folded))
            executor.execute_assign(statement, dict(zip(trigger_vars, first)))

        engine.events_processed += group.count

    # -- staged ingest -----------------------------------------------------------
    def stage(self, events: Iterable[StreamEvent]) -> "StagedBatch":
        """Fold and pre-columnarize ``events`` ahead of :meth:`apply_staged`.

        Folding and row→column conversion are per-event costs that do not
        depend on engine state; staging performs them up front so the apply
        call measures (and spends) only the actual view-maintenance work.
        Results are identical to ``apply_many(events)`` + ``flush()``.
        """
        events = list(events)
        for event in events:
            if event.relation not in self._stream_relations:
                raise ExecutionError(
                    f"relation {event.relation!r} is not a stream relation of this program"
                )
        groups = self.plan.fold(events)
        staged: list[tuple[DeltaGroup, Any]] = []
        for group in groups:
            batch = None
            if group.folded is not None and self.backend_active == "vector":
                analysis = self.plan.analysis(group.relation, group.sign)
                kernels = analysis.vector_kernels()
                if kernels and len(group.folded) >= self.min_vector_rows:
                    batch = ColumnBatch(list(group.folded.items()))
                    for kernel in kernels.values():
                        batch.prewarm(kernel.uses)
            staged.append((group, batch))
        return StagedBatch(staged, len(events))

    def apply_staged(self, staged: "StagedBatch") -> int:
        """Apply a staged batch; buffered events flush first to keep order."""
        self.flush()
        if not staged.groups:
            return 0
        self.batches_flushed += 1
        for group, batch in staged.groups:
            self._apply_group(group, prebuilt=batch)
        return staged.events

    # -- row provenance ----------------------------------------------------------
    @property
    def provenance(self):
        return self.engine.provenance

    def enable_provenance(self, depth: int | None = None, views=None):
        """Enable row provenance on the inner engine (fold attribution applies)."""
        return self.engine.enable_provenance(depth=depth, views=views)

    def explain_row(self, view: str | None = None, key=None) -> dict[str, Any]:
        self.flush()
        return self.engine.explain_row(view, key)

    # -- reading views ----------------------------------------------------------
    def view(self, name: str | None = None) -> GMR:
        self.flush()
        return self.engine.view(name)

    def scalar_result(self, name: str | None = None) -> Any:
        self.flush()
        return self.engine.scalar_result(name)

    def result_dict(self, name: str | None = None) -> dict[tuple, Any]:
        self.flush()
        return self.engine.result_dict(name)

    # -- accounting --------------------------------------------------------------
    def memory_bytes(self) -> int:
        self.flush()
        return self.engine.memory_bytes()

    def map_sizes(self) -> dict[str, int]:
        self.flush()
        return self.engine.map_sizes()

    def statistics(self) -> dict[str, object]:
        """Inner-engine statistics plus batching counters."""
        self.flush()
        stats = self.engine.statistics()
        if self.backend_active == "vector":
            vector_statements = sum(
                len(analysis.vector_kernels())
                for analysis in self.plan._analyses.values()
            )
        else:
            vector_statements = sum(
                len(analysis._vector or ())
                for analysis in self.plan._analyses.values()
            )
        stats["batching"] = {
            "batch_size": self.batch_size,
            "batches_flushed": self.batches_flushed,
            "groups_applied": self.groups_applied,
            "bulk_events": self.bulk_events,
            "fallback_events": self.fallback_events,
            "backend": self.backend,
            "backend_active": self.backend_active,
            "vector_reason": self.vector_reason,
            "vector_statements": vector_statements,
            "min_vector_rows": self.min_vector_rows,
            "vector_events": self.vector_events,
            "vector_fallbacks": dict(self.vector_fallbacks),
        }
        return stats

    def describe(self) -> str:
        return self.engine.describe()

    # -- durable state / lifecycle ------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Flush, then capture the inner engine's state (``kind: "single"``).

        Batched and per-event engines produce interchangeable states: the
        buffer is drained first, so the state reflects every accepted event.
        """
        self.flush()
        return self.engine.checkpoint_state()

    def restore_state(self, state) -> None:
        """Load a single-engine state, discarding any buffered events."""
        self._buffer = []
        self._vector_bound = {}
        self.engine.restore_state(state)

    # -- incremental state (delta checkpoints) ----------------------------------
    def supports_delta_state(self) -> bool:
        return self.engine.supports_delta_state()

    def begin_delta_tracking(self) -> None:
        """Flush, then track dirty keys on the inner engine's tables."""
        self.flush()
        self.engine.begin_delta_tracking()

    def delta_state(self) -> dict[str, Any]:
        """Flush, then cut the inner engine's delta (covers every accepted event)."""
        self.flush()
        return self.engine.delta_state()

    def apply_delta_state(self, state) -> None:
        """Apply a delta cut, discarding any buffered events."""
        self._buffer = []
        self._vector_bound = {}
        self.engine.apply_delta_state(state)

    def close(self) -> None:
        """Flush pending work; the batched engine owns no external resources."""
        self.flush()
