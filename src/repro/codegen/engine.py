"""The compiled execution engine: generated kernels with interpreter fallback.

:class:`CompiledEngine` is a drop-in replacement for
:class:`~repro.runtime.engine.IncrementalEngine` (it *is* one — same map
store, database, checkpoint format ``kind: "single"`` and view surface) whose
executor runs the specialized Python functions produced by the staged
codegen pipeline (:mod:`repro.codegen.statement` plans IR,
:mod:`repro.codegen.emit` renders it, :mod:`repro.codegen.trigger` fuses it)
instead of walking the AGCA AST per event.

Dispatch is two-tier.  A trigger whose statements *all* compile runs as one
**fused kernel**: ``apply`` is a single ``(sign, relation)`` dictionary hit
followed by one function call covering every statement, the base-relation
apply and all ``:=`` statements, with event unpacks and identical
probe/condition subtrees shared across statements.  Triggers with any
uncompilable statement fall back to per-statement dispatch: compiled
statements run their individual kernels and the rest execute through the
ordinary :class:`~repro.runtime.interpreter.TriggerExecutor`, in statement
order, so the engine's observable results (values *and* types) are identical
to the interpreted engine on every program.  One deliberate deviation in the
error surface: hoisted loop-invariant conditions are evaluated even when the
scan they guard is empty, so an *ill-typed* comparison (ordering a number
against a string) can raise here on events where the interpreter would have
skipped it.  Well-typed programs — everything the SQL frontend emits —
behave identically, errors included.

Durable state stays interchangeable with the other single engines: the
checkpoint dictionary holds only map/relation entries and the event count,
never code objects.  :meth:`CompiledEngine.restore_state` recompiles and
rebinds every kernel after loading, so state pickled on one process (or one
library version) runs on another — this is what lets the multiprocessing
executor backend rebuild compiled workers from the pickled trigger program.
Fused kernels cache their per-database table resolution, so a restore into
the same engine reuses the already-linked runners instead of re-``exec``-ing
every code object.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Mapping

from repro.codegen import statement as statement_compiler
from repro.codegen import trigger as trigger_compiler
from repro.compiler.program import ASSIGN, Statement, TriggerProgram
from repro.delta.events import StreamEvent
from repro.runtime.database import Database
from repro.runtime.engine import IncrementalEngine
from repro.runtime.interpreter import TriggerExecutor
from repro.runtime.maps import MapStore


class _TriggerPlan:
    """Per-(sign, relation) execution plan: compiled runners plus fallbacks."""

    __slots__ = ("increments", "assigns", "arity")

    def __init__(self) -> None:
        # (statement, runner | None); runner signature is (values, scale).
        self.increments: list[tuple[Statement, Callable[[tuple, Any], None] | None]] = []
        # ``:=`` statements compile too (range-probe era); same pairing.
        self.assigns: list[tuple[Statement, Callable[[tuple, Any], None] | None]] = []
        # Relation arity, validated before compiled runners index the event
        # tuple positionally (None for triggers with no statements, where the
        # interpreter performs no arity check either).
        self.arity: int | None = None


class CompiledExecutor:
    """Applies stream events through compiled kernels, interpreting the rest.

    Exposes the same surface as :class:`TriggerExecutor` (``apply``,
    ``execute_increment``, ``execute_assign``, ``evaluator``,
    ``maintained_relations``) so the batched execution subsystem can drive a
    compiled engine exactly like an interpreted one.  ``fuse=False`` disables
    whole-trigger fusion and dispatches per statement — the benchmark
    baseline fused execution is gated against.
    """

    def __init__(
        self,
        program: TriggerProgram,
        database: Database,
        maps: MapStore,
        maintained_relations: frozenset[str] = frozenset(),
        interpreter: TriggerExecutor | None = None,
        fuse: bool = True,
    ) -> None:
        self._program = program
        self._database = database
        self._maps = maps
        self._maintained = maintained_relations
        self._fuse = fuse
        self._interpreter = interpreter if interpreter is not None else TriggerExecutor(
            program, database, maps, maintained_relations=maintained_relations
        )
        self._kernels: dict[int, statement_compiler.StatementKernel] = {}
        self._plans: dict[tuple[int, str], _TriggerPlan] = {}
        self._runners: dict[int, Callable[[tuple, Any], None]] = {}
        self._trigger_kernels: dict[tuple[int, str], trigger_compiler.TriggerKernel] = {}
        # (sign, relation) -> (fused runner, arity): the per-event fast path.
        self._fused: dict[tuple[int, str], tuple[Callable[[tuple], None], int]] = {}
        self._pinned: list[Statement] = []  # keeps id()-keyed statements alive
        self.compiled_statements = 0
        self.fallback_statements = 0
        # Always-on accounting: compile/fuse wall time (one-shot) and how
        # often the per-statement path actually hit the interpreter.
        self.compile_seconds = 0.0
        self.fuse_seconds = 0.0
        self.fallback_hits = 0
        self._compile_all()

    # -- compilation --------------------------------------------------------
    def _compile_all(self) -> None:
        compile_started = perf_counter()
        fuse_spent = 0.0
        self._kernels.clear()
        self._trigger_kernels.clear()
        self.compiled_statements = 0
        self.fallback_statements = 0
        for trigger in self._program.triggers.values():
            plan = _TriggerPlan()
            if trigger.statements:
                plan.arity = len(trigger.statements[0].event.trigger_vars)
            fully_compiled = bool(trigger.statements)
            for stmt in trigger.statements:
                kernel = statement_compiler.try_compile_statement(stmt, self._program)
                if kernel is not None:
                    self._kernels[id(stmt)] = kernel
                    self._pinned.append(stmt)
                    self.compiled_statements += 1
                else:
                    self.fallback_statements += 1
                    fully_compiled = False
                if stmt.operation == ASSIGN:
                    plan.assigns.append((stmt, None))  # bound below
                else:
                    plan.increments.append((stmt, None))
            key = (trigger.sign, trigger.relation)
            self._plans[key] = plan
            if self._fuse and fully_compiled:
                fuse_started = perf_counter()
                fused = trigger_compiler.try_fuse_trigger(trigger, self._program)
                fuse_spent += perf_counter() - fuse_started
                if fused is not None:
                    self._trigger_kernels[key] = fused
        self.rebind()
        self.fuse_seconds = fuse_spent
        self.compile_seconds = perf_counter() - compile_started

    def rebind(self) -> None:
        """(Re)link every kernel against the live tables.

        Called after compilation and after :meth:`CompiledEngine.restore_state`;
        binding is what turns schema-specialized code objects into closures
        over the concrete :class:`IndexedTable` objects.  Fused kernels cache
        their resolution per table set, so rebinding after a restore into the
        same store is a cheap identity check, not a re-``exec``.
        """
        self._runners.clear()
        for key, kernel in self._kernels.items():
            self._runners[key] = kernel.bind(self._maps, self._database)
        for plan in self._plans.values():
            plan.increments = [
                (stmt, self._runners.get(id(stmt))) for stmt, _ in plan.increments
            ]
            plan.assigns = [
                (stmt, self._runners.get(id(stmt))) for stmt, _ in plan.assigns
            ]
        self._fused = {
            key: (kernel.bind(self._maps, self._database), kernel.arity)
            for key, kernel in self._trigger_kernels.items()
        }

    def kernel_for(self, stmt: Statement) -> statement_compiler.StatementKernel | None:
        """The compiled kernel of one statement (None when it interprets)."""
        return self._kernels.get(id(stmt))

    def runner_for(self, stmt: Statement) -> Callable[[tuple, Any], None] | None:
        """The bound ``(values, scale)`` runner of one statement, if compiled.

        Lets the batched execution subsystem feed folded event tuples to the
        kernel directly instead of round-tripping them through a bindings
        dictionary per item.
        """
        return self._runners.get(id(stmt))

    def trigger_kernel_for(self, sign: int, relation: str) -> trigger_compiler.TriggerKernel | None:
        """The fused kernel of one trigger (None when it dispatches per statement)."""
        return self._trigger_kernels.get((sign, relation))

    # -- TriggerExecutor surface --------------------------------------------
    @property
    def evaluator(self):
        return self._interpreter.evaluator

    @property
    def maintained_relations(self) -> frozenset[str]:
        return self._maintained

    def apply(self, event: StreamEvent) -> None:
        """Apply one event: the fused kernel when the trigger has one, else
        compiled runners in statement order with interpreter fallbacks."""
        key = (event.sign, event.relation)
        fused = self._fused.get(key)
        if fused is not None:
            runner, arity = fused
            values = event.values
            if len(values) != arity:
                raise ValueError(
                    f"event arity {len(values)} does not match relation arity "
                    f"{arity}"
                )
            # One call covers every statement, the base-relation apply and
            # the := statements, in the executor's exact order.
            runner(values)
            return
        plan = self._plans.get(key)
        if plan is not None:
            values = event.values
            if plan.arity is not None and len(values) != plan.arity:
                # Same error surface as TriggerEvent.bindings_for on the
                # interpreted path; compiled runners index positionally and
                # must not accept malformed events the interpreter rejects.
                raise ValueError(
                    f"event arity {len(values)} does not match relation arity "
                    f"{plan.arity}"
                )
            for stmt, runner in plan.increments:
                if runner is not None:
                    runner(values, 1)
                else:
                    self.fallback_hits += 1
                    self._interpreter.execute_increment(
                        stmt, stmt.event.bindings_for(event)
                    )
        if event.relation in self._maintained:
            self._database.apply(event)
        if plan is not None:
            for stmt, runner in plan.assigns:
                if runner is not None:
                    runner(event.values, 1)
                else:
                    self.fallback_hits += 1
                    self._interpreter.execute_assign(stmt, stmt.event.bindings_for(event))

    def execute_increment(
        self,
        statement: Statement,
        bindings: Mapping[str, Any],
        scale: Any = 1,
        memo: dict | None = None,
    ) -> None:
        """Run one ``+=`` statement under explicit bindings (batched execution).

        Compiled statements rebuild the positional value tuple from the
        bindings and ignore ``memo`` (the kernels do not share evaluation
        state — they do not need to); everything else interprets.
        """
        runner = self._runners.get(id(statement))
        if runner is not None:
            values = tuple(bindings[v] for v in statement.event.trigger_vars)
            runner(values, scale)
            return
        self.fallback_hits += 1
        self._interpreter.execute_increment(statement, bindings, scale=scale, memo=memo)

    def execute_assign(self, statement: Statement, bindings: Mapping[str, Any]) -> None:
        runner = self._runners.get(id(statement))
        if runner is not None:
            values = tuple(bindings[v] for v in statement.event.trigger_vars)
            runner(values, 1)
            return
        self.fallback_hits += 1
        self._interpreter.execute_assign(statement, bindings)

    # -- reporting ----------------------------------------------------------
    def codegen_statistics(self) -> dict[str, object]:
        """Compiled/fallback statement counts, fusion totals, and the splits."""
        fallbacks = []
        for trigger in self._program.triggers.values():
            for stmt in trigger.statements:
                if id(stmt) not in self._kernels:
                    fallbacks.append(f"{trigger.name}: {stmt.target}")
        kernels = self._trigger_kernels.values()
        return {
            "compiled_statements": self.compiled_statements,
            "fallback_statements": self.fallback_statements,
            "fallbacks": fallbacks,
            "fallback_hits": self.fallback_hits,
            "fused_kernels": len(self._trigger_kernels),
            "fused_statements": sum(k.fused_statements for k in kernels),
            "deduped_probes": sum(k.deduped_probes for k in kernels),
            "deduped_scalars": sum(k.deduped_scalars for k in kernels),
            "compile_seconds": self.compile_seconds,
            "fuse_seconds": self.fuse_seconds,
        }


class CompiledEngine(IncrementalEngine):
    """An incremental engine whose triggers run as generated Python code.

    Behaves exactly like :class:`IncrementalEngine` — same trigger program,
    same views, same ``kind: "single"`` checkpoint states (interchangeable in
    both directions) — but executes every fully-compilable trigger through a
    single fused kernel per event (``fuse=False`` keeps per-statement
    dispatch, the benchmark baseline).  Construction compiles; restore
    recompiles; the pickled trigger program is all a worker process needs to
    rebuild one.
    """

    def __init__(self, program: TriggerProgram, fuse: bool = True, telemetry=None) -> None:
        super().__init__(program, telemetry=telemetry)
        self._executor = CompiledExecutor(
            program,
            self.database,
            self.maps,
            maintained_relations=self._maintained,
            interpreter=self._executor,
            fuse=fuse,
        )
        # Re-derive instrument handles now that the executor has fused
        # kernels and codegen statistics to expose.
        self._init_telemetry()

    @property
    def codegen(self) -> CompiledExecutor:
        """The compiled executor (kernel inspection, codegen statistics)."""
        return self._executor

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Load a single-engine state, then rebind every compiled kernel.

        States never contain code objects (they are plain map/relation entry
        lists), so this works for states produced by any single engine —
        compiled, interpreted or batched.
        """
        super().restore_state(state)
        self._executor.rebind()

    def apply_delta_state(self, state: Mapping[str, Any]) -> None:
        """Apply a delta cut, then rebind kernels (same contract as restore)."""
        super().apply_delta_state(state)
        self._executor.rebind()

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        stats["codegen"] = self._executor.codegen_statistics()
        return stats

    def describe(self) -> str:
        # Key names here deliberately match codegen_statistics() / the bench
        # stats report, so grepping one name finds both surfaces.
        summary = self._executor.codegen_statistics()
        lines = [
            super().describe(),
            "-- codegen --",
            (
                f"  compiled_statements={summary['compiled_statements']} "
                f"fallback_statements={summary['fallback_statements']} "
                f"fallback_hits={summary['fallback_hits']}"
            ),
            (
                f"  fused_kernels={summary['fused_kernels']} "
                f"fused_statements={summary['fused_statements']} "
                f"deduped_probes={summary['deduped_probes']} "
                f"deduped_scalars={summary['deduped_scalars']}"
            ),
            (
                f"  compile_seconds={summary['compile_seconds']:.4f} "
                f"fuse_seconds={summary['fuse_seconds']:.4f}"
            ),
        ]
        for entry in summary["fallbacks"]:
            lines.append(f"  fallback {entry}")
        return "\n".join(lines)
