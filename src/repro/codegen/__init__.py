"""Trigger-program compilation to specialized Python code, in three stages.

The interpreter (:mod:`repro.runtime.interpreter`) walks the AGCA AST of every
statement on every event; that tree walk — context dictionaries, GMR
allocations, memo bookkeeping — dominates per-event cost.  This package
mirrors the paper's staged toolchain (calculus → trigger programs →
functional IR → target code) with an explicit **plan → IR → emit** pipeline:

* :mod:`repro.codegen.lowering` lowers scalar value expressions to Python
  expression source fragments;
* :mod:`repro.codegen.statement` **plans** whole trigger statements into the
  kernel IR of :mod:`repro.codegen.ir` — event loads, table-handle binds,
  primary/secondary/range probes, bucket loops, scalar ops, aggregate
  accumulators, sink merges — specialized on the statement's map schemas,
  trigger variables and access patterns;
* :mod:`repro.codegen.trigger` **fuses** the statement IRs of one
  (relation, op) trigger into a single function, hoisting shared event
  unpacks/table handles and deduplicating identical probe/condition subtrees
  across statements;
* :mod:`repro.codegen.emit` is the only place Python source is generated: it
  walks the IR once and renders the kernel, compiled via ``compile()``/``exec``;
* :mod:`repro.codegen.engine` ships :class:`CompiledEngine`, a drop-in
  :class:`~repro.runtime.protocol.EngineProtocol` implementation dispatching
  one fused kernel per event, with per-statement kernels and interpreter
  fallback for anything outside the compilable fragment, so results are
  always bit-identical.

``python -m repro.codegen dump <query>`` prints the generated kernel source
and IR operation counts.  See the "Codegen" section of DESIGN.md for the
lowering rules, the fusion/dedup rules and the fallback policy.
"""

from repro.codegen.engine import CompiledEngine, CompiledExecutor
from repro.codegen.statement import (
    StatementKernel,
    compile_scalar_kernel,
    try_compile_statement,
)
from repro.codegen.trigger import TriggerKernel, try_fuse_trigger

__all__ = [
    "CompiledEngine",
    "CompiledExecutor",
    "StatementKernel",
    "TriggerKernel",
    "compile_scalar_kernel",
    "try_compile_statement",
    "try_fuse_trigger",
]
