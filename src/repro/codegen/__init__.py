"""Trigger-program compilation to specialized Python code.

The interpreter (:mod:`repro.runtime.interpreter`) walks the AGCA AST of every
statement on every event; that tree walk — context dictionaries, GMR
allocations, memo bookkeeping — dominates per-event cost.  This package mirrors
the paper's code-generation stage with a Python source-emitting compiler:

* :mod:`repro.codegen.lowering` lowers scalar value expressions to Python
  expression source;
* :mod:`repro.codegen.statement` lowers whole trigger statements into
  straight-line functions specialized on the statement's map schemas, trigger
  variables and access patterns (direct dict probes for bound keys, secondary
  index scans for partial bindings, hoisted loop-invariant subexpressions),
  compiled once via ``compile()``/``exec``;
* :mod:`repro.codegen.engine` ships :class:`CompiledEngine`, a drop-in
  :class:`~repro.runtime.protocol.EngineProtocol` implementation that runs the
  compiled kernels and falls back to the interpreter — per statement — for
  anything outside the compilable fragment (external functions, nested
  aggregates, ``:=`` re-evaluation), so results are always bit-identical.

See the "Codegen" section of DESIGN.md for the lowering rules and the
fallback policy.
"""

from repro.codegen.engine import CompiledEngine, CompiledExecutor
from repro.codegen.statement import (
    StatementKernel,
    compile_scalar_kernel,
    try_compile_statement,
)

__all__ = [
    "CompiledEngine",
    "CompiledExecutor",
    "StatementKernel",
    "compile_scalar_kernel",
    "try_compile_statement",
]
