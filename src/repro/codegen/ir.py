"""The kernel IR: typed operations between statement planning and emission.

The codegen pipeline is staged — mirroring the paper's toolchain, which
lowers the delta calculus through intermediate trigger languages before
emitting target code:

1. **plan** (:mod:`repro.codegen.statement`): walk one trigger statement's
   AGCA expression and produce a tree of the node types in this module —
   event loads, table-handle method binds, primary/secondary/range probes,
   bucket loops, scalar ops, aggregate accumulators, sink merges;
2. **fuse** (:mod:`repro.codegen.trigger`): concatenate the statement IRs of
   one ``(relation, op)`` trigger, hoisting shared event unpacks and
   deduplicating identical probe/condition subtrees across statements;
3. **emit** (:mod:`repro.codegen.emit`): the only place Python source is
   generated — a single walk over the IR.

Nodes are deliberately *thin*: scalar expressions stay as Python expression
source fragments (produced by :mod:`repro.codegen.lowering` over named
locals), because AGCA value arithmetic is pure and maps 1:1 onto Python
expressions.  What the IR makes explicit is everything with *structure* —
control flow, abort scoping, table access shape, accumulation discipline —
which is exactly what fusion needs to reason about.

Every node carries a ``kind`` tag.  :func:`count_ops` aggregates them for
the ``python -m repro.codegen dump`` CLI and the fusion statistics, and
:func:`needs_scope` decides whether a fused statement body must be wrapped
in an abort scope (it contains top-level guards) or can run bare.
"""

from __future__ import annotations

from typing import Iterable


class Node:
    """Base class of every IR operation."""

    __slots__ = ()
    kind = ""
    #: Block nodes carry a ``body`` list and scope the abort statement.
    is_block = False


# ---------------------------------------------------------------------------
# Preamble operations
# ---------------------------------------------------------------------------


class EventLoad(Node):
    """``local = _values[index]`` — one positional trigger-variable load."""

    __slots__ = ("local", "index")
    kind = "event_load"

    def __init__(self, local: str, index: int) -> None:
        self.local = local
        self.index = index


class BindMethod(Node):
    """``local = handle.attr`` — hoist a bound method of a table handle."""

    __slots__ = ("local", "handle", "attr")
    kind = "bind_method"

    def __init__(self, local: str, handle: str, attr: str) -> None:
        self.local = local
        self.handle = handle
        self.attr = attr


# ---------------------------------------------------------------------------
# Scalar operations
# ---------------------------------------------------------------------------


class Let(Node):
    """``local = expr`` — a plain binding (products, dicts, lists, rows)."""

    __slots__ = ("local", "expr")
    kind = "let"

    def __init__(self, local: str, expr: str) -> None:
        self.local = local
        self.expr = expr


class Norm(Node):
    """``local = _norm(expr)`` — a normalized scalar value factor."""

    __slots__ = ("local", "expr")
    kind = "norm"

    def __init__(self, local: str, expr: str) -> None:
        self.local = local
        self.expr = expr


class NormOrZero(Node):
    """Lift-binding semantics: normalize, coercing zero-ish to the int ``0``."""

    __slots__ = ("local", "expr")
    kind = "lift_bind"

    def __init__(self, local: str, expr: str) -> None:
        self.local = local
        self.expr = expr


# ---------------------------------------------------------------------------
# Guards (the abort-emitting nodes)
# ---------------------------------------------------------------------------


class GuardCond(Node):
    """``if not expr: abort`` — a lowered comparison condition."""

    __slots__ = ("expr",)
    kind = "guard_cond"

    def __init__(self, expr: str) -> None:
        self.expr = expr


class GuardZero(Node):
    """``if _is_zero(expr): abort`` — zero deltas contribute nothing."""

    __slots__ = ("expr",)
    kind = "guard_zero"

    def __init__(self, expr: str) -> None:
        self.expr = expr


class GuardNone(Node):
    """``if local is None: abort`` — a missed primary probe."""

    __slots__ = ("local",)
    kind = "guard_none"

    def __init__(self, local: str) -> None:
        self.local = local


class GuardFalsy(Node):
    """``if not local: abort`` — a missed or empty index bucket."""

    __slots__ = ("local",)
    kind = "guard_falsy"

    def __init__(self, local: str) -> None:
        self.local = local


class GuardNotEq(Node):
    """``if left != right: abort`` — an equality-lift check."""

    __slots__ = ("left", "right")
    kind = "guard_eq"

    def __init__(self, left: str, right: str) -> None:
        self.left = left
        self.right = right


class FieldGuard(Node):
    """``if row._items[pos][1] != local: abort`` — in-row repeat equality."""

    __slots__ = ("row_local", "pos", "local")
    kind = "field_guard"

    def __init__(self, row_local: str, pos: int, local: str) -> None:
        self.row_local = row_local
        self.pos = pos
        self.local = local


#: Node kinds that emit the current abort statement.
ABORT_KINDS = frozenset(
    ("guard_cond", "guard_zero", "guard_none", "guard_falsy", "guard_eq", "field_guard")
)


# ---------------------------------------------------------------------------
# Table access
# ---------------------------------------------------------------------------


class Probe(Node):
    """``local = handle.primary.get(key_expr)`` — a bound-key primary probe."""

    __slots__ = ("local", "handle", "key_expr")
    kind = "primary_probe"

    def __init__(self, local: str, handle: str, key_expr: str) -> None:
        self.local = local
        self.handle = handle
        self.key_expr = key_expr


class DefaultZero(Node):
    """``if local is None: local = 0`` — a missed total probe reads as 0."""

    __slots__ = ("local",)
    kind = "default_zero"

    def __init__(self, local: str) -> None:
        self.local = local


class IndexProbe(Node):
    """``local = handle.index_for(colset).get(key_expr)`` — secondary probe."""

    __slots__ = ("local", "handle", "colset", "key_expr")
    kind = "index_probe"

    def __init__(self, local: str, handle: str, colset: str, key_expr: str) -> None:
        self.local = local
        self.handle = handle
        self.colset = colset
        self.key_expr = key_expr


class RangeProbe(Node):
    """``local = range_sum(column, op, cutoff, chain)`` — an ordered probe."""

    __slots__ = ("local", "probe_local", "column", "op", "cutoff_expr", "chain")
    kind = "range_probe"

    def __init__(
        self, local: str, probe_local: str, column: str, op: str,
        cutoff_expr: str, chain: bool,
    ) -> None:
        self.local = local
        self.probe_local = probe_local
        self.column = column
        self.op = op
        self.cutoff_expr = cutoff_expr
        self.chain = chain


class Extract(Node):
    """``local = row._items[pos][1]`` — positional unbound-variable read."""

    __slots__ = ("local", "row_local", "pos")
    kind = "extract"

    def __init__(self, local: str, row_local: str, pos: int) -> None:
        self.local = local
        self.row_local = row_local
        self.pos = pos


# ---------------------------------------------------------------------------
# Accumulators and sinks
# ---------------------------------------------------------------------------


class DictMerge(Node):
    """GMR ``add_tuple`` on a plain dict: add, drop on zero, normalize."""

    __slots__ = ("target", "key_local", "key_expr", "value_expr")
    kind = "dict_merge"

    def __init__(self, target: str, key_local: str, key_expr: str, value_expr: str) -> None:
        self.target = target
        self.key_local = key_local
        self.key_expr = key_expr
        self.value_expr = value_expr


class PlainMerge(Node):
    """``target[k] = target.get(k, 0) + value`` — the executor's plain grouping."""

    __slots__ = ("target", "key_local", "key_expr", "value_expr")
    kind = "plain_merge"

    def __init__(self, target: str, key_local: str, key_expr: str, value_expr: str) -> None:
        self.target = target
        self.key_local = key_local
        self.key_expr = key_expr
        self.value_expr = value_expr


class ListAppend(Node):
    """``target.append(expr)`` — buffer a pending (key, delta) pair."""

    __slots__ = ("target", "expr")
    kind = "append"

    def __init__(self, target: str, expr: str) -> None:
        self.target = target
        self.expr = expr


class AddDelta(Node):
    """``add(key, value[ * scale])`` — the sink merge into the target table.

    ``scale_var`` names the batch-scale local (the interpreter's semantics:
    scale applies after the per-row zero check); ``None`` pins scale to 1,
    which is the per-event fused path.
    """

    __slots__ = ("add_local", "key_expr", "value_expr", "scale_var")
    kind = "sink_add"

    def __init__(
        self, add_local: str, key_expr: str, value_expr: str, scale_var: str | None
    ) -> None:
        self.add_local = add_local
        self.key_expr = key_expr
        self.value_expr = value_expr
        self.scale_var = scale_var


class ChainAccum(Node):
    """One GMR aggregation-chain step: add, drop on zero, normalize."""

    __slots__ = ("result", "product_expr", "tmp_local")
    kind = "agg_chain"

    def __init__(self, result: str, product_expr: str, tmp_local: str) -> None:
        self.result = result
        self.product_expr = product_expr
        self.tmp_local = tmp_local


class PlainAccum(Node):
    """``result = result + _norm(product)`` — Exists' plain summation."""

    __slots__ = ("result", "product_expr")
    kind = "agg_plain"

    def __init__(self, result: str, product_expr: str) -> None:
        self.result = result
        self.product_expr = product_expr


class Replace(Node):
    """``handle.replace(arg_expr)`` — the ``:=`` statement's final store."""

    __slots__ = ("handle", "arg_expr")
    kind = "replace"

    def __init__(self, handle: str, arg_expr: str) -> None:
        self.handle = handle
        self.arg_expr = arg_expr


class ExprStmt(Node):
    """``expr`` as a bare statement (e.g. the fused base-relation apply)."""

    __slots__ = ("expr",)
    kind = "stmt"

    def __init__(self, expr: str) -> None:
        self.expr = expr


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------


class OnePass(Node):
    """``for var in _ONE_PASS:`` — an abort scope (abort becomes ``break``)."""

    __slots__ = ("var", "body")
    kind = "scope"
    is_block = True

    def __init__(self, var: str, body: list[Node]) -> None:
        self.var = var
        self.body = body


class FullScan(Node):
    """``for row, mult in handle.primary.items():`` — an unbound atom scan."""

    __slots__ = ("row_local", "mult_local", "handle", "body")
    kind = "full_scan"
    is_block = True

    def __init__(self, row_local: str, mult_local: str, handle: str, body: list[Node]) -> None:
        self.row_local = row_local
        self.mult_local = mult_local
        self.handle = handle
        self.body = body


class ItemsLoop(Node):
    """``for k, v in subject.items():`` — bucket / accumulator iteration."""

    __slots__ = ("key_local", "value_local", "subject", "body")
    kind = "items_loop"
    is_block = True

    def __init__(self, key_local: str, value_local: str, subject: str, body: list[Node]) -> None:
        self.key_local = key_local
        self.value_local = value_local
        self.subject = subject
        self.body = body


class PairLoop(Node):
    """``for k, v in subject:`` — iterate a list of pairs (pending sinks)."""

    __slots__ = ("key_local", "value_local", "subject", "body")
    kind = "pair_loop"
    is_block = True

    def __init__(self, key_local: str, value_local: str, subject: str, body: list[Node]) -> None:
        self.key_local = key_local
        self.value_local = value_local
        self.subject = subject
        self.body = body


class Branch(Node):
    """``if cond: ... elif cond: ...`` — the merge epilogue's colset dispatch.

    ``cases`` is a list of ``(condition_source, body)`` pairs; the first case
    emits ``if``, the rest ``elif``.  Branch bodies share the *enclosing*
    abort scope (no abort of their own).
    """

    __slots__ = ("cases",)
    kind = "branch"
    is_block = True

    def __init__(self, cases: list[tuple[str, list[Node]]]) -> None:
        self.cases = cases

    @property
    def body(self) -> list[Node]:  # uniform traversal surface
        out: list[Node] = []
        for _, nodes in self.cases:
            out.extend(nodes)
        return out


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


def walk(nodes: Iterable[Node]):
    """Yield every node in the tree, pre-order (``None`` slots are skipped)."""
    for node in nodes:
        if node is None:  # a fused-away (hoisted) slot
            continue
        yield node
        if node.is_block:
            yield from walk(node.body)


def count_ops(nodes: Iterable[Node]) -> dict[str, int]:
    """IR operation counts by kind (the ``dump`` CLI's summary line)."""
    counts: dict[str, int] = {}
    for node in walk(nodes):
        counts[node.kind] = counts.get(node.kind, 0) + 1
    return dict(sorted(counts.items()))


def needs_scope(nodes: Iterable[Node]) -> bool:
    """True when a fused statement body must run inside an abort scope.

    A top-level guard aborts the *statement*; in a fused kernel that must
    not abort the sibling statements, so such bodies are wrapped in a
    one-pass loop.  Guards inside loops or one-pass wrappers already abort
    locally.  ``Branch`` bodies share the enclosing scope and are searched.
    """
    for node in nodes:
        if node is None:
            continue
        if node.kind in ABORT_KINDS:
            return True
        if isinstance(node, Branch) and needs_scope(node.body):
            return True
    return False
