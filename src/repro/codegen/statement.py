"""Plan trigger statements into kernel IR (stage 1 of the codegen pipeline).

One ``+=`` statement becomes one IR tree (:mod:`repro.codegen.ir`) describing
a specialized function ``_kernel(_values, _scale)`` over the event's field
values (positionally, no bindings dictionary) and the batch scale factor.
This module *plans* — it decides access paths, hoisting slots and
accumulation discipline — and produces IR nodes; it never generates Python
source.  :mod:`repro.codegen.emit` renders the IR, and
:mod:`repro.codegen.trigger` fuses the statement IRs of one trigger into a
single function.  The plan is specialized on everything the compiler knows
statically:

* **trigger variables** load positionally from the event tuple — only the
  ones the statement uses;
* **bound-key map/relation accesses** become direct probes of the backing
  :class:`~repro.runtime.maps.IndexedTable` primary dictionary, with the key
  :class:`~repro.core.rows.Row` built via the trusted sorted-items
  constructor (column sort order is resolved at compile time);
* **partially-bound accesses** probe the table's secondary hash index for the
  bound column subset and loop over the bucket; unbound variables read their
  values out of the key row by precomputed position;
* **scalar conditions and value factors** are lowered to plain Python and
  *hoisted* to the outermost point where their variables are bound, so a
  trigger-variable condition guards the whole statement instead of being
  re-checked per scanned row (hoisting is the one visible deviation from the
  interpreter: a hoisted condition is evaluated even when the scan it guards
  turns out empty, so an ill-typed comparison can raise where the
  interpreter's per-row evaluation would never have reached it — harmless
  for well-typed programs, which the SQL frontend guarantees);
* the **accumulated delta** multiplies factors in the statement's term order
  and applies the interpreter's exact zero-dropping and number-normalization
  rules, so compiled results are bit-identical to interpreted ones — values
  *and* types.

Beyond the straight-line ``+=`` fragment, the planner also lowers the
statement classes that used to be interpreter-only:

* **nested scalar aggregates** — ``AggSum([], ...)`` bodies appearing as lift
  bodies or product factors plan as (a) a primary-dict probe for nullary
  map totals, (b) an **ordered range probe**
  (:meth:`~repro.runtime.maps.IndexedTable.range_sum`) when the body is a map
  atom guarded by a single ordering comparison on one key column — the
  ``SUM(volume) WHERE price > p`` shape of the financial queries — or (c) an
  inline scan loop reproducing the evaluator's aggregation chain exactly;
* **grouped aggregate factors** — ``AggSum([g], ...)`` inside a product
  plans as a dict-accumulation loop followed by iteration, replicating
  GMR construction order;
* **``Exists``** factors plan as the plain-sum total-multiplicity loop
  (or a range probe) with the 0/1 gate;
* **``:=`` statements** plan as a kernel that evaluates the right-hand
  side into a plain dict (GMR ``+``-merge across sum terms, then the
  executor's plain grouping by target keys, both in enumeration order) and
  hands it to ``IndexedTable.replace`` — exactly ``execute_assign``.

Exact-equivalence notes (each mirrors a specific interpreter behaviour):

* a ``Value`` factor contributes ``normalize_number(v)`` and kills the row
  when ``is_zero(v)`` (the evaluator stores scalars into a GMR, which
  normalizes and drops zeros);
* a ``Lift`` over a value binds ``normalize_number(v)`` — coerced to the
  integer ``0`` when zero-ish — because the evaluator reads the lifted value
  back out of a GMR (``scalar_value() if inner else 0``);
* the final per-row delta is zero-checked *before* the batch scale is
  applied (the evaluator's result GMR drops zero rows before the executor
  scales them);
* a top-level ``AggSum`` groups deltas in enumeration order with the GMR's
  add/normalize/drop-on-zero rule before anything touches the target map,
  and a top-level ``Sum`` merges its terms' result rows the same way —
  reproducing the interpreter's floating-point addition order exactly;
* rows are enumerated in the same order as the evaluator (scan order of the
  primary dictionary / index buckets, product terms left to right), so
  same-key map additions happen in the same order.

The **capability check** is the compile attempt itself: any construct outside
the fragment — external functions (by policy), sums nested under products,
lifts over grouped aggregates, unbound value variables — raises
:class:`~repro.codegen.lowering.Unsupported` and the statement stays on the
interpreter.  Fallback is per statement, never per program, so one hard
statement does not slow down its siblings.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Exists,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VConst,
    VVar,
    free_variables,
    value_variables,
)
from repro.codegen import ir
from repro.codegen.emit import emit_function
from repro.codegen.lowering import (
    SourceEnv,
    Unsupported,
    const_source,
    lower_condition,
    lower_value,
)
from repro.core.values import RANGE_OPS, flip_comparison
from repro.compiler.program import ASSIGN, INCREMENT, Statement, TriggerProgram
from repro.core.rows import Row
from repro.core.values import div, is_zero, normalize_number

_BASE_ENV = {
    "_is_zero": is_zero,
    "_norm": normalize_number,
    "_div": div,
    "_Row": Row.from_sorted_items,
    "_EMPTY_ROW": Row(),
    "_ONE_PASS": (0,),
}


class KernelContext:
    """Shared allocator and namespace for one generated kernel.

    A standalone statement kernel owns a fresh context; a fused trigger
    kernel (:mod:`repro.codegen.trigger`) threads *one* context through every
    statement it concatenates, which is what makes event unpacks, table
    handles and bound-method hoists shared across statements, and local
    names collision-free.  ``dedup`` (optional, set by the fuser) is the
    :class:`~repro.codegen.trigger.FusionCache` the planner consults for
    cross-statement sharing of top-level probes, conditions, value factors
    and row builds whose inputs are trigger variables only.
    """

    __slots__ = (
        "env", "tables", "event_loads", "method_binds", "trigger_vars",
        "trigger_local_names", "dedup",
        "_table_handles", "_method_locals", "_trigger_locals", "_counter",
    )

    def __init__(self, trigger_vars: Sequence[str], dedup: Any = None) -> None:
        self.env = SourceEnv(_BASE_ENV)
        self.tables: list[tuple[str, str, str]] = []
        self.event_loads: list[ir.Node] = []
        self.method_binds: list[ir.Node] = []
        self.trigger_vars = tuple(trigger_vars)
        self.trigger_local_names: set[str] = set()
        self.dedup = dedup
        self._table_handles: dict[tuple[str, str], str] = {}
        self._method_locals: dict[tuple[str, str], str] = {}
        self._trigger_locals: dict[int, str] = {}
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        return name

    def trigger_local(self, index: int) -> str:
        """The local holding one event position, adding its load on first use.

        Keyed by *position*, not name: sibling statements of one trigger may
        carry different trigger-variable names for the same event field
        (``fresh_trigger_vars`` suffixes names that collide with a map
        definition), and position is what identifies the value — which also
        keeps cross-statement dedup working across such renames.
        """
        local = self._trigger_locals.get(index)
        if local is None:
            local = f"_v{index}"
            self._trigger_locals[index] = local
            self.trigger_local_names.add(local)
            self.event_loads.append(ir.EventLoad(local, index))
        return local

    def table_handle(self, kind: str, name: str) -> str:
        """The namespace global bound to one map/relation table at link time."""
        handle = self._table_handles.get((kind, name))
        if handle is None:
            handle = self.fresh("t")
            self._table_handles[(kind, name)] = handle
            self.tables.append((handle, kind, name))
        return handle

    def method_local(self, handle: str, attr: str, prefix: str) -> str:
        """A preamble binding of one table method (``add``, ``range_sum``)."""
        local = self._method_locals.get((handle, attr))
        if local is None:
            local = self.fresh(prefix)
            self._method_locals[(handle, attr)] = local
            self.method_binds.append(ir.BindMethod(local, handle, attr))
        return local

    def preamble(self) -> list[ir.Node]:
        """Event loads then method binds — the head of every kernel body."""
        return [*self.event_loads, *self.method_binds]


class StatementKernel:
    """One trigger statement compiled to a specialized Python function.

    ``source`` holds the generated code (kept for tests, ``describe()`` and
    debugging) and ``ir_ops`` the IR operation counts the source was emitted
    from; :meth:`bind` links it against a concrete map store / database
    and returns the runnable ``(values, scale)`` closure.  The code object is
    compiled once and can be bound any number of times (each engine, and each
    restore, gets fresh bindings), so pickled engine state never needs to
    carry code objects — restoring recompiles/rebinds instead.
    """

    __slots__ = ("statement", "source", "ir_ops", "_code", "_env", "_tables")

    def __init__(
        self,
        statement: Statement,
        source: str,
        env: dict[str, Any],
        tables: Sequence[tuple[str, str, str]],
        ir_ops: Mapping[str, int] | None = None,
    ) -> None:
        self.statement = statement
        self.source = source
        self.ir_ops = dict(ir_ops or {})
        self._code = compile(source, f"<repro.codegen:{statement.target}>", "exec")
        self._env = env
        self._tables = tuple(tables)

    def bind(self, maps, database) -> Callable[[tuple, Any], None]:
        """Link the kernel against live tables; returns ``run(values, scale)``."""
        namespace = dict(self._env)
        for handle, kind, name in self._tables:
            namespace[handle] = (
                maps.table(name) if kind == "map" else database.table(name)
            )
        exec(self._code, namespace)
        return namespace["_kernel"]


# ---------------------------------------------------------------------------
# Term planning
# ---------------------------------------------------------------------------


class _AtomStep:
    """A relation/map access: probe when fully bound, scan loop otherwise."""

    __slots__ = (
        "kind", "name", "stored", "sorted_stored", "bound", "unbound",
        "eq_checks", "mult_local", "row_local", "index", "reused", "dedup_key",
    )

    def __init__(self) -> None:
        self.bound: list[tuple[str, str]] = []          # (stored column, local)
        self.unbound: list[tuple[str, int, str]] = []   # (var, sorted pos, local)
        self.eq_checks: list[tuple[int, str]] = []      # (sorted pos, local)
        self.index: int = 0                             # 1-based atom index
        self.reused = False               # fused: probe shared with an earlier def
        self.dedup_key: tuple | None = None  # fused: reserved cache key


class _ScalarStep:
    """A Value / Cmp / Lift / nested-aggregate step with its hoisting slot."""

    __slots__ = (
        "kind", "source", "local", "slot", "check_var", "spec",
        "reused", "dedup_key",
    )

    def __init__(self, kind: str, slot: int) -> None:
        self.kind = kind
        self.slot = slot
        self.source = ""
        self.local = ""
        self.check_var = ""
        self.spec: "_AggSpec | None" = None
        self.reused = False               # fused: the local is a shared def
        self.dedup_key: tuple | None = None  # fused: reserved cache key


class _AggSpec:
    """One nested scalar aggregate: how to compute it and where it lands.

    ``mode`` selects the lowering: ``"total"`` (nullary map: one primary-dict
    probe), ``"probe"`` (ordered range probe via ``IndexedTable.range_sum``,
    optionally after prelude lift bindings feeding the cutoff) or ``"loop"``
    (inline scan replicating the evaluator's aggregation chain over a
    sub-plan).  ``chain`` distinguishes the ``AggSum`` chain semantics from
    the plain summation of ``Exists``.
    """

    __slots__ = (
        "mode", "chain", "result", "handle", "probe", "column", "op",
        "cutoff", "prelude", "plan",
    )

    def __init__(self, result: str, chain: bool) -> None:
        self.mode = ""
        self.chain = chain
        self.result = result
        self.handle = ""
        self.probe = ""
        self.column = ""
        self.op = ""
        self.cutoff = ""
        self.prelude: list[tuple] = []
        self.plan: "_TermPlan | None" = None


class _GroupAggStep:
    """A grouped ``AggSum`` factor: accumulate a dict, then loop over it.

    Sits in the term plan's atom sequence (it opens a loop and binds the
    inner-produced group variables, exactly like a scan does).  ``unbound``
    mirrors the atom tuple shape so the hoisting logic treats the bound
    group variables uniformly.
    """

    __slots__ = ("plan", "group", "dict_local", "mult_local", "unbound", "key_sources")

    def __init__(self) -> None:
        self.plan: "_TermPlan | None" = None
        self.group: tuple[str, ...] = ()
        self.dict_local = ""
        self.mult_local = ""
        self.unbound: list[tuple[str, int, str]] = []  # (var, key tuple pos, local)
        self.key_sources: list[str] = []               # per group var, inner source


class _TermPlan:
    """Plan of one product term: ordered steps, factors, produced columns."""

    __slots__ = ("steps", "atoms", "factors", "colset", "names", "dead")

    def __init__(self) -> None:
        self.steps: list[Any] = []
        self.atoms: list[Any] = []
        self.factors: list[str] = []
        self.colset: set[str] = set()
        self.names: dict[str, str] = {}
        self.dead = False


class _StatementCompiler:
    """Plans one statement into IR nodes (stage 1: plan; stage 3 emits).

    ``context`` is owned when compiling standalone and shared when the fuser
    compiles a whole trigger; ``scale_var`` names the batch-scale parameter
    (``None`` pins scale to 1 — the fused per-event path, which drops the
    per-sink scale branch entirely).
    """

    def __init__(
        self,
        statement: Statement,
        program: TriggerProgram,
        context: KernelContext | None = None,
        scale_var: str | None = "_scale",
    ) -> None:
        self.statement = statement
        self.program = program
        self.ctx = context if context is not None else KernelContext(
            statement.event.trigger_vars
        )
        self.scale_var = scale_var
        self._maintained = program.requires_base_relations()

    # -- small allocators ---------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        return self.ctx.fresh(prefix)

    def _trigger_local(self, var: str) -> str:
        # Resolve the name against this statement's own event; the context
        # local is positional, shared across differently-named siblings.
        return self.ctx.trigger_local(self.statement.event.trigger_vars.index(var))

    def _table_handle(self, kind: str, name: str) -> str:
        return self.ctx.table_handle(kind, name)

    def _probe_local(self, kind: str, name: str) -> str:
        """A kernel-preamble binding of the table's ``range_sum`` method."""
        handle = self._table_handle(kind, name)
        return self.ctx.method_local(handle, "range_sum", "rs")

    def _root_resolve(self, var: str) -> str | None:
        """Outermost scope: only the trigger variables are bound."""
        if var in self.statement.event.trigger_vars:
            return self._trigger_local(var)
        return None

    def _dedup_eligible(self, depth: int, slot: int, dep_locals) -> bool:
        """True when a planned step may share across fused statements.

        Sharing moves the computation into the fused kernel's prefix, which
        runs before every statement — so only statement-top-level steps
        (depth 0, hoisting slot 0) whose inputs are trigger locals qualify.
        """
        return (
            self.ctx.dedup is not None
            and depth == 0
            and slot == 0
            and frozenset(dep_locals) <= self.ctx.trigger_local_names
        )

    def _attach(self, key: tuple | None, node: ir.Node, nodes: list[ir.Node]) -> None:
        """Bind a reserved dedup definition to the node just appended."""
        if key is not None:
            self.ctx.dedup.attach(key, node, nodes, len(nodes) - 1)

    # -- planning -----------------------------------------------------------
    def compile(self) -> list[ir.Node]:
        """Plan the statement; returns its kernel body as IR nodes."""
        statement = self.statement
        target_decl = self.program.maps.get(statement.target)
        if target_decl is None or len(target_decl.keys) != len(statement.target_keys):
            raise Unsupported("target map is not declared with matching arity")
        if statement.operation == ASSIGN:
            return self._compile_assign()
        if statement.operation != INCREMENT:
            raise Unsupported(f"unknown statement operation {statement.operation!r}")
        return self._compile_increment()

    def _split_terms(self) -> tuple[tuple[str, ...] | None, tuple[Expr, ...]]:
        expr: Expr = self.statement.expr
        group: tuple[str, ...] | None = None
        if isinstance(expr, AggSum):
            group = expr.group
            expr = expr.term
            if isinstance(expr, (AggSum, Sum)):
                raise Unsupported("nested aggregation under a top-level AggSum")
        terms = expr.terms if isinstance(expr, Sum) else (expr,)
        if not terms:
            raise Unsupported("empty sum")
        return group, terms

    def _compile_increment(self) -> list[ir.Node]:
        statement = self.statement
        group, terms = self._split_terms()

        plans = [self._plan_term(term) for term in terms]
        live = [plan for plan in plans if not plan.dead]

        reads_target = statement.target in statement.reads_maps()
        if group is not None:
            mode = "group"
        elif len(terms) > 1:
            mode = "merge"
        elif reads_target:
            mode = "pending"
        else:
            mode = "direct"

        # Resolve target-key sources up front so unsupported statements fall
        # back before any IR is built.
        self._check_key_sources(live, group, mode)

        body: list[ir.Node] = []
        merge_local = group_local = pending_local = ""
        if mode == "merge":
            merge_local = self._fresh("mrg")
            body.append(ir.Let(merge_local, "{}"))
        elif mode == "group":
            group_local = self._fresh("grp")
            body.append(ir.Let(group_local, "{}"))
        elif mode == "pending":
            pending_local = self._fresh("pend")
            body.append(ir.Let(pending_local, "[]"))
        target_handle = self._table_handle("map", statement.target)
        add_local = self.ctx.method_local(target_handle, "add", "add")

        colset_ids: dict[frozenset[str], int] = {}
        for plan in live:
            colset_ids.setdefault(frozenset(plan.colset), len(colset_ids))

        def sink(nodes: list[ir.Node], plan: _TermPlan) -> None:
            self._emit_sink(
                nodes, plan, mode, group, colset_ids,
                add_local, merge_local, group_local, pending_local,
            )

        wrap = len(live) > 1
        for plan in plans:
            if plan.dead:
                continue
            if wrap:
                scope_body: list[ir.Node] = []
                body.append(ir.OnePass(self._fresh("w"), scope_body))
                self._emit_term(scope_body, plan, sink)
            else:
                self._emit_term(body, plan, sink)

        def add_sink(key: str, mult: str) -> ir.Node:
            return ir.AddDelta(add_local, key, mult, self.scale_var)

        if mode == "merge":
            self._emit_merge_epilogue(body, live, colset_ids, merge_local, add_sink)
        elif mode == "group":
            self._emit_group_epilogue(body, live[0] if live else None, group,
                                      group_local, add_sink)
        elif mode == "pending":
            kr, m = self._fresh("kr"), self._fresh("m")
            body.append(ir.PairLoop(kr, m, pending_local, [
                ir.AddDelta(add_local, kr, m, self.scale_var)
            ]))
        return body

    def _compile_assign(self) -> list[ir.Node]:
        """Plan a ``:=`` statement: evaluate, group plainly, ``replace``.

        The kernel mirrors ``TriggerExecutor.execute_assign`` step for step:
        the right-hand side is evaluated into result rows (a chain-merged
        dict across sum terms, exactly GMR ``+``), those rows are grouped by
        the target keys with *plain* addition in enumeration order, and the
        grouped entries replace the target table's contents.  Aborts inside a
        term only skip that term — an empty result still replaces (clears)
        the map, as the interpreter does.
        """
        statement = self.statement
        group, terms = self._split_terms()

        plans = [self._plan_term(term) for term in terms]
        live = [plan for plan in plans if not plan.dead]

        if group is not None:
            mode = "group"
        elif len(terms) > 1:
            mode = "merge"
        else:
            mode = "single"
        self._check_key_sources(live, group, "group" if group is not None else mode)

        body: list[ir.Node] = []
        target_handle = self._table_handle("map", statement.target)
        assign_local = self._fresh("asn")
        body.append(ir.Let(assign_local, "{}"))
        merge_local = group_local = ""
        if mode == "merge":
            merge_local = self._fresh("mrg")
            body.append(ir.Let(merge_local, "{}"))
        elif mode == "group":
            group_local = self._fresh("grp")
            body.append(ir.Let(group_local, "{}"))

        colset_ids: dict[frozenset[str], int] = {}
        for plan in live:
            colset_ids.setdefault(frozenset(plan.colset), len(colset_ids))

        def single_sink(nodes: list[ir.Node], plan: _TermPlan) -> None:
            acc = self._emit_acc(nodes, plan)
            key = self._target_row_source(lambda k: self._value_for(k, plan))
            nodes.append(ir.PlainMerge(assign_local, self._fresh("kr"), key, acc))

        def merge_sink(nodes: list[ir.Node], plan: _TermPlan) -> None:
            acc = self._emit_acc(nodes, plan)
            nodes.append(ir.DictMerge(
                merge_local, self._fresh("k"),
                self._merge_key_tuple(plan, colset_ids), acc,
            ))

        def group_sink(nodes: list[ir.Node], plan: _TermPlan) -> None:
            acc = self._emit_acc(nodes, plan)
            nodes.append(ir.DictMerge(
                group_local, self._fresh("k"), self._group_key_tuple(plan, group), acc,
            ))

        sink = {"single": single_sink, "merge": merge_sink, "group": group_sink}[mode]
        for plan in plans:
            if plan.dead:
                continue
            # Always scope term aborts: a dead term must still reach replace.
            scope_body: list[ir.Node] = []
            body.append(ir.OnePass(self._fresh("w"), scope_body))
            self._emit_term(scope_body, plan, sink)

        def plain_sink(key: str, mult: str) -> ir.Node:
            return ir.PlainMerge(assign_local, self._fresh("kr"), key, mult)

        if mode == "merge":
            self._emit_merge_epilogue(body, live, colset_ids, merge_local, plain_sink)
        elif mode == "group":
            self._emit_group_epilogue(body, live[0] if live else None, group,
                                      group_local, plain_sink)
        body.append(ir.Replace(target_handle, f"{assign_local}.items()"))
        return body

    def _check_key_sources(self, plans, group, mode) -> None:
        trigger_vars = set(self.statement.event.trigger_vars)
        for key in self.statement.target_keys:
            if key in trigger_vars:
                continue
            if mode == "group":
                if group is not None and key in group:
                    continue
                raise Unsupported(f"target key {key!r} outside group and trigger vars")
            for plan in plans:
                if key not in plan.colset:
                    raise Unsupported(f"target key {key!r} not produced by every term")
        if group is not None and plans:
            plan = plans[0]
            for g in group:
                if g not in plan.colset and g not in trigger_vars:
                    raise Unsupported(f"group variable {g!r} is neither produced nor bound")

    def _plan_term(self, term: Expr, resolve=None, depth: int = 0) -> _TermPlan:
        """Plan one product term.

        ``resolve`` maps variables of the *enclosing* scope to their locals
        (``None`` outside: only trigger variables); a nested aggregate's term
        is planned with a resolver chaining through the enclosing term's
        bindings, which is exactly the evaluator's sideways information
        passing.  ``depth`` bounds recursion: grouped aggregate factors only
        compile at the statement's top level.
        """
        plan = _TermPlan()
        bound: dict[str, str] = {}
        # Dedup keys this term reserved: evicted if the term goes dead (a
        # dead term emits no IR, so its reservations must not be reusable).
        reserved: list[tuple] = []
        if resolve is None:
            resolve = self._root_resolve

        def lookup(var: str) -> str | None:
            local = bound.get(var)
            if local is not None:
                return local
            return resolve(var)

        def names_for(vars_needed) -> dict[str, str]:
            out = {}
            for var in vars_needed:
                local = lookup(var)
                if local is None:
                    raise Unsupported(f"variable {var!r} is not bound at this point")
                out[var] = local
            return out

        def child_resolve_for(deps: set[str]):
            """Resolver handed to a nested aggregate, recording what it uses."""

            def child_resolve(var: str) -> str | None:
                local = lookup(var)
                if local is not None:
                    deps.add(var)
                return local

            return child_resolve

        factors = term.terms if isinstance(term, Product) else (term,)
        for node in factors:
            if isinstance(node, Product):
                raise Unsupported("nested product")
            if isinstance(node, Value):
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        if reserved and self.ctx.dedup is not None:
                            self.ctx.dedup.discard(reserved)
                        plan.dead = True
                        return plan
                    if const == 1 and not isinstance(const, float):
                        continue
                    plan.factors.append(const_source(const, self.ctx.env))
                    continue
                deps = value_variables(node.vexpr)
                step = _ScalarStep("value", self._slot_for(deps, bound, plan))
                names = names_for(deps)
                step.source = lower_value(node.vexpr, names, self.ctx.env)
                if self._dedup_eligible(depth, step.slot, names.values()):
                    key = ("norm", step.source)
                    shared = self.ctx.dedup.reuse(key)
                    if shared is not None:
                        step.local = shared
                        step.reused = True
                    else:
                        step.local = self._fresh("s")
                        step.dedup_key = self.ctx.dedup.reserve(key, step.local)
                        if step.dedup_key is not None:
                            reserved.append(step.dedup_key)
                else:
                    step.local = self._fresh("s")
                plan.steps.append(step)
                plan.factors.append(step.local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                step = _ScalarStep("cmp", self._slot_for(deps, bound, plan))
                names = names_for(deps)
                step.source = lower_condition(
                    node.left, node.op, node.right, names, self.ctx.env
                )
                if self._dedup_eligible(depth, step.slot, names.values()):
                    key = ("cond", step.source)
                    shared = self.ctx.dedup.reuse_condition(key, self.ctx.fresh)
                    if shared is not None:
                        step.source = shared  # guard the shared prefix local
                    else:
                        step.dedup_key = self.ctx.dedup.reserve_condition(key)
                        reserved.append(step.dedup_key)
                plan.steps.append(step)
            elif isinstance(node, Lift):
                already = lookup(node.var) is not None
                if isinstance(node.term, Value):
                    deps = value_variables(node.term.vexpr)
                    # An equality lift also depends on the variable it checks.
                    slot_deps = deps | ({node.var} if already else set())
                    slot = self._slot_for(slot_deps, bound, plan)
                    step = _ScalarStep("lift_eq" if already else "lift_bind", slot)
                    names = names_for(deps)
                    step.source = lower_value(node.term.vexpr, names, self.ctx.env)
                    if already:
                        step.check_var = lookup(node.var)
                    else:
                        if self._dedup_eligible(depth, slot, names.values()):
                            key = ("lift", step.source)
                            shared = self.ctx.dedup.reuse(key)
                            if shared is not None:
                                step.local = shared
                                step.reused = True
                            else:
                                step.local = self._fresh("b")
                                step.dedup_key = self.ctx.dedup.reserve(key, step.local)
                                if step.dedup_key is not None:
                                    reserved.append(step.dedup_key)
                        else:
                            step.local = self._fresh("b")
                        bound[node.var] = step.local
                        plan.colset.add(node.var)
                    plan.steps.append(step)
                elif isinstance(node.term, AggSum) and not node.term.group:
                    deps: set[str] = set()
                    spec = self._plan_scalar_agg(
                        node.term.term, child_resolve_for(deps), True, depth
                    )
                    slot_deps = deps | ({node.var} if already else set())
                    slot = self._slot_for(slot_deps, bound, plan)
                    step = _ScalarStep("lift_agg_eq" if already else "lift_agg", slot)
                    step.spec = spec
                    step.local = spec.result
                    if already:
                        step.check_var = lookup(node.var)
                    else:
                        bound[node.var] = spec.result
                        plan.colset.add(node.var)
                    plan.steps.append(step)
                else:
                    raise Unsupported("lift over a non-scalar body")
            elif isinstance(node, AggSum):
                if node.group:
                    if depth > 0:
                        raise Unsupported("grouped aggregate below the top level")
                    step = self._plan_group_agg(node, bound, plan, child_resolve_for)
                    plan.steps.append(step)
                    plan.atoms.append(step)
                    plan.factors.append(step.mult_local)
                else:
                    deps = set()
                    spec = self._plan_scalar_agg(
                        node.term, child_resolve_for(deps), True, depth
                    )
                    step = _ScalarStep("agg_factor", self._slot_for(deps, bound, plan))
                    step.spec = spec
                    step.local = spec.result
                    plan.steps.append(step)
                    plan.factors.append(spec.result)
            elif isinstance(node, Exists):
                deps = set()
                spec = self._plan_scalar_agg(
                    node.term, child_resolve_for(deps), False, depth
                )
                step = _ScalarStep("exists", self._slot_for(deps, bound, plan))
                step.spec = spec
                plan.steps.append(step)
            elif isinstance(node, (MapRef, Relation)):
                # A probe may share across fused statements only when it is
                # emitted before any loop opens: every preceding atom must be
                # a loop-free probe itself.
                dedup_ok = depth == 0 and all(
                    isinstance(a, _AtomStep) and not a.unbound and not a.eq_checks
                    for a in plan.atoms
                )
                atom = self._plan_atom(node, bound, plan, resolve, dedup_ok, reserved)
                plan.steps.append(atom)
                plan.atoms.append(atom)
                plan.factors.append(atom.mult_local)
            else:
                raise Unsupported(f"unsupported construct {type(node).__name__}")
        plan.names = dict(bound)
        return plan

    def _slot_for(self, deps, bound, plan) -> int:
        slot = 0
        for var in deps:
            local = bound.get(var)
            if local is None:
                continue  # trigger or enclosing-scope variable: slot 0
            for index, atom in enumerate(plan.atoms, start=1):
                if any(v == var for v, _, _ in atom.unbound):
                    slot = max(slot, index)
        # Lift-bound variables: find the step that defined them.
        for step in plan.steps:
            if isinstance(step, _ScalarStep) and step.kind in ("lift_bind", "lift_agg"):
                var = next((v for v, l in bound.items() if l == step.local), None)
                if var in deps:
                    slot = max(slot, step.slot)
        return slot

    def _plan_scalar_agg(self, term: Expr, resolve, chain: bool, depth: int) -> _AggSpec:
        """Plan ``AggSum([], term)`` (or an ``Exists`` body, ``chain=False``).

        Picks the cheapest faithful lowering: a nullary-map total probe, an
        ordered range probe for the guarded single-atom shape, or an inline
        scan loop over a recursively planned sub-term.
        """
        spec = _AggSpec(self._fresh("g"), chain)
        factors = term.terms if isinstance(term, Product) else (term,)
        if (
            len(factors) == 1
            and isinstance(factors[0], MapRef)
            and not factors[0].keys
            and chain
        ):
            decl = self.program.maps.get(factors[0].name)
            if decl is not None and not decl.keys:
                spec.mode = "total"
                spec.handle = self._table_handle("map", factors[0].name)
                return spec
        if self._try_plan_probe(spec, factors, resolve, depth):
            return spec
        spec.mode = "loop"
        spec.plan = self._plan_term(term, resolve=resolve, depth=depth + 1)
        return spec

    def _try_plan_probe(self, spec: _AggSpec, factors, resolve, depth: int) -> bool:
        """Recognize ``M[..k..] * (lifts...) * {k op c}`` and plan a range probe.

        The lifts may only bind scalar values feeding the cutoff (the PSP
        shape ``M1[v] * (s := Sum[](M3[])) * {v > 0.0001*s}``); every atom key
        must be free here and untouched by anything but the single guard.
        """
        if len(factors) < 2:
            return False
        atom = factors[0]
        guard_cmp = factors[-1]
        middle = factors[1:-1]
        if not isinstance(atom, MapRef) or not isinstance(guard_cmp, Cmp):
            return False
        keys = atom.keys
        keyset = set(keys)
        if not keys or len(keyset) != len(keys):
            return False
        decl = self.program.maps.get(atom.name)
        if decl is None or len(decl.keys) != len(keys):
            return False
        for key in keys:
            if resolve(key) is not None:
                return False  # bound key: a filtered scan, not a full range
        if not all(isinstance(f, Lift) for f in middle):
            return False

        lift_locals: dict[str, str] = {}
        prelude: list[tuple] = []

        def probe_names(vars_needed) -> dict[str, str] | None:
            out = {}
            for var in vars_needed:
                local = lift_locals.get(var)
                if local is None:
                    if var in keyset:
                        return None
                    local = resolve(var)
                if local is None:
                    return None
                out[var] = local
            return out

        for lift in middle:
            if lift.var in keyset or lift.var in lift_locals:
                return False
            if resolve(lift.var) is not None:
                return False  # equality lift: the loop lowering handles it
            body = lift.term
            if isinstance(body, Value):
                names = probe_names(value_variables(body.vexpr))
                if names is None:
                    return False
                source = lower_value(body.vexpr, names, self.ctx.env)
                local = self._fresh("b")
                lift_locals[lift.var] = local
                prelude.append(("value", local, source))
            elif isinstance(body, AggSum) and not body.group:
                if free_variables(body) & keyset:
                    return False
                sub_resolve = lambda var: (
                    lift_locals.get(var) or (None if var in keyset else resolve(var))
                )
                sub = self._plan_scalar_agg(body.term, sub_resolve, True, depth + 1)
                lift_locals[lift.var] = sub.result
                prelude.append(("agg", sub))
            else:
                return False

        op = guard_cmp.op
        if isinstance(guard_cmp.left, VVar) and guard_cmp.left.name in keyset:
            guard, cutoff = guard_cmp.left.name, guard_cmp.right
        elif isinstance(guard_cmp.right, VVar) and guard_cmp.right.name in keyset:
            guard, cutoff = guard_cmp.right.name, guard_cmp.left
            op = flip_comparison(op)
        else:
            return False
        if op not in RANGE_OPS:
            return False
        cutoff_vars = value_variables(cutoff)
        if cutoff_vars & keyset:
            return False
        names = probe_names(cutoff_vars)
        if names is None:
            return False
        spec.mode = "probe"
        spec.prelude = prelude
        spec.probe = self._probe_local("map", atom.name)
        spec.column = decl.keys[keys.index(guard)]
        spec.op = op
        spec.cutoff = lower_value(cutoff, names, self.ctx.env)
        return True

    def _plan_group_agg(self, node: AggSum, bound, plan, child_resolve_for) -> _GroupAggStep:
        """Plan a grouped ``AggSum`` factor: dict accumulation, then a loop."""
        step = _GroupAggStep()
        step.group = node.group
        step.dict_local = self._fresh("gd")
        step.mult_local = self._fresh("m")
        deps: set[str] = set()
        resolve = child_resolve_for(deps)
        step.plan = self._plan_term(node.term, resolve=resolve, depth=1)
        for position, var in enumerate(node.group):
            inner = step.plan.names.get(var)
            if inner is not None:
                # Produced inside: the group key carries it out of the loop.
                step.key_sources.append(inner)
                local = self._fresh("b")
                step.unbound.append((var, position, local))
                if var not in bound:
                    bound[var] = local
                    plan.colset.add(var)
                continue
            outer = resolve(var)
            if outer is None:
                raise Unsupported(
                    f"group variable {var!r} is neither produced nor bound"
                )
            step.key_sources.append(outer)
        return step

    def _plan_atom(
        self, node, bound: dict[str, str], plan: _TermPlan, resolve,
        dedup_ok: bool = False, reserved: list[tuple] | None = None,
    ) -> _AtomStep:
        atom = _AtomStep()
        if isinstance(node, MapRef):
            atom.kind = "map"
            atom.name = node.name
            decl = self.program.maps.get(node.name)
            if decl is None:
                raise Unsupported(f"map {node.name!r} is not declared")
            atom.stored = decl.keys
            atom_vars = node.keys
        else:
            atom.kind = "relation"
            atom.name = node.name
            if node.name not in self.program.schemas:
                raise Unsupported(f"relation {node.name!r} has no schema")
            if (
                node.name not in self.program.static_relations
                and node.name not in self._maintained
            ):
                raise Unsupported(f"relation {node.name!r} is not stored at runtime")
            atom.stored = tuple(self.program.schemas[node.name])
            atom_vars = node.columns
        if len(atom.stored) != len(atom_vars):
            raise Unsupported(f"arity mismatch on {node.name!r}")
        atom.sorted_stored = tuple(sorted(atom.stored))
        atom.index = len(plan.atoms) + 1
        atom.mult_local = self._fresh("m")
        atom.row_local = self._fresh("r")

        first_pos: dict[str, int] = {}
        for position, var in enumerate(atom_vars):
            stored_col = atom.stored[position]
            plan.colset.add(var)
            if var in first_pos:
                # Repeated unbound variable within this atom: the value only
                # exists once the bucket loop binds it, so the repeat is an
                # in-row equality check, never a probe column.
                sorted_pos = atom.sorted_stored.index(stored_col)
                local = next(l for v, _, l in atom.unbound if v == var)
                atom.eq_checks.append((sorted_pos, local))
                continue
            known = bound.get(var)
            if known is None:
                known = resolve(var)
            if known is not None:
                atom.bound.append((stored_col, known))
            else:
                sorted_pos = atom.sorted_stored.index(stored_col)
                first_pos[var] = sorted_pos
                local = self._fresh("b")
                atom.unbound.append((var, sorted_pos, local))
                bound[var] = local
        if (
            self.ctx.dedup is not None
            and dedup_ok
            and not atom.unbound
            and not atom.eq_checks
            and frozenset(l for _, l in atom.bound) <= self.ctx.trigger_local_names
        ):
            handle = self._table_handle(atom.kind, atom.name)
            key = ("probe", handle, self._row_source(atom.bound))
            shared = self.ctx.dedup.reuse(key, table=handle)
            if shared is not None:
                atom.mult_local = shared
                atom.reused = True
            else:
                atom.dedup_key = self.ctx.dedup.reserve(key, atom.mult_local, table=handle)
                if atom.dedup_key is not None and reserved is not None:
                    reserved.append(atom.dedup_key)
        return atom

    # -- IR building --------------------------------------------------------
    def _emit_term(self, nodes: list[ir.Node], plan: _TermPlan, sink) -> None:
        """Build one term's steps in slot order, calling ``sink(nodes, plan)``."""
        scalars_by_slot: dict[int, list[_ScalarStep]] = {}
        for step in plan.steps:
            if isinstance(step, _ScalarStep):
                scalars_by_slot.setdefault(step.slot, []).append(step)

        current = nodes
        for slot in range(len(plan.atoms) + 1):
            for step in scalars_by_slot.get(slot, ()):
                self._emit_scalar(current, step)
            if slot < len(plan.atoms):
                entry = plan.atoms[slot]
                if isinstance(entry, _GroupAggStep):
                    inner = self._emit_group_agg(current, entry)
                else:
                    inner = self._emit_atom(current, entry)
                if inner is not current:
                    current = inner
        sink(current, plan)

    def _emit_scalar(self, nodes: list[ir.Node], step: _ScalarStep) -> None:
        if step.kind == "cmp":
            node = ir.GuardCond(step.source)
            nodes.append(node)
            self._attach(step.dedup_key, node, nodes)
        elif step.kind == "value":
            if not step.reused:
                node = ir.Norm(step.local, step.source)
                nodes.append(node)
                self._attach(step.dedup_key, node, nodes)
            nodes.append(ir.GuardZero(step.local))
        elif step.kind == "lift_bind":
            # A reused lift binding emits nothing: the shared prefix already
            # bound the (normalized, zero-coerced) value to the shared local.
            if not step.reused:
                node = ir.NormOrZero(step.local, step.source)
                nodes.append(node)
                self._attach(step.dedup_key, node, nodes)
        elif step.kind == "lift_eq":
            # An already-bound lift acts as an equality condition.
            tmp = self._fresh("s")
            nodes.append(ir.NormOrZero(tmp, step.source))
            nodes.append(ir.GuardNotEq(step.check_var, tmp))
        elif step.kind == "lift_agg":
            # The aggregate chain already normalizes (and yields 0 when
            # empty), matching the evaluator's lift-over-GMR read-back.
            self._emit_agg_spec(nodes, step.spec)
        elif step.kind == "lift_agg_eq":
            self._emit_agg_spec(nodes, step.spec)
            nodes.append(ir.GuardNotEq(step.check_var, step.spec.result))
        elif step.kind == "agg_factor":
            # A zero aggregate is an empty scalar GMR: the row dies.
            self._emit_agg_spec(nodes, step.spec)
            nodes.append(ir.GuardZero(step.spec.result))
        elif step.kind == "exists":
            # Exists gates on total multiplicity: zero kills the row, any
            # other value contributes multiplicity 1 (no factor).
            self._emit_agg_spec(nodes, step.spec)
            nodes.append(ir.GuardZero(step.spec.result))
        else:  # pragma: no cover - planner and emitter enumerate the same kinds
            raise Unsupported(f"unknown scalar step kind {step.kind!r}")

    def _emit_agg_spec(self, nodes: list[ir.Node], spec: _AggSpec) -> None:
        """Build IR leaving the aggregate's value in ``spec.result``."""
        if spec.mode == "total":
            nodes.append(ir.Probe(spec.result, spec.handle, "_EMPTY_ROW"))
            nodes.append(ir.DefaultZero(spec.result))
            return
        if spec.mode == "probe":
            for entry in spec.prelude:
                if entry[0] == "value":
                    _, local, source = entry
                    nodes.append(ir.NormOrZero(local, source))
                else:
                    self._emit_agg_spec(nodes, entry[1])
            nodes.append(ir.RangeProbe(
                spec.result, spec.probe, spec.column, spec.op, spec.cutoff, spec.chain
            ))
            return
        # Inline scan loop.  The one-pass wrapper scopes the sub-term's
        # aborts: a failing hoisted condition inside the aggregate must empty
        # the aggregate, not abort the enclosing row.
        plan = spec.plan
        nodes.append(ir.Let(spec.result, "0"))
        if not plan.dead:
            scope_body: list[ir.Node] = []
            nodes.append(ir.OnePass(self._fresh("w"), scope_body))
            self._emit_term(
                scope_body, plan, lambda n, p: self._emit_agg_loop_sink(n, p, spec)
            )
        if not spec.chain:
            nodes.append(ir.Norm(spec.result, spec.result))

    def _emit_agg_loop_sink(self, nodes: list[ir.Node], plan, spec: _AggSpec) -> None:
        """Per-row accumulation inside an inline aggregate scan.

        ``chain=True`` replicates the GMR aggregation chain (add, drop on
        zero, normalize per step); ``chain=False`` the plain summation of
        ``total_multiplicity`` over per-entry-normalized multiplicities.
        """
        product = self._product_expr(nodes, plan)
        if spec.chain:
            nodes.append(ir.ChainAccum(spec.result, product, self._fresh("h")))
        else:
            nodes.append(ir.PlainAccum(spec.result, product))

    def _product_expr(self, nodes: list[ir.Node], plan) -> str:
        """The factor product, zero-guarded; single factors skip the alias."""
        if not plan.factors:
            return "1"
        if len(plan.factors) == 1:
            factor = plan.factors[0]
            self._guard_nonzero(nodes, factor)
            return factor
        product = self._fresh("p")
        nodes.append(ir.Let(product, " * ".join(plan.factors)))
        nodes.append(ir.GuardZero(product))
        return product

    def _emit_group_agg(self, nodes: list[ir.Node], step: _GroupAggStep) -> list[ir.Node]:
        """Build a grouped aggregate factor; returns the iteration-loop body."""
        nodes.append(ir.Let(step.dict_local, "{}"))
        plan = step.plan
        if not plan.dead:
            scope_body: list[ir.Node] = []
            nodes.append(ir.OnePass(self._fresh("w"), scope_body))
            key = ", ".join(step.key_sources)
            key = f"({key},)" if step.key_sources else "()"

            def sink(inner: list[ir.Node], p) -> None:
                product = self._product_expr(inner, p)
                inner.append(ir.DictMerge(step.dict_local, self._fresh("k"), key, product))

            self._emit_term(scope_body, plan, sink)
        gk = self._fresh("gk")
        loop_body: list[ir.Node] = []
        nodes.append(ir.ItemsLoop(gk, step.mult_local, step.dict_local, loop_body))
        for var, position, local in step.unbound:
            loop_body.append(ir.Let(local, f"{gk}[{position}]"))
        return loop_body

    def _row_source(self, entries: Sequence[tuple[str, str]]) -> str:
        """Row-construction source from (column, local) pairs, sorted by name."""
        if not entries:
            return "_EMPTY_ROW"
        ordered = sorted(entries)
        inner = ", ".join(f"({col!r}, {local})" for col, local in ordered)
        return f"_Row(({inner},))"

    def _emit_atom(self, nodes: list[ir.Node], atom: _AtomStep) -> list[ir.Node]:
        """Build the probe or scan for one atom; returns the active body list."""
        handle = self._table_handle(atom.kind, atom.name)
        if not atom.unbound and not atom.eq_checks:
            if not atom.reused:
                probe_key = self._shared_row(
                    nodes, self._row_source(atom.bound),
                    frozenset(local for _, local in atom.bound),
                )
                node = ir.Probe(atom.mult_local, handle, probe_key)
                nodes.append(node)
                self._attach(atom.dedup_key, node, nodes)
            nodes.append(ir.GuardNone(atom.mult_local))
            return nodes
        if not atom.bound:
            loop_body: list[ir.Node] = []
            nodes.append(ir.FullScan(atom.row_local, atom.mult_local, handle, loop_body))
        else:
            columns = frozenset(col for col, _ in atom.bound)
            colset = self.ctx.env.add("fs", columns)
            bucket = self._fresh("bu")
            probe = self._shared_row(
                nodes, self._row_source(atom.bound),
                frozenset(local for _, local in atom.bound),
            )
            nodes.append(ir.IndexProbe(bucket, handle, colset, probe))
            nodes.append(ir.GuardFalsy(bucket))
            loop_body = []
            nodes.append(ir.ItemsLoop(atom.row_local, atom.mult_local, bucket, loop_body))
        for var, sorted_pos, local in atom.unbound:
            loop_body.append(ir.Extract(local, atom.row_local, sorted_pos))
        for sorted_pos, local in atom.eq_checks:
            loop_body.append(ir.FieldGuard(atom.row_local, sorted_pos, local))
        return loop_body

    def _value_for(self, var: str, plan: _TermPlan) -> str:
        local = plan.names.get(var)
        if local is not None:
            return local
        return self._trigger_local(var)

    def _target_row_source(self, value_of: Callable[[str], str]) -> str:
        table_columns = self.program.maps[self.statement.target].keys
        entries = [
            (column, value_of(key))
            for column, key in zip(table_columns, self.statement.target_keys)
        ]
        return self._row_source(entries)

    def _shared_row(self, nodes: list[ir.Node], source: str, deps: frozenset[str]) -> str:
        """A key-row build — shared across fused statements when possible.

        When every component is a trigger local, the row build is named into
        a ``Let`` and cached, so identical key rows across fused statements
        (the Q1 shape: every aggregate map keyed by the same group-by
        columns; the Q3 shape: sibling maps bucket-probed by the same
        trigger key) construct once per event.
        """
        dedup = self.ctx.dedup
        if (
            dedup is None
            or source == "_EMPTY_ROW"
            or not deps <= self.ctx.trigger_local_names
        ):
            return source
        key = ("row", source)
        shared = dedup.reuse(key)
        if shared is not None:
            return shared
        local = self._fresh("kr")
        node = ir.Let(local, source)
        nodes.append(node)
        self._attach(dedup.reserve(key, local), node, nodes)
        return local

    def _target_key_expr(self, nodes: list[ir.Node], plan: _TermPlan) -> str:
        """The sink key row for ``plan`` — a dedup candidate when fused."""
        source = self._target_row_source(lambda k: self._value_for(k, plan))
        deps = frozenset(
            self._value_for(key, plan) for key in self.statement.target_keys
        )
        return self._shared_row(nodes, source, deps)

    def _emit_acc(self, nodes: list[ir.Node], plan) -> str:
        """The per-row delta: factor product in term order, dead on zero.

        A single factor is used directly (it is already a local; re-loading
        a name is cheaper than aliasing it), a product is computed once into
        a fresh local; either way the delta is zero-checked before the sink
        sees it, exactly like the evaluator's result-GMR zero drop.
        """
        if not plan.factors:
            return "1"
        if len(plan.factors) == 1:
            factor = plan.factors[0]
            self._guard_nonzero(nodes, factor)
            return factor
        acc = self._fresh("acc")
        nodes.append(ir.Let(acc, " * ".join(plan.factors)))
        nodes.append(ir.GuardZero(acc))
        return acc

    def _guard_nonzero(self, nodes: list[ir.Node], expr: str) -> None:
        """Zero-guard ``expr`` unless the previous node just guarded it.

        A single-factor delta whose factor is a value-step local arrives
        here immediately after that step's own zero guard; between two
        consecutive nodes the local cannot change, so the repeat guard is
        provably dead and skipping it is exact.
        """
        last = nodes[-1] if nodes else None
        if isinstance(last, ir.GuardZero) and last.expr == expr:
            return
        nodes.append(ir.GuardZero(expr))

    def _merge_key_tuple(self, plan: _TermPlan, colset_ids) -> str:
        colset = frozenset(plan.colset)
        cs = colset_ids[colset]
        values = ", ".join(self._value_for(v, plan) for v in sorted(colset))
        return f"({cs}, {values},)" if colset else f"({cs},)"

    def _group_key_tuple(self, plan: _TermPlan, group) -> str:
        gk = ", ".join(self._value_for(g, plan) for g in group)
        return f"({gk},)" if group else "()"

    def _emit_sink(
        self, nodes, plan, mode, group, colset_ids,
        add_local, merge_local, group_local, pending_local,
    ) -> None:
        acc = self._emit_acc(nodes, plan)

        if mode == "direct":
            key = self._target_key_expr(nodes, plan)
            nodes.append(ir.AddDelta(add_local, key, acc, self.scale_var))
            return
        if mode == "pending":
            key = self._target_key_expr(nodes, plan)
            nodes.append(ir.ListAppend(pending_local, f"({key}, {acc})"))
            return
        if mode == "group":
            nodes.append(ir.DictMerge(
                group_local, self._fresh("k"), self._group_key_tuple(plan, group), acc,
            ))
            return
        # merge mode: key by (colset id, values of the produced row).
        nodes.append(ir.DictMerge(
            merge_local, self._fresh("k"), self._merge_key_tuple(plan, colset_ids), acc,
        ))

    def _emit_group_epilogue(self, body, plan, group, group_local, sink) -> None:
        """Iterate the group accumulator; ``sink(key_expr, mult_local)`` makes
        the per-entry node — ``+=`` adds to the target, ``:=`` plain-merges
        into the assignment dict (both paths share this shape)."""
        if plan is None:
            return
        gk, m = self._fresh("gk"), self._fresh("m")
        positions = {g: i for i, g in enumerate(group)}

        def value_of(key: str) -> str:
            if key in positions:
                return f"{gk}[{positions[key]}]"
            return self._trigger_local(key)

        key = self._target_row_source(value_of)
        body.append(ir.ItemsLoop(gk, m, group_local, [sink(key, m)]))

    def _emit_merge_epilogue(self, body, plans, colset_ids, merge_local, sink) -> None:
        """Iterate the sum-merge accumulator, dispatching on each entry's
        colset id to rebuild its target key; ``sink(key_expr, mult_local)``
        makes the per-entry node (shared by the ``+=`` and ``:=`` paths)."""
        by_id: dict[int, frozenset[str]] = {}
        for plan in plans:
            colset = frozenset(plan.colset)
            by_id[colset_ids[colset]] = colset

        bk, m = self._fresh("bk"), self._fresh("m")
        loop_body: list[ir.Node] = []
        body.append(ir.ItemsLoop(bk, m, merge_local, loop_body))
        if len(by_id) == 1:
            (_, colset), = by_id.items()
            loop_body.append(sink(self._merge_key_source(colset, bk), m))
        else:
            cs = self._fresh("cs")
            loop_body.append(ir.Let(cs, f"{bk}[0]"))
            cases = []
            for branch_id, colset in sorted(by_id.items()):
                key = self._merge_key_source(colset, bk)
                cases.append((f"{cs} == {branch_id}", [sink(key, m)]))
            loop_body.append(ir.Branch(cases))

    def _merge_key_source(self, colset: frozenset[str], bk_local: str) -> str:
        positions = {v: i + 1 for i, v in enumerate(sorted(colset))}

        def value_of(key: str) -> str:
            if key in positions:
                return f"{bk_local}[{positions[key]}]"
            return self._trigger_local(key)

        return self._target_row_source(value_of)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def try_compile_statement(
    statement: Statement, program: TriggerProgram
) -> StatementKernel | None:
    """Compile one ``+=`` or ``:=`` statement, or return None when it must interpret.

    This *is* the capability check: anything the planner cannot lower raises
    internally and surfaces here as None, and the caller keeps the statement
    on the interpreter path.  The pipeline runs all three stages: plan the
    statement into IR, then emit the IR (``emit.py`` is the sole source
    generator) and wrap the source into a bindable :class:`StatementKernel`.
    """
    try:
        compiler = _StatementCompiler(statement, program)
        body = compiler.compile()
        context = compiler.ctx
        nodes = context.preamble() + body
        source = emit_function("_kernel", ("_values", "_scale"), nodes, abort="return")
    except Unsupported:
        return None
    return StatementKernel(
        statement, source, context.env.env, context.tables, ir.count_ops(nodes)
    )


def compile_scalar_kernel(statement: Statement, columns: Sequence[str] | None = None):
    """Compile a map-free statement into the batched per-tuple fast path.

    Applies when the right-hand side is a product of scalar values and
    comparisons over the trigger variables only (external functions allowed —
    they are pinned into the kernel's namespace) and every target key is a
    trigger variable: the shape of all aggregate-only statements, e.g. the
    whole of TPC-H Q1.  Returns ``run(table, items)`` folding a delta group's
    ``(values, multiplicity)`` pairs straight into the target table, or None
    when the statement is outside the fragment.

    ``columns`` are the target table's stored column names (the map
    declaration's keys); when given, the kernel prebuilds sorted key rows
    instead of paying the table's per-add key normalization.

    The expression lowering and the IR/emission stages are shared with the
    per-event statement compiler, and the generated kernel multiplies
    factors in the interpreter's exact order (factors first, fold
    multiplicity last).
    """
    if statement.operation != INCREMENT:
        return None
    expr = statement.expr
    factors = expr.terms if isinstance(expr, Product) else (expr,)
    trigger_vars = statement.event.trigger_vars
    names = {var: f"_v{i}" for i, var in enumerate(trigger_vars)}
    env = SourceEnv(_BASE_ENV)

    used: set[str] = set()
    acc_factors: list[str] = []
    steps: list[ir.Node] = []
    counter = 0
    try:
        # Steps stay in term order: the interpreter evaluates factors left to
        # right and a zero value factor empties the result before later terms
        # are ever looked at, so reordering could change which expression
        # raises on ill-typed data.
        for node in factors:
            if isinstance(node, Value):
                deps = value_variables(node.vexpr)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        return None  # statement is a constant no-op
                    if const == 1 and not isinstance(const, float):
                        continue
                source = lower_value(node.vexpr, names, env, allow_functions=True)
                local = f"_s{counter}"
                counter += 1
                steps.append(ir.Norm(local, source))
                steps.append(ir.GuardZero(local))
                acc_factors.append(local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                check = lower_condition(
                    node.left, node.op, node.right, names, env, allow_functions=True
                )
                steps.append(ir.GuardCond(check))
            else:
                raise Unsupported("not a scalar-only statement")
        key_positions = []
        for key in statement.target_keys:
            if key not in trigger_vars:
                raise Unsupported("target key is not a trigger variable")
            key_positions.append(trigger_vars.index(key))
            used.add(key)
    except Unsupported:
        return None

    loop_body: list[ir.Node] = []
    for var in sorted(used, key=trigger_vars.index):
        i = trigger_vars.index(var)
        loop_body.append(ir.Let(f"_v{i}", f"_vals[{i}]"))
    loop_body.extend(steps)
    if acc_factors:
        loop_body.append(ir.Let("_acc", " * ".join(acc_factors)))
        loop_body.append(ir.GuardZero("_acc"))
    else:
        loop_body.append(ir.Let("_acc", "1"))
    if columns is not None and len(columns) == len(key_positions):
        key_entries = sorted(
            (column, f"_v{position}")
            for column, position in zip(columns, key_positions)
        )
        if key_entries:
            inner = ", ".join(f"({col!r}, {local})" for col, local in key_entries)
            key = f"_Row(({inner},))"
        else:
            key = "_EMPTY_ROW"
    elif key_positions:
        # Without the table schema, hand the table a positional tuple and let
        # it normalize the key itself.
        key = "(" + ", ".join(f"_v{p}" for p in key_positions) + ",)"
    else:
        key = "_EMPTY_ROW"
    loop_body.append(ir.AddDelta("_add", key, "_acc", "_mult"))

    body: list[ir.Node] = [
        ir.BindMethod("_add", "_table", "add"),
        ir.PairLoop("_vals", "_mult", "_items", loop_body),
    ]
    source = emit_function("_kernel", ("_table", "_items"), body, abort="return")
    namespace = dict(env.env)
    exec(compile(source, f"<repro.codegen:batch:{statement.target}>", "exec"), namespace)
    kernel = namespace["_kernel"]
    kernel.source = source  # type: ignore[attr-defined]
    return kernel
