"""Compile trigger statements to specialized straight-line Python functions.

One ``+=`` statement becomes one generated function ``_kernel(_values,
_scale)`` taking the event's field values (positionally, no bindings
dictionary) and the batch scale factor.  The function is specialized on
everything the compiler knows statically:

* **trigger variables** load positionally from the event tuple — only the
  ones the statement uses;
* **bound-key map/relation accesses** become direct probes of the backing
  :class:`~repro.runtime.maps.IndexedTable` primary dictionary, with the key
  :class:`~repro.core.rows.Row` built via the trusted sorted-items
  constructor (column sort order is resolved at compile time);
* **partially-bound accesses** probe the table's secondary hash index for the
  bound column subset and loop over the bucket; unbound variables read their
  values out of the key row by precomputed position;
* **scalar conditions and value factors** are lowered to plain Python and
  *hoisted* to the outermost point where their variables are bound, so a
  trigger-variable condition guards the whole statement instead of being
  re-checked per scanned row (hoisting is the one visible deviation from the
  interpreter: a hoisted condition is evaluated even when the scan it guards
  turns out empty, so an ill-typed comparison can raise where the
  interpreter's per-row evaluation would never have reached it — harmless
  for well-typed programs, which the SQL frontend guarantees);
* the **accumulated delta** multiplies factors in the statement's term order
  and applies the interpreter's exact zero-dropping and number-normalization
  rules, so compiled results are bit-identical to interpreted ones — values
  *and* types.

Exact-equivalence notes (each mirrors a specific interpreter behaviour):

* a ``Value`` factor contributes ``normalize_number(v)`` and kills the row
  when ``is_zero(v)`` (the evaluator stores scalars into a GMR, which
  normalizes and drops zeros);
* a ``Lift`` over a value binds ``normalize_number(v)`` — coerced to the
  integer ``0`` when zero-ish — because the evaluator reads the lifted value
  back out of a GMR (``scalar_value() if inner else 0``);
* the final per-row delta is zero-checked *before* the batch scale is
  applied (the evaluator's result GMR drops zero rows before the executor
  scales them);
* a top-level ``AggSum`` groups deltas in enumeration order with the GMR's
  add/normalize/drop-on-zero rule before anything touches the target map,
  and a top-level ``Sum`` merges its terms' result rows the same way —
  reproducing the interpreter's floating-point addition order exactly;
* rows are enumerated in the same order as the evaluator (scan order of the
  primary dictionary / index buckets, product terms left to right), so
  same-key map additions happen in the same order.

The **capability check** is the compile attempt itself: any construct outside
the fragment — external functions (by policy), ``Exists``, nested
aggregates/sums, lifts over non-scalar bodies, ``:=`` statements, unbound
value variables — raises :class:`~repro.codegen.lowering.Unsupported` and the
statement stays on the interpreter.  Fallback is per statement, never per
program, so one hard statement does not slow down its siblings.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.agca.ast import (
    AggSum,
    Cmp,
    Expr,
    Lift,
    MapRef,
    Product,
    Relation,
    Sum,
    Value,
    VConst,
    value_variables,
)
from repro.codegen.lowering import SourceEnv, Unsupported, lower_condition, lower_value
from repro.compiler.program import INCREMENT, Statement, TriggerProgram
from repro.core.rows import Row
from repro.core.values import div, is_zero, normalize_number

_BASE_ENV = {
    "_is_zero": is_zero,
    "_norm": normalize_number,
    "_div": div,
    "_Row": Row.from_sorted_items,
    "_EMPTY_ROW": Row(),
    "_ONE_PASS": (0,),
}


class _Writer:
    """Tiny indented-source writer with an abort-statement stack.

    The abort statement is what "this row/term produces nothing" compiles to:
    ``return`` at statement top level, ``break`` inside a sum-term wrapper,
    ``continue`` inside a scan loop.
    """

    def __init__(self, abort: str) -> None:
        self.lines: list[str] = []
        self.depth = 0
        self._aborts = [abort]

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    @property
    def abort(self) -> str:
        return self._aborts[-1]

    def open_loop(self, header: str) -> None:
        self.line(header)
        self.depth += 1
        self._aborts.append("continue")

    def close_loops(self, count: int) -> None:
        for _ in range(count):
            self.depth -= 1
            self._aborts.pop()

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class StatementKernel:
    """One trigger statement compiled to a specialized Python function.

    ``source`` holds the generated code (kept for tests, ``describe()`` and
    debugging); :meth:`bind` links it against a concrete map store / database
    and returns the runnable ``(values, scale)`` closure.  The code object is
    compiled once and can be bound any number of times (each engine, and each
    restore, gets fresh bindings), so pickled engine state never needs to
    carry code objects — restoring recompiles/rebinds instead.
    """

    __slots__ = ("statement", "source", "_code", "_env", "_tables")

    def __init__(
        self,
        statement: Statement,
        source: str,
        env: dict[str, Any],
        tables: Sequence[tuple[str, str, str]],
    ) -> None:
        self.statement = statement
        self.source = source
        self._code = compile(source, f"<repro.codegen:{statement.target}>", "exec")
        self._env = env
        self._tables = tuple(tables)

    def bind(self, maps, database) -> Callable[[tuple, Any], None]:
        """Link the kernel against live tables; returns ``run(values, scale)``."""
        namespace = dict(self._env)
        for handle, kind, name in self._tables:
            namespace[handle] = (
                maps.table(name) if kind == "map" else database.table(name)
            )
        exec(self._code, namespace)
        return namespace["_kernel"]


# ---------------------------------------------------------------------------
# Term planning
# ---------------------------------------------------------------------------


class _AtomStep:
    """A relation/map access: probe when fully bound, scan loop otherwise."""

    __slots__ = (
        "kind", "name", "stored", "sorted_stored", "bound", "unbound",
        "eq_checks", "mult_local", "row_local", "index",
    )

    def __init__(self) -> None:
        self.bound: list[tuple[str, str]] = []          # (stored column, local)
        self.unbound: list[tuple[str, int, str]] = []   # (var, sorted pos, local)
        self.eq_checks: list[tuple[int, str]] = []      # (sorted pos, local)
        self.index: int = 0                             # 1-based atom index


class _ScalarStep:
    """A Value / Cmp / Lift step with the atom slot it can be hoisted to."""

    __slots__ = ("kind", "source", "local", "slot", "check_var")

    def __init__(self, kind: str, slot: int) -> None:
        self.kind = kind
        self.slot = slot
        self.source = ""
        self.local = ""
        self.check_var = ""


class _TermPlan:
    """Plan of one product term: ordered steps, factors, produced columns."""

    __slots__ = ("steps", "atoms", "factors", "colset", "names", "dead")

    def __init__(self) -> None:
        self.steps: list[Any] = []
        self.atoms: list[_AtomStep] = []
        self.factors: list[str] = []
        self.colset: set[str] = set()
        self.names: dict[str, str] = {}
        self.dead = False


class _StatementCompiler:
    """Plans and emits the kernel for one ``+=`` statement."""

    def __init__(self, statement: Statement, program: TriggerProgram) -> None:
        self.statement = statement
        self.program = program
        self.env = SourceEnv(_BASE_ENV)
        self.tables: list[tuple[str, str, str]] = []
        self._table_handles: dict[tuple[str, str], str] = {}
        self._maintained = program.requires_base_relations()
        self._trigger_locals: dict[str, str] = {}
        self._counter = 0
        self._preamble: list[str] = []

    # -- small allocators ---------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        return name

    def _trigger_local(self, var: str) -> str:
        local = self._trigger_locals.get(var)
        if local is None:
            index = self.statement.event.trigger_vars.index(var)
            local = f"_v{index}"
            self._trigger_locals[var] = local
            self._preamble.append(f"{local} = _values[{index}]")
        return local

    def _table_handle(self, kind: str, name: str) -> str:
        handle = self._table_handles.get((kind, name))
        if handle is None:
            handle = self._fresh("t")
            self._table_handles[(kind, name)] = handle
            self.tables.append((handle, kind, name))
        return handle

    # -- planning -----------------------------------------------------------
    def compile(self) -> tuple[str, dict[str, Any], list[tuple[str, str, str]]]:
        statement = self.statement
        if statement.operation != INCREMENT:
            raise Unsupported("only += statements compile; := re-evaluates")
        target_decl = self.program.maps.get(statement.target)
        if target_decl is None or len(target_decl.keys) != len(statement.target_keys):
            raise Unsupported("target map is not declared with matching arity")

        expr: Expr = statement.expr
        group: tuple[str, ...] | None = None
        if isinstance(expr, AggSum):
            group = expr.group
            expr = expr.term
            if isinstance(expr, (AggSum, Sum)):
                raise Unsupported("nested aggregation under a top-level AggSum")
        terms = expr.terms if isinstance(expr, Sum) else (expr,)
        if not terms:
            raise Unsupported("empty sum")

        plans = [self._plan_term(term) for term in terms]
        live = [plan for plan in plans if not plan.dead]

        reads_target = statement.target in statement.reads_maps()
        if group is not None:
            mode = "group"
        elif len(terms) > 1:
            mode = "merge"
        elif reads_target:
            mode = "pending"
        else:
            mode = "direct"

        # Resolve target-key sources up front so unsupported statements fall
        # back before any source is emitted.
        self._check_key_sources(live, group, mode)

        writer = _Writer("return")
        writer.line("def _kernel(_values, _scale):")
        writer.depth += 1
        body_start = len(writer.lines)

        if mode == "merge":
            writer.line("_mrg = {}")
        elif mode == "group":
            writer.line("_grp = {}")
        elif mode == "pending":
            writer.line("_pend = []")
        target_handle = self._table_handle("map", statement.target)
        writer.line(f"_add = {target_handle}.add")

        colset_ids: dict[frozenset[str], int] = {}
        for plan in live:
            key = frozenset(plan.colset)
            colset_ids.setdefault(key, len(colset_ids))

        wrap = len(live) > 1
        for plan in plans:
            if plan.dead:
                continue
            if wrap:
                writer.open_loop("for _pass in _ONE_PASS:")
                writer._aborts[-1] = "break"
            self._emit_term(writer, plan, mode, group, colset_ids)
            if wrap:
                writer.close_loops(1)

        if mode == "merge":
            self._emit_merge_epilogue(writer, live, colset_ids)
        elif mode == "group":
            self._emit_group_epilogue(writer, live[0] if live else None, group)
        elif mode == "pending":
            writer.line("for _kr, _m in _pend:")
            writer.line("    _add(_kr, _m if _scale == 1 else _m * _scale)")

        # Trigger-variable loads go first; they were discovered during emission.
        header = writer.lines[:body_start]
        body = writer.lines[body_start:]
        lines = header + ["    " + line for line in self._preamble] + body
        source = "\n".join(lines) + "\n"
        return source, self.env.env, self.tables

    def _check_key_sources(self, plans, group, mode) -> None:
        trigger_vars = set(self.statement.event.trigger_vars)
        for key in self.statement.target_keys:
            if key in trigger_vars:
                continue
            if mode == "group":
                if group is not None and key in group:
                    continue
                raise Unsupported(f"target key {key!r} outside group and trigger vars")
            for plan in plans:
                if key not in plan.colset:
                    raise Unsupported(f"target key {key!r} not produced by every term")
        if group is not None and plans:
            plan = plans[0]
            for g in group:
                if g not in plan.colset and g not in trigger_vars:
                    raise Unsupported(f"group variable {g!r} is neither produced nor bound")

    def _plan_term(self, term: Expr) -> _TermPlan:
        plan = _TermPlan()
        bound: dict[str, str] = {}

        def names_for(vars_needed) -> dict[str, str]:
            out = {}
            for var in vars_needed:
                if var in bound:
                    out[var] = bound[var]
                elif var in self.statement.event.trigger_vars:
                    out[var] = self._trigger_local(var)
                else:
                    raise Unsupported(f"variable {var!r} is not bound at this point")
            return out

        factors = term.terms if isinstance(term, Product) else (term,)
        for node in factors:
            if isinstance(node, Product):
                raise Unsupported("nested product")
            if isinstance(node, Value):
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        plan.dead = True
                        return plan
                    if const == 1 and not isinstance(const, float):
                        continue
                    from repro.codegen.lowering import const_source

                    plan.factors.append(const_source(const, self.env))
                    continue
                deps = value_variables(node.vexpr)
                step = _ScalarStep("value", self._slot_for(deps, bound, plan))
                step.source = lower_value(node.vexpr, names_for(deps), self.env)
                step.local = self._fresh("s")
                plan.steps.append(step)
                plan.factors.append(step.local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                step = _ScalarStep("cmp", self._slot_for(deps, bound, plan))
                step.source = lower_condition(
                    node.left, node.op, node.right, names_for(deps), self.env
                )
                plan.steps.append(step)
            elif isinstance(node, Lift):
                if not isinstance(node.term, Value):
                    raise Unsupported("lift over a non-scalar body (nested aggregate)")
                deps = value_variables(node.term.vexpr)
                already = node.var in bound or node.var in self.statement.event.trigger_vars
                # An equality lift also depends on the variable it checks.
                slot_deps = deps | ({node.var} if already else set())
                slot = self._slot_for(slot_deps, bound, plan)
                step = _ScalarStep("lift_eq" if already else "lift_bind", slot)
                step.source = lower_value(node.term.vexpr, names_for(deps), self.env)
                if already:
                    step.check_var = names_for((node.var,))[node.var]
                else:
                    step.local = self._fresh("b")
                    bound[node.var] = step.local
                    plan.colset.add(node.var)
                plan.steps.append(step)
            elif isinstance(node, (MapRef, Relation)):
                atom = self._plan_atom(node, bound, plan)
                plan.steps.append(atom)
                plan.atoms.append(atom)
                plan.factors.append(atom.mult_local)
            else:
                raise Unsupported(f"unsupported construct {type(node).__name__}")
        plan.names = dict(bound)
        return plan

    def _slot_for(self, deps, bound, plan) -> int:
        slot = 0
        for var in deps:
            local = bound.get(var)
            if local is None:
                continue  # trigger variable: slot 0
            for index, atom in enumerate(plan.atoms, start=1):
                if any(v == var for v, _, _ in atom.unbound):
                    slot = max(slot, index)
        # Lift-bound variables: find the step that defined them.
        for step in plan.steps:
            if isinstance(step, _ScalarStep) and step.kind == "lift_bind":
                var = next((v for v, l in bound.items() if l == step.local), None)
                if var in deps:
                    slot = max(slot, step.slot)
        return slot

    def _plan_atom(self, node, bound: dict[str, str], plan: _TermPlan) -> _AtomStep:
        atom = _AtomStep()
        if isinstance(node, MapRef):
            atom.kind = "map"
            atom.name = node.name
            decl = self.program.maps.get(node.name)
            if decl is None:
                raise Unsupported(f"map {node.name!r} is not declared")
            atom.stored = decl.keys
            atom_vars = node.keys
        else:
            atom.kind = "relation"
            atom.name = node.name
            if node.name not in self.program.schemas:
                raise Unsupported(f"relation {node.name!r} has no schema")
            if (
                node.name not in self.program.static_relations
                and node.name not in self._maintained
            ):
                raise Unsupported(f"relation {node.name!r} is not stored at runtime")
            atom.stored = tuple(self.program.schemas[node.name])
            atom_vars = node.columns
        if len(atom.stored) != len(atom_vars):
            raise Unsupported(f"arity mismatch on {node.name!r}")
        atom.sorted_stored = tuple(sorted(atom.stored))
        atom.index = len(plan.atoms) + 1
        atom.mult_local = self._fresh("m")
        atom.row_local = self._fresh("r")

        trigger_vars = self.statement.event.trigger_vars
        first_pos: dict[str, int] = {}
        for position, var in enumerate(atom_vars):
            stored_col = atom.stored[position]
            plan.colset.add(var)
            if var in first_pos:
                # Repeated unbound variable within this atom: the value only
                # exists once the bucket loop binds it, so the repeat is an
                # in-row equality check, never a probe column.
                sorted_pos = atom.sorted_stored.index(stored_col)
                local = next(l for v, _, l in atom.unbound if v == var)
                atom.eq_checks.append((sorted_pos, local))
            elif var in bound:
                atom.bound.append((stored_col, bound[var]))
            elif var in trigger_vars:
                atom.bound.append((stored_col, self._trigger_local(var)))
            else:
                sorted_pos = atom.sorted_stored.index(stored_col)
                first_pos[var] = sorted_pos
                local = self._fresh("b")
                atom.unbound.append((var, sorted_pos, local))
                bound[var] = local
        return atom

    # -- emission -----------------------------------------------------------
    def _emit_term(self, writer, plan, mode, group, colset_ids) -> None:
        scalars_by_slot: dict[int, list[_ScalarStep]] = {}
        for step in plan.steps:
            if isinstance(step, _ScalarStep):
                scalars_by_slot.setdefault(step.slot, []).append(step)

        loops_opened = 0
        for slot in range(len(plan.atoms) + 1):
            for step in scalars_by_slot.get(slot, ()):
                self._emit_scalar(writer, step)
            if slot < len(plan.atoms):
                if self._emit_atom(writer, plan.atoms[slot]):
                    loops_opened += 1

        self._emit_sink(writer, plan, mode, group, colset_ids)
        writer.close_loops(loops_opened)

    def _emit_scalar(self, writer, step: _ScalarStep) -> None:
        if step.kind == "cmp":
            writer.line(f"if not {step.source}:")
            writer.line(f"    {writer.abort}")
        elif step.kind == "value":
            writer.line(f"{step.local} = _norm({step.source})")
            writer.line(f"if _is_zero({step.local}):")
            writer.line(f"    {writer.abort}")
        elif step.kind == "lift_bind":
            writer.line(f"{step.local} = _norm({step.source})")
            writer.line(f"if _is_zero({step.local}):")
            writer.line(f"    {step.local} = 0")
        else:  # lift_eq: an already-bound lift acts as an equality condition
            tmp = self._fresh("s")
            writer.line(f"{tmp} = _norm({step.source})")
            writer.line(f"if _is_zero({tmp}):")
            writer.line(f"    {tmp} = 0")
            writer.line(f"if {step.check_var} != {tmp}:")
            writer.line(f"    {writer.abort}")

    def _row_source(self, entries: Sequence[tuple[str, str]]) -> str:
        """Row-construction source from (column, local) pairs, sorted by name."""
        if not entries:
            return "_EMPTY_ROW"
        ordered = sorted(entries)
        inner = ", ".join(f"({col!r}, {local})" for col, local in ordered)
        return f"_Row(({inner},))"

    def _emit_atom(self, writer, atom: _AtomStep) -> bool:
        """Emit the probe or scan for one atom; returns True when a loop opened."""
        handle = self._table_handle(atom.kind, atom.name)
        if not atom.unbound and not atom.eq_checks:
            probe = self._row_source(atom.bound)
            writer.line(f"{atom.mult_local} = {handle}.primary.get({probe})")
            writer.line(f"if {atom.mult_local} is None:")
            writer.line(f"    {writer.abort}")
            return False
        if not atom.bound:
            writer.open_loop(
                f"for {atom.row_local}, {atom.mult_local} in {handle}.primary.items():"
            )
        else:
            columns = frozenset(col for col, _ in atom.bound)
            colset = self.env.add("fs", columns)
            bucket = self._fresh("bu")
            probe = self._row_source(atom.bound)
            writer.line(f"{bucket} = {handle}.index_for({colset}).get({probe})")
            writer.line(f"if not {bucket}:")
            writer.line(f"    {writer.abort}")
            writer.open_loop(
                f"for {atom.row_local}, {atom.mult_local} in {bucket}.items():"
            )
        items = f"{atom.row_local}._items"
        for var, sorted_pos, local in atom.unbound:
            writer.line(f"{local} = {items}[{sorted_pos}][1]")
        for sorted_pos, local in atom.eq_checks:
            writer.line(f"if {items}[{sorted_pos}][1] != {local}:")
            writer.line(f"    {writer.abort}")
        return True

    def _value_for(self, var: str, plan: _TermPlan) -> str:
        local = plan.names.get(var)
        if local is not None:
            return local
        return self._trigger_local(var)

    def _target_row_source(self, value_of: Callable[[str], str]) -> str:
        table_columns = self.program.maps[self.statement.target].keys
        entries = [
            (column, value_of(key))
            for column, key in zip(table_columns, self.statement.target_keys)
        ]
        return self._row_source(entries)

    def _emit_sink(self, writer, plan, mode, group, colset_ids) -> None:
        if plan.factors:
            writer.line(f"_acc = {' * '.join(plan.factors)}")
            writer.line("if _is_zero(_acc):")
            writer.line(f"    {writer.abort}")
        else:
            writer.line("_acc = 1")

        if mode == "direct":
            key = self._target_row_source(lambda k: self._value_for(k, plan))
            writer.line(f"_add({key}, _acc if _scale == 1 else _acc * _scale)")
            return
        if mode == "pending":
            key = self._target_row_source(lambda k: self._value_for(k, plan))
            writer.line(f"_pend.append(({key}, _acc))")
            return
        if mode == "group":
            gk = ", ".join(self._value_for(g, plan) for g in group)
            gk = f"({gk},)" if group else "()"
            self._emit_dict_merge(writer, "_grp", gk)
            return
        # merge mode: key by (colset id, values of the produced row).
        colset = frozenset(plan.colset)
        cs = colset_ids[colset]
        values = ", ".join(self._value_for(v, plan) for v in sorted(colset))
        key = f"({cs}, {values},)" if colset else f"({cs},)"
        self._emit_dict_merge(writer, "_mrg", key)

    def _emit_dict_merge(self, writer, target: str, key_source: str) -> None:
        """GMR ``add_tuple`` semantics on a plain dict: add, normalize, drop zero."""
        k = self._fresh("k")
        writer.line(f"{k} = {key_source}")
        writer.line(f"_o = {target}.get({k}, 0)")
        writer.line("_n = _o + _acc")
        writer.line("if _is_zero(_n):")
        writer.line(f"    {target}.pop({k}, None)")
        writer.line("else:")
        writer.line(f"    {target}[{k}] = _norm(_n)")

    def _emit_group_epilogue(self, writer, plan, group) -> None:
        if plan is None:
            return
        positions = {g: i for i, g in enumerate(group)}

        def value_of(key: str) -> str:
            if key in positions:
                return f"_gk[{positions[key]}]"
            return self._trigger_local(key)

        key = self._target_row_source(value_of)
        writer.line("for _gk, _m in _grp.items():")
        writer.line(f"    _add({key}, _m if _scale == 1 else _m * _scale)")

    def _emit_merge_epilogue(self, writer, plans, colset_ids) -> None:
        by_id: dict[int, frozenset[str]] = {}
        for plan in plans:
            colset = frozenset(plan.colset)
            by_id[colset_ids[colset]] = colset

        writer.line("for _bk, _m in _mrg.items():")
        writer.depth += 1
        if len(by_id) == 1:
            (cs, colset), = by_id.items()
            key = self._merge_key_source(colset)
            writer.line(f"_add({key}, _m if _scale == 1 else _m * _scale)")
        else:
            writer.line("_cs = _bk[0]")
            for branch, (cs, colset) in enumerate(sorted(by_id.items())):
                prefix = "if" if branch == 0 else "elif"
                writer.line(f"{prefix} _cs == {cs}:")
                key = self._merge_key_source(colset)
                writer.line(f"    _add({key}, _m if _scale == 1 else _m * _scale)")
        writer.depth -= 1

    def _merge_key_source(self, colset: frozenset[str]) -> str:
        positions = {v: i + 1 for i, v in enumerate(sorted(colset))}

        def value_of(key: str) -> str:
            if key in positions:
                return f"_bk[{positions[key]}]"
            return self._trigger_local(key)

        return self._target_row_source(value_of)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def try_compile_statement(
    statement: Statement, program: TriggerProgram
) -> StatementKernel | None:
    """Compile one ``+=`` statement, or return None when it must interpret.

    This *is* the capability check: anything the emitter cannot lower raises
    internally and surfaces here as None, and the caller keeps the statement
    on the interpreter path.
    """
    try:
        source, env, tables = _StatementCompiler(statement, program).compile()
    except Unsupported:
        return None
    return StatementKernel(statement, source, env, tables)


def compile_scalar_kernel(statement: Statement, columns: Sequence[str] | None = None):
    """Compile a map-free statement into the batched per-tuple fast path.

    Applies when the right-hand side is a product of scalar values and
    comparisons over the trigger variables only (external functions allowed —
    they are pinned into the kernel's namespace) and every target key is a
    trigger variable: the shape of all aggregate-only statements, e.g. the
    whole of TPC-H Q1.  Returns ``run(table, items)`` folding a delta group's
    ``(values, multiplicity)`` pairs straight into the target table, or None
    when the statement is outside the fragment.

    ``columns`` are the target table's stored column names (the map
    declaration's keys); when given, the kernel prebuilds sorted key rows
    instead of paying the table's per-add key normalization.

    This replaces the batching subsystem's original ad-hoc closure builder:
    the expression lowering is shared with the per-event statement compiler,
    and the generated kernel multiplies factors in the interpreter's exact
    order (factors first, fold multiplicity last).
    """
    if statement.operation != INCREMENT:
        return None
    expr = statement.expr
    factors = expr.terms if isinstance(expr, Product) else (expr,)
    trigger_vars = statement.event.trigger_vars
    names = {var: f"_v{i}" for i, var in enumerate(trigger_vars)}
    env = SourceEnv(_BASE_ENV)

    used: set[str] = set()
    acc_factors: list[str] = []
    body: list[str] = []
    counter = 0
    try:
        # Steps stay in term order: the interpreter evaluates factors left to
        # right and a zero value factor empties the result before later terms
        # are ever looked at, so reordering could change which expression
        # raises on ill-typed data.
        for node in factors:
            if isinstance(node, Value):
                deps = value_variables(node.vexpr)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                if isinstance(node.vexpr, VConst):
                    const = normalize_number(node.vexpr.value)
                    if is_zero(const):
                        return None  # statement is a constant no-op
                    if const == 1 and not isinstance(const, float):
                        continue
                source = lower_value(node.vexpr, names, env, allow_functions=True)
                local = f"_s{counter}"
                counter += 1
                body.append(f"{local} = _norm({source})")
                body.append(f"if _is_zero({local}):")
                body.append("    continue")
                acc_factors.append(local)
            elif isinstance(node, Cmp):
                deps = value_variables(node.left) | value_variables(node.right)
                if not deps <= set(trigger_vars):
                    raise Unsupported("free variable outside trigger vars")
                used.update(deps)
                check = lower_condition(
                    node.left, node.op, node.right, names, env, allow_functions=True
                )
                body.append(f"if not {check}:")
                body.append("    continue")
            else:
                raise Unsupported("not a scalar-only statement")
        key_positions = []
        for key in statement.target_keys:
            if key not in trigger_vars:
                raise Unsupported("target key is not a trigger variable")
            key_positions.append(trigger_vars.index(key))
            used.add(key)
    except Unsupported:
        return None

    lines = ["def _kernel(_table, _items):", "    _add = _table.add"]
    lines.append("    for _vals, _mult in _items:")
    for var in sorted(used, key=trigger_vars.index):
        i = trigger_vars.index(var)
        lines.append(f"        _v{i} = _vals[{i}]")
    for line in body:
        lines.append("        " + line)
    if acc_factors:
        lines.append(f"        _acc = {' * '.join(acc_factors)}")
        lines.append("        if _is_zero(_acc):")
        lines.append("            continue")
    else:
        lines.append("        _acc = 1")
    if columns is not None and len(columns) == len(key_positions):
        key_entries = sorted(
            (column, f"_v{position}")
            for column, position in zip(columns, key_positions)
        )
        if key_entries:
            inner = ", ".join(f"({col!r}, {local})" for col, local in key_entries)
            key = f"_Row(({inner},))"
        else:
            key = "_EMPTY_ROW"
    elif key_positions:
        # Without the table schema, hand the table a positional tuple and let
        # it normalize the key itself.
        key = "(" + ", ".join(f"_v{p}" for p in key_positions) + ",)"
    else:
        key = "_EMPTY_ROW"
    lines.append(f"        _add({key}, _acc if _mult == 1 else _acc * _mult)")
    source = "\n".join(lines) + "\n"
    namespace = dict(env.env)
    exec(compile(source, f"<repro.codegen:batch:{statement.target}>", "exec"), namespace)
    kernel = namespace["_kernel"]
    kernel.source = source  # type: ignore[attr-defined]
    return kernel
